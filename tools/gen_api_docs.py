#!/usr/bin/env python3
"""Generate docs/api.md from the package's docstrings.

Walks every ``repro`` subpackage, collects the public classes and
functions (as declared by ``__all__``), and writes a compact API index
with one-line summaries.  Run from the repository root::

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

PACKAGES = [
    "repro",
    "repro.hgraph",
    "repro.boolexpr",
    "repro.spec",
    "repro.activation",
    "repro.binding",
    "repro.timing",
    "repro.core",
    "repro.compiled",
    "repro.store",
    "repro.parallel",
    "repro.resilience",
    "repro.supervision",
    "repro.service",
    "repro.distributed",
    "repro.telemetry",
    "repro.trace",
    "repro.adaptive",
    "repro.analysis",
    "repro.casestudies",
    "repro.io",
    "repro.report",
    "repro.cli",
]


#: Hand-maintained prose appended after a package's symbol table
#: (the only way narrative survives regeneration).
EXTRA_SECTIONS = {
    "repro.store": """\
### Using a warm-start store

| entry point | meaning |
|---|---|
| `explore(spec, warm_store=DIR)` | replay binding verdicts recorded in `DIR` by earlier runs and record this run's — results are byte-identical to cold (`docs/performance.md`) |
| `repro explore --warm-store DIR` | the same from the CLI |
| `repro serve DIR` | jobs share `DIR/warmstore` by default (`--warm-store none` disables) |
| `repro cache stats\\|verify\\|gc STORE` | inspect, strictly check (nonzero exit on corruption) or compact/evict (`--max-bytes`) a store |
| `invalidate(store, old_spec, new_spec)` | garbage-collect entries a spec edit can have touched (correctness never depends on it) |

Segment layout and invalidation rules: `docs/formats.md`.
""",
    "repro.core": """\
### `explore()` engine parameter

`explore()` evaluates candidates through one of two engines (see
`docs/performance.md` for the kernel design and benchmark guide):

| parameter | default | meaning |
|---|---|---|
| `engine` | `"compiled"` | `"compiled"` runs the bitmask kernel of `repro.compiled` (cross-candidate memoization, BDD-compiled possible-allocation test, precomputed binding tables); `"reference"` runs the classic per-candidate pipeline. Both produce **identical** fronts, statistics, progress events and logical traces |

### `explore()` parallel parameters

`explore()` accepts three parameters selecting the batched parallel
backend (see `docs/parallel.md` for the architecture and determinism
guarantee):

| parameter | default | meaning |
|---|---|---|
| `parallel` | `"serial"` | `"serial"` runs the classic loop; `"thread"`/`"process"` evaluate candidates in cost-ordered batches on a worker pool with **identical** results (Pareto set, statistics except `elapsed_seconds`, tie-breaking) |
| `batch_size` | `32` | candidates per dispatched batch in parallel modes |
| `workers` | CPU count | worker-pool size in parallel modes |

### `explore()` resilience parameters

Passing any of these routes through the same batched replay loop (even
with `parallel="serial"`); see `docs/resilience.md`:

| parameter | default | meaning |
|---|---|---|
| `deadline_seconds` | `None` | wall-clock budget; on expiry return the best-so-far front with `completed=False` and an `OptimalityGap` |
| `max_evaluations` | `None` | budget on binding-solver evaluations, same graceful truncation |
| `checkpoint` | `None` | path of an append-only CRC-journaled checkpoint file enabling `resume_explore()` |
| `checkpoint_every` | `64` | candidates between fsync'd snapshots when checkpointing |
| `batch_timeout` | `None` | seconds before a hung parallel batch is abandoned and finished inline |
| `retry` | `RetryPolicy()` | backoff policy for transient worker/pool failures |
""",
    "repro.resilience": """\
### Guarantees

* `resume_explore(path)` after a kill at **any** point produces a
  result whose fingerprint (front, statistics, bound) is identical to
  the uninterrupted run's.
* A truncated run's `OptimalityGap` is sound: the returned front below
  `gap.next_cost_bound` equals the full run's front below that cost,
  and nothing exceeds `gap.flexibility_bound` — checked by
  `verify_gap()`.
* Degradation (retries, quarantines, timeouts, pool fallbacks, cache
  corruption) is never silent: counters on `ExplorationStats`, a
  structured `stats.events` log, and a `RuntimeWarning` on pool loss.

See `docs/resilience.md` for the journal format and the resume-identity
argument.
""",
    "repro.telemetry": """\
### Attaching the plane

| entry point | meaning |
|---|---|
| `explore(spec, telemetry=Telemetry())` | profile phases + sample resources; results, progress events and trace fingerprints stay **byte-identical** (12-seed differential in `tests/test_telemetry_determinism.py`) |
| `ExplorationService(dir)` | always instrumented: `service.metrics` is the unified `MetricRegistry`, exported to `DIR/metrics.json` + `DIR/metrics.prom` |
| `explore_sharded(..., telemetry=FleetTelemetry())` | fold worker resource snapshots from heartbeat/result frames into per-shard + fleet metrics |
| `repro top DIR` | live job/metric dashboard over a service directory |
| `repro telemetry dump\\|diff` | re-validated snapshot export and per-series deltas |
| `tools/bench_trend.py` | perf-trend ledger over committed `BENCH_*.json` (`--check` gates CI) |

Telemetry lives strictly on the wall-clock side of the determinism
seam; see `docs/observability.md` for the two-channel story and the
metric-name reference.
""",
    "repro.trace": """\
### The determinism contract

A tracer attached to `explore(tracer=...)` records the search's
logical history at replay positions from outcome-derivable data only,
so serial, batched thread/process, and preempted-service runs of the
same exploration produce **byte-identical** logical traces
(`trace_fingerprint` hashes exactly that view; wall-clock lives in the
separate `t`/`t0`/`t1`/`diag`/`phase_totals` channel).  Tracing is
observation-only: with or without a tracer, fronts, statistics and
progress events are identical.  See `docs/observability.md` for the
span model, the prune-reason taxonomy and the exporters, and
`docs/formats.md` for the `repro/trace` v1 JSONL format.
""",
}


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    line = doc.strip().splitlines()[0] if doc.strip() else ""
    return line.rstrip(".")


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def render_module(name: str) -> str:
    module = importlib.import_module(name)
    lines = [f"## `{name}`", ""]
    summary = first_line(module)
    if summary:
        lines.append(summary + ".")
        lines.append("")
    exported = list(getattr(module, "__all__", []))
    if not exported:
        public = [
            n for n, obj in vars(module).items()
            if not n.startswith("_")
            and (inspect.isclass(obj) or inspect.isfunction(obj))
            and getattr(obj, "__module__", "").startswith(name)
        ]
        exported = sorted(public)
    rows = []
    for symbol in exported:
        obj = getattr(module, symbol, None)
        if obj is None:
            continue
        if inspect.isclass(obj):
            kind = "class"
            detail = first_line(obj)
        elif inspect.isfunction(obj):
            kind = "func"
            detail = first_line(obj)
        else:
            kind = "const"
            detail = ""
        rows.append((symbol, kind, detail))
    if rows:
        lines.append("| symbol | kind | summary |")
        lines.append("|---|---|---|")
        for symbol, kind, detail in rows:
            escaped = detail.replace("|", "\\|")
            lines.append(f"| `{symbol}` | {kind} | {escaped} |")
        lines.append("")
    extra = EXTRA_SECTIONS.get(name)
    if extra:
        lines.append(extra)
    return "\n".join(lines)


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "src"))
    sections = [
        "# API index",
        "",
        "Generated by `python tools/gen_api_docs.py` — do not edit by "
        "hand.  One-line summaries come from the objects' docstrings; "
        "see the source for full documentation.",
        "",
    ]
    for package in PACKAGES:
        sections.append(render_module(package))
    output = root / "docs" / "api.md"
    output.write_text("\n".join(sections))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
