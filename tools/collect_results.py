#!/usr/bin/env python3
"""Regenerate the paper-vs-measured summary behind EXPERIMENTS.md.

Runs the headline experiments and prints fresh numbers in one place,
so EXPERIMENTS.md can be checked (or updated) after any change::

    python tools/collect_results.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.casestudies import (  # noqa: E402
    PAPER_PARETO,
    build_settop_spec,
    build_tv_decoder_spec,
    synthetic_spec,
)
from repro.core import (  # noqa: E402
    count_possible_allocations,
    exhaustive_front,
    explore,
    max_flexibility,
    nsga2_explore,
)
from repro.report import format_table, hypervolume  # noqa: E402


def banner(title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> int:
    settop = build_settop_spec()
    tv = build_tv_decoder_spec()

    banner("RES - Pareto front (paper vs measured)")
    result = explore(settop)
    rows = []
    for (units, cost, flex), impl in zip(PAPER_PARETO, result.points):
        rows.append([
            ", ".join(units), f"${cost:g}", str(flex),
            ", ".join(sorted(impl.units)), f"${impl.cost:g}",
            f"{impl.flexibility:g}",
        ])
    print(format_table(
        ["paper units", "c", "f", "measured units", "c", "f"], rows,
    ))
    expected = [(c, float(f)) for _, c, f in PAPER_PARETO]
    print(f"(cost, flexibility) pairs: "
          f"{'MATCH' if result.front() == expected else 'MISMATCH'}")
    print()

    banner("FIG3 - flexibility values")
    print(f"max flexibility (paper 8): {max_flexibility(settop.problem):g}")
    print(f"TV decoder (paper 4):      {max_flexibility(tv.problem):g}")
    print()

    banner("STATS - search-space reduction")
    stats = result.stats
    print(f"raw space:            2^17 = {stats.design_space_size}")
    print(f"possible (exact BDD): {count_possible_allocations(settop)}")
    print(f"enumerated to $430:   {stats.candidates_enumerated}")
    print(f"possible on horizon:  {stats.possible_allocations}")
    print(f"binding attempted:    {stats.estimate_exceeded}  "
          f"(paper: 'typically < 100')")
    print(f"solver invocations:   {stats.solver_invocations}")
    print(f"elapsed:              {stats.elapsed_seconds:.3f}s "
          f"(paper: 'within minutes')")
    print()

    banner("SCALE - synthetic families")
    rows = []
    for label, kwargs in (
        ("small", dict(n_apps=3, interfaces_per_app=2, alternatives=3,
                       n_procs=2, n_accels=3)),
        ("medium", dict(n_apps=4, interfaces_per_app=2, alternatives=3,
                        n_procs=2, n_accels=4)),
    ):
        spec = synthetic_spec(**kwargs)
        started = time.perf_counter()
        res = explore(spec)
        rows.append([
            label, f"2^{len(spec.units)}",
            str(res.stats.possible_allocations),
            str(res.stats.estimate_exceeded),
            str(len(res.points)),
            f"{time.perf_counter() - started:.2f}s",
        ])
    print(format_table(
        ["size", "space", "possible", "attempts", "pareto", "time"], rows,
    ))
    print()

    banner("BASE - baselines on the TV decoder")
    exact = [impl.point for impl in exhaustive_front(tv)]
    nsga = nsga2_explore(tv, population_size=40, generations=30, seed=1)
    reference = (max(c for c, _ in exact), 0.0)
    print(f"exhaustive front: {exact}")
    print(f"EXPLORE front:    {explore(tv).front()}")
    print(f"NSGA-II front:    {nsga.points()}  "
          f"({nsga.evaluations} evaluations)")
    print(f"hypervolume exhaustive={hypervolume(exact, reference):g}, "
          f"NSGA-II={hypervolume(nsga.points(), reference):g}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
