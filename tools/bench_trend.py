"""The perf-trend observatory: a ledger over the committed BENCH files.

Every benchmark in ``benchmarks/`` writes a ``BENCH_<name>.json``
document at the repo root; each file is a point-in-time measurement
with no memory of the previous run.  This tool gives them one:

* it **collects** every directional numeric leaf from the committed
  ``BENCH_*.json`` files into one flat ``{path: value}`` map (a leaf
  is *directional* when its name says which way is better — see
  :func:`direction`); non-directional numbers (counts, sizes, config
  knobs) are ignored, so the ledger only ever tracks claims that can
  regress;
* ``--update`` appends that map as a new entry to the
  ``BENCH_trend.json`` ledger (``repro/bench-trend`` v1);
* ``--check`` compares the current files against the ledger's newest
  entry and exits nonzero when any metric moved the *wrong* way by
  more than ``--tolerance`` (a relative fraction, with a small
  absolute floor so near-zero baselines — e.g. overhead fractions —
  do not trip on noise).

Benchmark wall-clock numbers are noisy across hosts, so the default
tolerance is deliberately loose (50%): the check catches order-of-
magnitude cliffs and inverted speedups, not jitter.

Usage::

    python tools/bench_trend.py                  # report vs ledger
    python tools/bench_trend.py --check          # CI gate (exit 1)
    python tools/bench_trend.py --update --label "pr-9"
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

TREND_FORMAT = "repro/bench-trend"
TREND_VERSION = 1
LEDGER_NAME = "BENCH_trend.json"

#: Leaf-key patterns that say "lower is better".  ``_share`` covers
#: the kernel benchmark's unattributed-phase shares ("other" collapses
#: as the vectorized kernel attributes enumeration/filter time).
LOWER_SUFFIXES = ("_seconds", "_share")
LOWER_KEYS = ("overhead", "overhead_fraction")
#: Leaf-key patterns that say "higher is better".
HIGHER_SUFFIXES = ("_per_second", "speedup")
HIGHER_KEYS = ("speedup",)

#: Relative tolerance a metric may move the wrong way before --check
#: fails, and the absolute floor it is measured against (so a 0.001s
#: baseline does not fail on a 0.002s measurement).
DEFAULT_TOLERANCE = 0.5
ABSOLUTE_FLOOR = 0.05


def direction(key: str) -> Optional[str]:
    """``"lower"``/``"higher"`` when the leaf name encodes a direction,
    else ``None`` (untracked)."""
    if key in LOWER_KEYS or key.endswith(LOWER_SUFFIXES):
        return "lower"
    if key in HIGHER_KEYS or key.endswith(HIGHER_SUFFIXES):
        return "higher"
    return None


def _walk(node: Any, path: str, leaves: Dict[str, float]) -> None:
    if isinstance(node, dict):
        for key in sorted(node):
            child = f"{path}.{key}" if path else key
            _walk(node[key], child, leaves)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            _walk(item, f"{path}[{index}]", leaves)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        key = path.rsplit(".", 1)[-1]
        if direction(key) is not None:
            leaves[path] = float(node)


def bench_files(root: str) -> List[str]:
    """The committed BENCH documents, ledger excluded."""
    return sorted(
        path
        for path in glob.glob(os.path.join(root, "BENCH_*.json"))
        if os.path.basename(path) != LEDGER_NAME
    )


def collect_metrics(root: str) -> Dict[str, float]:
    """Every directional numeric leaf across the BENCH files, keyed
    ``<bench>.<dotted.path>``."""
    metrics: Dict[str, float] = {}
    for path in bench_files(root):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"warning: skipping {path}: {error}", file=sys.stderr)
            continue
        _walk(document, name, metrics)
    return metrics


def load_ledger(path: str) -> Dict[str, Any]:
    if not os.path.exists(path):
        return {"format": TREND_FORMAT, "version": TREND_VERSION,
                "entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != TREND_FORMAT:
        raise ValueError(
            f"{path} is not a {TREND_FORMAT} ledger "
            f"(format={document.get('format')!r})"
        )
    return document


def compare(
    previous: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """``(regressions, improvements)`` of current vs previous.

    A metric regresses when it moves the wrong way by more than
    ``tolerance`` relative to ``max(|previous|, ABSOLUTE_FLOOR)`` —
    the floor keeps microsecond baselines and near-zero overhead
    fractions from flagging on noise.
    """
    regressions: List[Dict[str, Any]] = []
    improvements: List[Dict[str, Any]] = []
    for path in sorted(set(previous) & set(current)):
        before, after = previous[path], current[path]
        sign = direction(path.rsplit(".", 1)[-1])
        if sign is None:
            continue
        slack = tolerance * max(abs(before), ABSOLUTE_FLOOR)
        worse = (after - before) if sign == "lower" else (before - after)
        record = {
            "metric": path, "direction": sign,
            "before": before, "after": after, "delta": after - before,
        }
        if worse > slack:
            regressions.append(record)
        elif worse < -slack:
            improvements.append(record)
    return regressions, improvements


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="trend ledger over the committed BENCH_*.json files"
    )
    parser.add_argument(
        "--root", default=os.path.join(os.path.dirname(__file__), ".."),
        help="repository root holding the BENCH files (default: repo)",
    )
    parser.add_argument(
        "--ledger", default=None,
        help=f"ledger path (default <root>/{LEDGER_NAME})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="append the current metrics as a new ledger entry",
    )
    parser.add_argument(
        "--label", default=None,
        help="entry label for --update (default: entry-<n>)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any metric regressed beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"relative regression budget (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the comparison as machine-readable JSON",
    )
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    ledger_path = args.ledger or os.path.join(root, LEDGER_NAME)

    current = collect_metrics(root)
    if not current:
        print(f"error: no BENCH_*.json files under {root}",
              file=sys.stderr)
        return 1
    ledger = load_ledger(ledger_path)
    entries = ledger["entries"]
    previous = entries[-1]["metrics"] if entries else {}
    regressions, improvements = compare(previous, current, args.tolerance)

    if args.json:
        print(json.dumps(
            {
                "metrics": len(current),
                "baseline": entries[-1]["label"] if entries else None,
                "regressions": regressions,
                "improvements": improvements,
            },
            indent=2, sort_keys=True,
        ))
    else:
        baseline = entries[-1]["label"] if entries else "(no ledger)"
        print(
            f"{len(current)} tracked metrics across "
            f"{len(bench_files(root))} BENCH files; baseline {baseline}"
        )
        for record in regressions:
            print(
                f"REGRESSION {record['metric']}: "
                f"{record['before']:g} -> {record['after']:g} "
                f"({record['direction']} is better)"
            )
        for record in improvements:
            print(
                f"improved   {record['metric']}: "
                f"{record['before']:g} -> {record['after']:g}"
            )
        if previous and not regressions and not improvements:
            print(f"no movement beyond tolerance {args.tolerance:g}")

    if args.update:
        entries.append(
            {
                "label": args.label or f"entry-{len(entries)}",
                "recorded_unix": int(time.time()),
                "files": [os.path.basename(p) for p in bench_files(root)],
                "metrics": current,
            }
        )
        with open(ledger_path, "w", encoding="utf-8") as handle:
            json.dump(ledger, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {ledger_path} ({len(entries)} entries)")

    if args.check and regressions:
        print(
            f"error: {len(regressions)} metric(s) regressed beyond "
            f"{args.tolerance:g}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
