"""Property-based cross-validation of the exploration stack.

These are the strongest tests in the suite: on random specifications,
EXPLORE must agree with exhaustive ground truth, the boolean equation
with the set predicate, the estimate must bound the achieved
flexibility, and the CSP and SAT binding backends must agree.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.activation import flatten
from repro.binding import Allocation, is_feasible_binding, solve_binding, solve_binding_sat
from repro.boolexpr import evaluate_over_set
from repro.core import (
    dominates,
    estimate_flexibility,
    evaluate_allocation,
    exhaustive_front,
    explore,
    iter_selections,
    possible_allocation_expr,
)
from repro.spec import activatable_clusters, supports_problem

from .randspec import random_spec

seeds = st.integers(min_value=0, max_value=10_000)
masks = st.integers(min_value=0, max_value=255)


def subset_from_mask(spec, mask):
    names = sorted(spec.units.names())
    return frozenset(n for i, n in enumerate(names) if mask >> i & 1)


class TestExploreGroundTruth:
    @settings(max_examples=12, deadline=None)
    @given(seeds)
    def test_explore_equals_exhaustive(self, seed):
        """The flagship property: EXPLORE finds the exact front."""
        spec = random_spec(seed)
        result = explore(spec)
        exact = exhaustive_front(spec)
        assert result.front() == [impl.point for impl in exact]

    @settings(max_examples=12, deadline=None)
    @given(seeds)
    def test_explore_points_are_feasible_and_non_dominated(self, seed):
        spec = random_spec(seed)
        result = explore(spec)
        for implementation in result.points:
            # re-evaluating the allocation reproduces the flexibility
            check = evaluate_allocation(spec, implementation.units)
            assert check is not None
            assert check.flexibility == implementation.flexibility
        for a in result.front():
            for b in result.front():
                assert not dominates(a, b)

    @settings(max_examples=12, deadline=None)
    @given(seeds)
    def test_ablation_toggles_never_change_front(self, seed):
        spec = random_spec(seed)
        reference = explore(spec).front()
        assert explore(spec, use_estimation=False).front() == reference
        assert explore(spec, prune_comm=False).front() == reference
        assert explore(spec, use_possible_filter=False).front() == reference


class TestPredicateProperties:
    @settings(max_examples=30, deadline=None)
    @given(seeds, masks)
    def test_boolean_equation_equals_set_predicate(self, seed, mask):
        spec = random_spec(seed)
        subset = subset_from_mask(spec, mask)
        expr = possible_allocation_expr(spec)
        assert evaluate_over_set(expr, subset) == supports_problem(
            spec, subset
        )

    @settings(max_examples=30, deadline=None)
    @given(seeds, masks)
    def test_estimate_bounds_achieved(self, seed, mask):
        spec = random_spec(seed)
        subset = subset_from_mask(spec, mask)
        implementation = evaluate_allocation(spec, subset)
        estimate = estimate_flexibility(spec, subset)
        if implementation is not None:
            assert implementation.flexibility <= estimate
        else:
            # either not possible, or possible but nothing feasible
            assert estimate >= 0

    @settings(max_examples=30, deadline=None)
    @given(seeds, masks)
    def test_covered_clusters_are_activatable(self, seed, mask):
        spec = random_spec(seed)
        subset = subset_from_mask(spec, mask)
        implementation = evaluate_allocation(spec, subset)
        if implementation is None:
            return
        assert implementation.clusters <= activatable_clusters(
            spec, subset
        )
        # every covering record's binding is genuinely feasible
        allocation = Allocation(spec, subset)
        from repro.binding import Binding

        for record in implementation.coverage:
            flat = flatten(spec.problem, record.selection, spec.p_index)
            binding = Binding(spec, record.binding)
            assert is_feasible_binding(spec, allocation, flat, binding)


class TestEnumeratorGroundTruth:
    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_enumerator_matches_brute_force_order(self, seed):
        """The lazy cost-ordered enumeration yields exactly the sorted
        non-empty subset lattice."""
        from itertools import combinations

        from repro.core import AllocationEnumerator

        spec = random_spec(seed)
        names = list(spec.units.names())
        enumerated = list(AllocationEnumerator(spec))
        brute = []
        for size in range(1, len(names) + 1):
            for subset in combinations(names, size):
                brute.append(
                    (spec.units.total_cost(subset), frozenset(subset))
                )
        assert len(enumerated) == len(brute)
        assert {u for _, u in enumerated} == {u for _, u in brute}
        costs = [c for c, _ in enumerated]
        assert costs == sorted(costs)
        for cost, units in enumerated:
            assert cost == spec.units.total_cost(units)

    @settings(max_examples=25, deadline=None)
    @given(seeds, masks)
    def test_schedule_accepts_whatever_utilization_accepts_single_resource(
        self, seed, mask
    ):
        """On a single functional resource the 69% estimate is strictly
        more pessimistic than the exact schedule: the loaded work fits
        in 0.69 T, so the one-period schedule finishes early.  (Across
        resources, dependence chains can make the exact test stricter,
        so no general dominance holds.)"""
        from repro.timing import (
            meets_utilization_bound,
            schedule_meets_periods,
        )

        spec = random_spec(seed)
        functional = [
            u.name for u in spec.units.functional_units()
        ][:1]
        if not functional:
            return
        subset = frozenset(functional)
        if not supports_problem(spec, subset):
            return
        allowed = frozenset(activatable_clusters(spec, subset))
        allocation = Allocation(spec, subset)
        for selection in iter_selections(
            spec.problem, spec.p_index, allowed
        ):
            flat = flatten(spec.problem, selection, spec.p_index)
            binding = solve_binding(spec, allocation, flat)
            if binding is None:
                continue
            assert meets_utilization_bound(spec, flat, binding.as_dict())
            assert schedule_meets_periods(spec, flat, binding.as_dict())


class TestSolverAgreement:
    @settings(max_examples=20, deadline=None)
    @given(seeds, masks, st.integers(min_value=0, max_value=10**6))
    def test_csp_and_sat_agree(self, seed, mask, pick):
        spec = random_spec(seed)
        subset = subset_from_mask(spec, mask)
        if not supports_problem(spec, subset):
            return
        allowed = frozenset(activatable_clusters(spec, subset))
        selections = list(
            iter_selections(spec.problem, spec.p_index, allowed)
        )
        if not selections:
            return
        selection = selections[pick % len(selections)]
        flat = flatten(spec.problem, selection, spec.p_index)
        allocation = Allocation(spec, subset)
        csp = solve_binding(spec, allocation, flat)
        sat = solve_binding_sat(spec, allocation, flat)
        assert (csp is None) == (sat is None)
        if csp is not None:
            assert is_feasible_binding(spec, allocation, flat, csp)
            assert is_feasible_binding(spec, allocation, flat, sat)
