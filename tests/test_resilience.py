"""Tests of the resilience runtime: journal, checkpoint/resume, anytime
budgets, and the optimality-gap semantics.

The fault-injection side (worker kills, retries, quarantine, cache
corruption) lives in ``tests/test_faults.py``; the large seeded
kill/resume differential corpus lives in ``tests/test_robustness.py``.
"""

import json
import os

import pytest

from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import OptimalityGap, explore
from repro.errors import CheckpointError, ExplorationError
from repro.io import dumps_result, loads_result
from repro.resilience import (
    CHECKPOINT_EVERY_DEFAULT,
    AnytimeBudget,
    JournalWriter,
    RetryPolicy,
    load_checkpoint,
    read_journal,
    resume_explore,
    verify_gap,
)


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def settop_full(settop):
    return explore(settop)


def fingerprint(result):
    """Everything that must be reproducible across kills and resumes."""
    points = tuple(
        (tuple(sorted(p.units)), p.cost, p.flexibility,
         tuple(sorted(p.clusters)))
        for p in result.points
    )
    stats = tuple(
        sorted(
            (k, v)
            for k, v in result.stats.as_dict().items()
            if k != "elapsed_seconds"
        )
    )
    return (points, stats, result.max_flexibility_bound, result.completed)


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.log")
        with JournalWriter(path, fresh=True) as journal:
            journal.append("header", {"x": 1})
            journal.append("outcome", [1, 2, 3], sync=True)
        records, valid_length = read_journal(path)
        assert records == [("header", {"x": 1}), ("outcome", [1, 2, 3])]
        assert valid_length == os.path.getsize(path)

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = str(tmp_path / "j.log")
        with JournalWriter(path, fresh=True) as journal:
            journal.append("a", 1)
            journal.append("b", 2)
        clean_size = os.path.getsize(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t":"c","p":3')  # killed mid-write: no \n, no crc
        records, valid_length = read_journal(path)
        assert records == [("a", 1), ("b", 2)]
        assert valid_length == clean_size

    def test_corrupt_middle_record_raises(self, tmp_path):
        path = str(tmp_path / "j.log")
        with JournalWriter(path, fresh=True) as journal:
            journal.append("a", 1)
            journal.append("b", 2)
        data = open(path, "rb").read()
        lines = data.splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.write(lines[0].replace(b'"p":1', b'"p":9'))  # bad crc
            handle.write(lines[1])
        with pytest.raises(CheckpointError, match="corrupt"):
            read_journal(path)

    def test_resume_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "j.log")
        with JournalWriter(path, fresh=True) as journal:
            journal.append("a", 1)
        clean = os.path.getsize(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage")
        with JournalWriter(path, truncate_to=clean) as journal:
            journal.append("b", 2)
        records, _ = read_journal(path)
        assert records == [("a", 1), ("b", 2)]

    def test_closed_writer_rejects_appends(self, tmp_path):
        journal = JournalWriter(str(tmp_path / "j.log"), fresh=True)
        journal.close()
        with pytest.raises(CheckpointError, match="closed"):
            journal.append("a", 1)

    def test_append_under_enospc_leaves_no_half_record(self, tmp_path):
        """A full disk fails the append loudly *before* any byte lands:
        the journal stays a valid prefix a later append can follow."""
        from repro.resilience.faults import FaultPlan, inject

        path = str(tmp_path / "j.log")
        with JournalWriter(path, fresh=True) as journal:
            journal.append("a", 1)
            # Call indices count per installed plan: this append is
            # the plan's first sighting of the disk seam.
            with inject(FaultPlan(schedule={"disk": {1: "enospc"}})):
                with pytest.raises(CheckpointError, match="ENOSPC"):
                    journal.append("b", 2)
            journal.append("c", 3)
        records, valid_length = read_journal(path)
        assert records == [("a", 1), ("c", 3)]
        assert valid_length == os.path.getsize(path)

    def test_torn_final_record_discards_and_resumes(self, tmp_path):
        """An injected torn write (process dies mid-record) leaves a
        torn final line; the reader discards it and a resuming writer
        truncates to the clean prefix."""
        from repro.resilience.faults import (
            FaultPlan,
            SimulatedCrash,
            inject,
        )

        path = str(tmp_path / "j.log")
        with inject(FaultPlan(schedule={"disk": {3: "torn"}})):
            with pytest.raises(SimulatedCrash, match="torn"):
                with JournalWriter(path, fresh=True) as journal:
                    journal.append("a", 1)
                    journal.append("b", 2)
                    journal.append("c", 3)
        records, valid_length = read_journal(path)
        assert records == [("a", 1), ("b", 2)]
        assert valid_length < os.path.getsize(path)  # the torn tail
        with JournalWriter(path, truncate_to=valid_length) as journal:
            journal.append("c", 3)
        assert read_journal(path)[0] == [("a", 1), ("b", 2), ("c", 3)]

    def test_fsync_failure_is_loud(self, tmp_path):
        """A lying durability barrier surfaces as CheckpointError — the
        record is on the file, but the caller must never believe it is
        stable."""
        from repro.resilience.faults import FaultPlan, inject

        path = str(tmp_path / "j.log")
        with JournalWriter(path, fresh=True) as journal:
            journal.append("a", 1)
            with inject(FaultPlan(schedule={"disk": {1: "fsync_fail"}})):
                with pytest.raises(CheckpointError, match="fsync"):
                    journal.append("b", 2, sync=True)
        assert read_journal(path)[0] == [("a", 1), ("b", 2)]


class TestCheckpointing:
    def test_checkpointing_does_not_perturb_the_result(
        self, settop, settop_full, tmp_path
    ):
        path = str(tmp_path / "run.ckpt")
        result = explore(settop, checkpoint=path, checkpoint_every=32)
        assert result.front() == settop_full.front()
        assert result.completed
        assert result.stats.checkpoints_written > 0
        # everything except the checkpoint counter matches the plain run
        plain = {
            k: v
            for k, v in settop_full.stats.as_dict().items()
            if k not in ("elapsed_seconds", "checkpoints_written")
        }
        checkpointed = {
            k: v
            for k, v in result.stats.as_dict().items()
            if k not in ("elapsed_seconds", "checkpoints_written")
        }
        assert plain == checkpointed

    def test_default_cadence_used_when_unset(self, settop, tmp_path):
        path = str(tmp_path / "run.ckpt")
        result = explore(settop, checkpoint=path)
        replayed = 8154  # settop candidates consumed by the full run
        assert (
            result.stats.checkpoints_written
            == replayed // CHECKPOINT_EVERY_DEFAULT + 1  # + final snapshot
        )

    def test_journal_is_self_contained(self, settop, tmp_path):
        path = str(tmp_path / "run.ckpt")
        explore(settop, checkpoint=path, checkpoint_every=64)
        loaded = load_checkpoint(path)
        assert loaded.spec.name == settop.name
        assert loaded.completed
        assert loaded.params["checkpoint_every"] == 64
        assert loaded.cursor > 0
        assert len(loaded.cache) > 0

    def test_resume_of_finished_run_is_idempotent(self, settop, tmp_path):
        path = str(tmp_path / "run.ckpt")
        result = explore(settop, checkpoint=path, checkpoint_every=64)
        once = resume_explore(path)
        twice = resume_explore(path)
        assert fingerprint(once) == fingerprint(result)
        assert fingerprint(twice) == fingerprint(result)

    def test_resume_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            resume_explore(str(tmp_path / "absent.ckpt"))

    def test_resume_rejects_non_checkpoint_journal(self, tmp_path):
        path = str(tmp_path / "other.log")
        with JournalWriter(path, fresh=True) as journal:
            journal.append("header", {"format": "something-else"})
        with pytest.raises(CheckpointError, match="not an explore"):
            resume_explore(path)

    def test_resume_rejects_result_affecting_overrides(
        self, settop, tmp_path
    ):
        path = str(tmp_path / "run.ckpt")
        explore(settop, checkpoint=path, checkpoint_every=64)
        with pytest.raises(CheckpointError, match="result-affecting"):
            resume_explore(path, backend="sat")
        with pytest.raises(CheckpointError, match="unknown"):
            resume_explore(path, no_such_option=1)

    def test_resume_allows_execution_geometry_overrides(
        self, settop, settop_full, tmp_path
    ):
        path = str(tmp_path / "run.ckpt")
        result = explore(settop, checkpoint=path, checkpoint_every=64)
        resumed = resume_explore(path, parallel="thread", workers=2)
        assert fingerprint(resumed) == fingerprint(result)
        assert resumed.front() == settop_full.front()

    def test_checkpoint_cursor_must_fit_the_spec(self, settop, tmp_path):
        """A cursor past the enumeration means journal/spec mismatch."""
        path = str(tmp_path / "run.ckpt")
        explore(settop, checkpoint=path, checkpoint_every=64)
        records, _ = read_journal(path)
        # rewrite the journal with an absurd cursor in the last snapshot
        from repro.resilience.journal import encode_record

        with open(path, "w", encoding="utf-8") as handle:
            for record_type, payload in records:
                if record_type == "checkpoint":
                    payload = dict(payload, cursor=10**9)
                handle.write(encode_record(record_type, payload))
        with pytest.raises(CheckpointError, match="cursor"):
            resume_explore(path)


class TestAnytimeBudgets:
    def test_deadline_zero_returns_immediately(self, settop):
        result = explore(settop, deadline_seconds=0)
        assert not result.completed
        assert result.points == []
        assert result.gap is not None
        assert result.gap.reason == "deadline"
        assert result.gap.achieved_flexibility == 0.0
        # nothing was explored, so the gap covers the whole space
        assert result.gap.flexibility_bound == 8.0
        assert result.stats.candidates_enumerated == 0

    def test_max_evaluations_zero(self, settop):
        result = explore(settop, max_evaluations=0)
        assert not result.completed
        assert result.gap.reason == "max_evaluations"
        assert result.points == []

    def test_negative_budgets_rejected(self, settop):
        with pytest.raises(ExplorationError, match="deadline_seconds"):
            explore(settop, deadline_seconds=-1)
        with pytest.raises(ExplorationError, match="max_evaluations"):
            explore(settop, max_evaluations=-1)

    @pytest.mark.parametrize("budget", [1, 2, 3, 5, 10, 25])
    def test_truncated_gap_is_sound(self, settop, settop_full, budget):
        truncated = explore(settop, max_evaluations=budget)
        assert truncated.completed == (
            budget >= settop_full.stats.estimate_exceeded
        )
        assert verify_gap(truncated, settop_full) == []

    def test_truncated_front_is_a_prefix(self, settop, settop_full):
        truncated = explore(settop, max_evaluations=5)
        assert not truncated.completed
        full_front = settop_full.front()
        assert truncated.front() == full_front[: len(truncated.front())]

    def test_generous_budget_completes_without_gap(
        self, settop, settop_full
    ):
        result = explore(settop, max_evaluations=10**6)
        assert result.completed
        assert result.gap is None
        assert result.front() == settop_full.front()
        assert verify_gap(result, settop_full) == []

    def test_budgets_work_on_tv_decoder(self):
        spec = build_tv_decoder_spec()
        full = explore(spec)
        for budget in (1, 2, 4):
            truncated = explore(spec, max_evaluations=budget)
            assert verify_gap(truncated, full) == []

    def test_verify_gap_flags_dishonest_gaps(self, settop, settop_full):
        truncated = explore(settop, max_evaluations=3)
        dishonest = truncated.gap._replace(achieved_flexibility=99.0)
        truncated.gap = dishonest
        assert any(
            "achieved_flexibility" in v
            for v in verify_gap(truncated, settop_full)
        )
        truncated.gap = None
        assert verify_gap(truncated, settop_full) == [
            "truncated run has no OptimalityGap"
        ]

    def test_budget_object_validation(self):
        with pytest.raises(ValueError):
            AnytimeBudget(deadline_seconds=-0.5)
        with pytest.raises(ValueError):
            AnytimeBudget(max_evaluations=-2)
        assert AnytimeBudget().exhausted(10**9) is None

    def test_resume_with_fresh_budget_finishes_a_truncated_run(
        self, settop, settop_full, tmp_path
    ):
        path = str(tmp_path / "run.ckpt")
        truncated = explore(
            settop, checkpoint=path, checkpoint_every=16, max_evaluations=5
        )
        assert not truncated.completed
        finished = resume_explore(path, max_evaluations=None)
        assert finished.completed
        assert finished.front() == settop_full.front()


class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.5,
                             jitter=0.5, seed=3)
        first = policy.schedule()
        second = policy.schedule()
        assert first == second
        assert len(first) == 4
        for delay in first:
            assert 0.0 < delay <= 0.5 * 1.5

    def test_dict_roundtrip(self):
        policy = RetryPolicy(attempts=4, base_delay=0.2, seed=9)
        clone = RetryPolicy.from_dict(policy.as_dict())
        assert clone.schedule() == policy.schedule()

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestResultSerialization:
    def test_truncated_result_roundtrip(self, settop):
        truncated = explore(settop, max_evaluations=3)
        text = dumps_result(truncated)
        document = json.loads(text)
        assert document["version"] == 2
        assert document["completed"] is False
        assert document["gap"]["reason"] == "max_evaluations"
        loaded = loads_result(text)
        assert not loaded.completed
        assert isinstance(loaded.gap, OptimalityGap)
        assert loaded.gap == truncated.gap
        assert loaded.front() == truncated.front()

    def test_version1_documents_still_load(self, settop):
        result = explore(settop, max_candidates=50)
        document = json.loads(dumps_result(result))
        document["version"] = 1
        del document["completed"], document["gap"], document["events"]
        loaded = loads_result(json.dumps(document))
        assert loaded.completed
        assert loaded.gap is None
        assert loaded.front() == result.front()
