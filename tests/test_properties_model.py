"""Property-based tests of the model layers on random hierarchies."""

import random

from hypothesis import given, settings, strategies as st

from repro.activation import (
    activation_from_selection,
    check_activation,
    flatten,
    selection_from_clusters,
)
from repro.core import flexibility, iter_selections, max_flexibility
from repro.hgraph import HierarchyIndex, leaves, new_cluster
from repro.io import dumps_spec, loads_spec
from repro.spec import (
    activatable_clusters,
    bindable_leaves,
    supports_problem,
)

from .randspec import random_problem, random_spec

seeds = st.integers(min_value=0, max_value=10_000)


def any_selection(problem, index, rng):
    """A random complete selection over all clusters of the hierarchy."""
    allowed = frozenset(index.clusters)
    selections = list(iter_selections(problem, index, allowed))
    return rng.choice(selections) if selections else None


class TestHierarchyProperties:
    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_leaves_partition_scopes(self, seed):
        problem = random_problem(random.Random(seed))
        leaf_map = leaves(problem)
        index = HierarchyIndex(problem)
        # every leaf's owning scope is the root or a known cluster
        for name in leaf_map:
            scope = index.scope_of_node[name]
            assert scope is problem or scope.name in index.clusters

    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_selection_induces_valid_activation(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng)
        index = HierarchyIndex(problem)
        selection = any_selection(problem, index, rng)
        if selection is None:
            return
        activation = activation_from_selection(problem, selection, index)
        assert check_activation(problem, activation, index) == []

    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_selection_cluster_roundtrip(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng)
        index = HierarchyIndex(problem)
        selection = any_selection(problem, index, rng)
        if selection is None:
            return
        activation = activation_from_selection(problem, selection, index)
        recovered = selection_from_clusters(
            problem, activation.clusters, index
        )
        assert recovered == selection

    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_flatten_invariants(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng)
        index = HierarchyIndex(problem)
        selection = any_selection(problem, index, rng)
        if selection is None:
            return
        flat = flatten(problem, selection, index)
        all_leaves = set(leaves(problem))
        assert set(flat.leaves) <= all_leaves
        assert len(set(flat.leaves)) == len(flat.leaves)
        for src, dst in flat.edges:
            assert src in flat.leaves
            assert dst in flat.leaves


class TestFlexibilityProperties:
    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_max_is_upper_bound_of_any_consistent_subset(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng)
        index = HierarchyIndex(problem)
        maximum = max_flexibility(problem)
        # any union of full selections is a consistent activation set
        selections = list(
            iter_selections(problem, index, frozenset(index.clusters))
        )
        if not selections:
            return
        chosen = rng.sample(
            selections, k=rng.randint(1, min(3, len(selections)))
        )
        active = set()
        for selection in chosen:
            active.update(selection.values())
        assert flexibility(problem, active=active, strict=False) <= maximum

    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_adding_leaf_cluster_increments_max_by_one(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng)
        index = HierarchyIndex(problem)
        before = max_flexibility(problem)
        interface = rng.choice(list(index.interfaces.values()))
        fresh = new_cluster(interface, "fresh_alternative")
        fresh.add_vertex("fresh_vertex")
        assert max_flexibility(problem) == before + 1

    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_flexibility_monotone_in_active_set(self, seed):
        """Dropping one selection's worth of clusters never increases f."""
        rng = random.Random(seed)
        problem = random_problem(rng)
        index = HierarchyIndex(problem)
        selections = list(
            iter_selections(problem, index, frozenset(index.clusters))
        )
        if len(selections) < 2:
            return
        keep = rng.sample(selections, k=2)
        small = set(keep[0].values())
        large = small | set(keep[1].values())
        f_small = flexibility(problem, active=small, strict=False)
        f_large = flexibility(problem, active=large, strict=False)
        assert f_small <= f_large


class TestSpecProperties:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_json_roundtrip_fixpoint(self, seed):
        spec = random_spec(seed)
        text = dumps_spec(spec)
        assert dumps_spec(loads_spec(text)) == text

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=255))
    def test_bindable_monotone_in_allocation(self, seed, mask):
        spec = random_spec(seed)
        names = sorted(spec.units.names())
        subset = {n for i, n in enumerate(names) if mask >> i & 1}
        small = bindable_leaves(spec, subset)
        full = bindable_leaves(spec, set(names))
        assert small <= full

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=255))
    def test_supports_problem_monotone(self, seed, mask):
        spec = random_spec(seed)
        names = sorted(spec.units.names())
        subset = {n for i, n in enumerate(names) if mask >> i & 1}
        if supports_problem(spec, subset):
            assert supports_problem(spec, set(names))

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=255))
    def test_activatable_subset_of_clusters(self, seed, mask):
        spec = random_spec(seed)
        names = sorted(spec.units.names())
        subset = {n for i, n in enumerate(names) if mask >> i & 1}
        active = activatable_clusters(spec, subset)
        assert active <= set(spec.p_index.clusters)
        # monotone too
        assert active <= activatable_clusters(spec, set(names))
