"""Unit tests for allocation, binding, routing, feasibility and solvers."""

import pytest

from repro.activation import flatten
from repro.binding import (
    Allocation,
    Binding,
    BindingSolver,
    Router,
    allocation_of,
    binding_violations,
    is_feasible_binding,
    solve_binding,
    solve_binding_sat,
)
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.errors import BindingError


@pytest.fixture(scope="module")
def tv_spec():
    return build_tv_decoder_spec()


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


TV_D2U1 = {"I_D": "gamma_D2", "I_U": "gamma_U1"}
TV_D1U1 = {"I_D": "gamma_D1", "I_U": "gamma_U1"}


class TestAllocation:
    def test_cost(self, tv_spec):
        alloc = Allocation(tv_spec, {"muP", "C1", "D3"})
        assert alloc.cost == 140.0

    def test_unknown_unit_rejected(self, tv_spec):
        with pytest.raises(Exception):
            Allocation(tv_spec, {"muP", "nope"})

    def test_closed(self, tv_spec):
        assert Allocation(tv_spec, {"muP", "D3"}).closed
        allocation_of(tv_spec, {"muP"})  # does not raise

    def test_functional_comm_split(self, tv_spec):
        alloc = Allocation(tv_spec, {"muP", "C1", "D3"})
        assert alloc.functional_unit_names() == {"muP", "D3"}
        assert alloc.comm_unit_names() == {"C1"}

    def test_contains_eq_hash(self, tv_spec):
        a1 = Allocation(tv_spec, {"muP"})
        a2 = Allocation(tv_spec, {"muP"})
        assert "muP" in a1 and a1 == a2 and hash(a1) == hash(a2)


class TestBinding:
    def test_requires_mapping_edge(self, tv_spec):
        with pytest.raises(BindingError):
            Binding(tv_spec, {"P_D2": "muP"})  # P_D2 only maps to A

    def test_lookups(self, tv_spec):
        b = Binding(tv_spec, {"P_D3": "D3_res", "P_A": "muP"})
        assert b.resource_of("P_D3") == "D3_res"
        assert b.unit_of("P_D3") == "D3"
        assert b.latency_of("P_D3") == 63.0
        assert b.used_units() == {"D3", "muP"}
        assert "P_A" in b and len(b) == 2

    def test_unbound_raises(self, tv_spec):
        b = Binding(tv_spec, {})
        with pytest.raises(BindingError):
            b.resource_of("P_A")


class TestRouter:
    def test_direct_bus_route(self, tv_spec):
        router = Router(tv_spec, {"muP", "A", "C2"})
        assert router.resources_connected("muP", "A")

    def test_no_bus_no_route(self, tv_spec):
        router = Router(tv_spec, {"muP", "A"})
        assert not router.resources_connected("muP", "A")

    def test_same_resource_trivially_connected(self, tv_spec):
        router = Router(tv_spec, {"muP"})
        assert router.resources_connected("muP", "muP")

    def test_asic_fpga_not_connected(self, tv_spec):
        """The paper's infeasible-binding example: no ASIC-FPGA bus."""
        router = Router(tv_spec, set(tv_spec.units.names()))
        assert not router.resources_connected("A", "U1_res")
        # not even through muP: functional resources do not route
        assert router.resources_connected("muP", "A")
        assert router.resources_connected("muP", "U1_res")

    def test_cluster_unit_uses_interface_connectivity(self, tv_spec):
        router = Router(tv_spec, {"muP", "C1", "D3"})
        assert router.resources_connected("muP", "D3_res")

    def test_unallocated_bus_does_not_route(self, tv_spec):
        router = Router(tv_spec, {"muP", "D3"})
        assert not router.resources_connected("muP", "D3_res")

    def test_multi_hop_bus_chain(self):
        """Routes may pass through chained communication resources but
        never through a functional resource."""
        from repro.spec import (
            ArchitectureGraph, ProblemGraph, make_specification,
        )

        arch = ArchitectureGraph()
        arch.add_resource("r1", cost=1)
        arch.add_resource("r2", cost=1)
        arch.add_resource("hub", cost=1)  # functional, must not route
        arch.add_bus("b1", 1, "r1")
        arch.add_bus("b2", 1, "r2")
        arch.add_edge("b1", "b2")
        arch.add_edge("b2", "b1")
        arch.add_edge("r1", "hub")
        arch.add_edge("hub", "r2")
        problem = ProblemGraph()
        problem.add_vertex("p")
        spec = make_specification(problem, arch, [("p", "r1", 1.0)])

        full = Router(spec, {"r1", "r2", "hub", "b1", "b2"})
        assert full.resources_connected("r1", "r2")  # via b1-b2
        no_bridge = Router(spec, {"r1", "r2", "hub", "b1"})
        # only r1-hub-r2 remains, and hub is functional
        assert not no_bridge.resources_connected("r1", "r2")

    def test_reachable_from_unknown_node_empty(self, tv_spec):
        router = Router(tv_spec, {"muP"})
        assert router.reachable_from("A") == frozenset()


class TestFeasibility:
    def test_paper_infeasible_example(self, tv_spec):
        """P_D2 on ASIC + P_U1 on FPGA: no bus connects ASIC and FPGA."""
        flat = flatten(tv_spec.problem, TV_D2U1)
        alloc = Allocation(tv_spec, set(tv_spec.units.names()))
        binding = Binding(
            tv_spec,
            {"P_A": "muP", "P_C": "muP", "P_D2": "A", "P_U1": "U1_res"},
        )
        violations = binding_violations(tv_spec, alloc, flat, binding)
        assert any("rule 3" in v for v in violations)
        assert not is_feasible_binding(tv_spec, alloc, flat, binding)

    def test_feasible_example(self, tv_spec):
        flat = flatten(tv_spec.problem, TV_D2U1)
        alloc = Allocation(tv_spec, {"muP", "A", "C2"})
        binding = Binding(
            tv_spec,
            {"P_A": "muP", "P_C": "muP", "P_D2": "A", "P_U1": "A"},
        )
        assert is_feasible_binding(tv_spec, alloc, flat, binding)

    def test_unbound_process_detected(self, tv_spec):
        flat = flatten(tv_spec.problem, TV_D2U1)
        alloc = Allocation(tv_spec, set(tv_spec.units.names()))
        binding = Binding(tv_spec, {"P_A": "muP", "P_C": "muP"})
        violations = binding_violations(tv_spec, alloc, flat, binding)
        assert any("rule 2" in v for v in violations)

    def test_inactive_process_detected(self, tv_spec):
        flat = flatten(tv_spec.problem, TV_D1U1)
        alloc = Allocation(tv_spec, set(tv_spec.units.names()))
        binding = Binding(
            tv_spec,
            {
                "P_A": "muP", "P_C": "muP", "P_D1": "muP", "P_U1": "muP",
                "P_D2": "A",  # gamma_D2 is not selected
            },
        )
        violations = binding_violations(tv_spec, alloc, flat, binding)
        assert any("rule 1" in v for v in violations)

    def test_unallocated_resource_detected(self, tv_spec):
        flat = flatten(tv_spec.problem, TV_D1U1)
        alloc = Allocation(tv_spec, {"muP"})
        binding = Binding(
            tv_spec,
            {"P_A": "muP", "P_C": "muP", "P_D1": "A", "P_U1": "muP"},
        )
        violations = binding_violations(tv_spec, alloc, flat, binding)
        assert any("not allocated" in v for v in violations)

    def test_two_fpga_designs_at_once_rejected(self, settop):
        """Architecture rule 1: the FPGA holds one design at a time."""
        flat = flatten(
            settop.problem,
            {"I_App": "gamma_D", "I_D": "gamma_D3", "I_U": "gamma_U2"},
        )
        alloc = Allocation(settop, {"muP2", "C1", "D3", "U2"})
        binding = Binding(
            settop,
            {
                "P_A": "muP2", "P_C_D": "muP2",
                "P_D3": "D3_res", "P_U2": "U2_res",
            },
        )
        violations = binding_violations(settop, alloc, flat, binding)
        assert any("FPGA" in v for v in violations)


class TestSolver:
    def test_solver_finds_feasible_binding(self, tv_spec):
        flat = flatten(tv_spec.problem, TV_D1U1)
        alloc = Allocation(tv_spec, {"muP"})
        binding = solve_binding(tv_spec, alloc, flat)
        assert binding is not None
        assert binding.as_dict() == {
            "P_A": "muP", "P_C": "muP", "P_D1": "muP", "P_U1": "muP",
        }

    def test_solver_respects_routing(self, tv_spec):
        # gamma_D3 requires the FPGA and hence bus C1
        flat = flatten(
            tv_spec.problem, {"I_D": "gamma_D3", "I_U": "gamma_U1"}
        )
        assert solve_binding(
            tv_spec, Allocation(tv_spec, {"muP", "D3"}), flat
        ) is None
        assert solve_binding(
            tv_spec, Allocation(tv_spec, {"muP", "D3", "C1"}), flat
        ) is not None

    def test_solver_respects_interface_exclusivity(self, settop):
        flat = flatten(
            settop.problem,
            {"I_App": "gamma_D", "I_D": "gamma_D3", "I_U": "gamma_U2"},
        )
        # Only FPGA designs can host P_D3 and P_U2, but never together.
        alloc = Allocation(settop, {"muP2", "C1", "D3", "U2"})
        assert solve_binding(settop, alloc, flat) is None

    def test_solver_respects_utilization(self, settop):
        flat = flatten(settop.problem, {"I_App": "gamma_G", "I_G": "gamma_G1"})
        # game on muP2 alone: (95+90)/240 > 0.69 -> no feasible binding
        assert solve_binding(settop, Allocation(settop, {"muP2"}), flat) is None
        # on muP1 it fits
        assert solve_binding(settop, Allocation(settop, {"muP1"}), flat) is not None

    def test_solver_without_utilization_check(self, settop):
        flat = flatten(settop.problem, {"I_App": "gamma_G", "I_G": "gamma_G1"})
        solver = BindingSolver(
            settop, Allocation(settop, {"muP2"}), check_utilization=False
        )
        assert solver.solve(flat) is not None

    def test_iter_solutions_all_distinct(self, tv_spec):
        flat = flatten(tv_spec.problem, TV_D1U1)
        alloc = Allocation(tv_spec, set(tv_spec.units.names()))
        solver = BindingSolver(tv_spec, alloc)
        solutions = list(solver.iter_solutions(flat))
        assert len(solutions) == len(set(solutions))
        assert all(
            is_feasible_binding(tv_spec, alloc, flat, b) for b in solutions
        )
        # P_D1 on muP or A, P_U1 on muP, A or U1_res -> but A<->FPGA fails;
        # enumerate to confirm the solver found every feasible combination.
        assert len(solutions) >= 4

    def test_solutions_verified_feasible(self, settop):
        flat = flatten(
            settop.problem,
            {"I_App": "gamma_D", "I_D": "gamma_D3", "I_U": "gamma_U1"},
        )
        alloc = Allocation(settop, {"muP2", "C1", "D3"})
        binding = solve_binding(settop, alloc, flat)
        assert binding is not None
        assert is_feasible_binding(settop, alloc, flat, binding)
        assert binding.resource_of("P_D3") == "D3_res"

    def test_stats_counted(self, tv_spec):
        flat = flatten(tv_spec.problem, TV_D1U1)
        solver = BindingSolver(tv_spec, Allocation(tv_spec, {"muP"}))
        solver.solve(flat)
        assert solver.stats.invocations == 1
        assert solver.stats.assignments >= 4


class TestSatBackend:
    def test_sat_agrees_with_csp_on_feasibility(self, tv_spec):
        selections = [
            TV_D1U1,
            TV_D2U1,
            {"I_D": "gamma_D3", "I_U": "gamma_U1"},
            {"I_D": "gamma_D3", "I_U": "gamma_U2"},
        ]
        allocations = [
            {"muP"},
            {"muP", "A", "C2"},
            {"muP", "D3", "C1"},
            {"muP", "A", "D3", "U2", "C1", "C2"},
            set(tv_spec.units.names()),
        ]
        for selection in selections:
            flat = flatten(tv_spec.problem, selection)
            for units in allocations:
                alloc = Allocation(tv_spec, units)
                csp = solve_binding(tv_spec, alloc, flat)
                sat = solve_binding_sat(tv_spec, alloc, flat)
                assert (csp is None) == (sat is None), (selection, units)
                if sat is not None:
                    assert is_feasible_binding(tv_spec, alloc, flat, sat)

    def test_sat_utilization_refinement(self, settop):
        flat = flatten(settop.problem, {"I_App": "gamma_G", "I_G": "gamma_G1"})
        assert solve_binding_sat(settop, Allocation(settop, {"muP2"}), flat) is None
        result = solve_binding_sat(settop, Allocation(settop, {"muP1"}), flat)
        assert result is not None
