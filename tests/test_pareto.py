"""Unit and property tests for Pareto dominance and the archive."""

from hypothesis import given, settings, strategies as st

from repro.core import ParetoArchive, dominates, is_non_dominated, pareto_front


points_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50).map(float),
        st.integers(min_value=0, max_value=10).map(float),
    ),
    min_size=0,
    max_size=40,
)


class TestDominance:
    def test_strictly_better_both(self):
        assert dominates((1, 5), (2, 4))

    def test_better_one_equal_other(self):
        assert dominates((1, 5), (2, 5))
        assert dominates((1, 5), (1, 4))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1, 5), (1, 5))

    def test_incomparable(self):
        assert not dominates((1, 2), (2, 5))
        assert not dominates((2, 5), (1, 2))

    def test_is_non_dominated(self):
        pts = [(1.0, 1.0), (2.0, 3.0), (3.0, 2.0)]
        assert is_non_dominated((1.0, 1.0), pts)
        assert is_non_dominated((2.0, 3.0), pts)
        assert not is_non_dominated((3.0, 2.0), pts)


class TestFront:
    def test_simple_front(self):
        pts = [(1.0, 1.0), (2.0, 3.0), (3.0, 2.0), (4.0, 4.0)]
        assert pareto_front(pts) == [(1.0, 1.0), (2.0, 3.0), (4.0, 4.0)]

    def test_duplicates_collapse(self):
        pts = [(1.0, 1.0), (1.0, 1.0)]
        assert pareto_front(pts) == [(1.0, 1.0)]

    @settings(max_examples=200, deadline=None)
    @given(points_strategy)
    def test_front_members_mutually_non_dominated(self, pts):
        front = pareto_front(pts)
        for a in front:
            for b in front:
                assert not dominates(a, b)

    @settings(max_examples=200, deadline=None)
    @given(points_strategy)
    def test_every_point_dominated_or_on_front(self, pts):
        front = pareto_front(pts)
        for p in pts:
            assert p in front or any(dominates(f, p) for f in front)

    @settings(max_examples=100, deadline=None)
    @given(points_strategy)
    def test_front_is_idempotent(self, pts):
        front = pareto_front(pts)
        assert pareto_front(front) == front


class TestArchive:
    def test_add_and_evict(self):
        archive = ParetoArchive()
        assert archive.try_add(10, 1, "a")
        assert archive.try_add(20, 3, "b")
        assert archive.try_add(15, 2, "c")
        assert archive.points == [(10, 1), (15, 2), (20, 3)]
        # dominates (20, 3) and (15, 2)
        assert archive.try_add(12, 3, "d")
        assert archive.points == [(10, 1), (12, 3)]
        assert archive.payloads == ["a", "d"]

    def test_dominated_insert_rejected(self):
        archive = ParetoArchive()
        archive.try_add(10, 5)
        assert not archive.try_add(11, 5)
        assert not archive.try_add(10, 4)
        assert len(archive) == 1

    def test_tie_handling(self):
        strict = ParetoArchive(keep_ties=False)
        strict.try_add(10, 5)
        assert not strict.try_add(10, 5)
        lenient = ParetoArchive(keep_ties=True)
        lenient.try_add(10, 5, "x")
        assert lenient.try_add(10, 5, "y")
        assert len(lenient) == 2

    def test_best_flexibility(self):
        archive = ParetoArchive()
        assert archive.best_flexibility() == 0.0
        archive.try_add(10, 2)
        archive.try_add(30, 7)
        assert archive.best_flexibility() == 7

    @settings(max_examples=150, deadline=None)
    @given(points_strategy)
    def test_archive_equals_batch_front(self, pts):
        archive = ParetoArchive(keep_ties=False)
        for cost, flex in pts:
            archive.try_add(cost, flex)
        assert archive.points == pareto_front(pts, keep_ties=False)
