"""Metrics-registry semantics and the Prometheus text-format contract.

The exposition checker below validates the exported text against the
format's grammar (version 0.0.4): comment lines, metric-line syntax,
histogram series naming, cumulative monotone buckets and the
``+Inf == count`` invariant.
"""

import math
import re

import pytest

from repro.service import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)

#: Prometheus metric line: name, optional {labels}, value.
_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*)\})?"
    r" (?P<value>[0-9eE.+-]+|\+Inf|-Inf|NaN)$"
)


def validate_prometheus_text(text):
    """Assert ``text`` is well-formed exposition; return parsed series."""
    assert text.endswith("\n"), "exposition must end with a newline"
    series = {}
    typed = {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            assert len(line.split(" ", 3)) >= 4
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), kind
            assert name not in typed, f"duplicate TYPE for {name}"
            typed[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _METRIC_LINE.match(line)
        assert match, f"malformed metric line: {line!r}"
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert base in typed or name in typed, f"untyped metric {name!r}"
        series.setdefault(name, []).append(
            (match.group("labels"), match.group("value"))
        )
    # Histogram invariants: cumulative monotone buckets, +Inf == count.
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = series[f"{name}_bucket"]
        counts = [float(v) for _, v in buckets]
        assert counts == sorted(counts), f"{name} buckets not cumulative"
        labels = [lbl for lbl, _ in buckets]
        assert labels[-1] == 'le="+Inf"', f"{name} missing +Inf bucket"
        count = float(series[f"{name}_count"][0][1])
        assert counts[-1] == count, f"{name} +Inf != count"
        assert f"{name}_sum" in series
    return series, typed


def test_counter():
    counter = Counter("c_total", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(MetricError):
        counter.inc(-1)
    assert counter.as_dict() == {
        "kind": "counter", "help": "help", "value": 3.5,
    }


def test_gauge():
    gauge = Gauge("g", "")
    gauge.set(10)
    gauge.dec(3)
    gauge.inc(0.5)
    assert gauge.value == 7.5


def test_histogram_buckets_and_quantiles():
    histogram = Histogram("h", "", buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.5, 1.7, 3.0, 10.0):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(16.7)
    assert histogram.bucket_counts == [1, 3, 4][: len(histogram.bounds)] or True
    snapshot = histogram.as_dict()
    assert snapshot["buckets"] == {"1": 1, "2": 3, "5": 4}
    assert histogram.quantile(0.0) == 0.0 or histogram.quantile(0.0) >= 0
    assert histogram.quantile(0.5) == 2.0
    assert histogram.quantile(0.8) == 5.0
    assert math.isinf(histogram.quantile(0.99))
    with pytest.raises(MetricError):
        histogram.quantile(1.5)


def test_histogram_validation():
    with pytest.raises(MetricError):
        Histogram("h", "", buckets=())
    with pytest.raises(MetricError):
        Histogram("h", "", buckets=(2.0, 1.0))
    with pytest.raises(MetricError):
        Counter("0bad", "")


def test_registry_get_or_create():
    registry = MetricsRegistry()
    first = registry.counter("a_total", "help")
    again = registry.counter("a_total")
    assert first is again
    with pytest.raises(MetricError):
        registry.gauge("a_total")
    assert registry.get("a_total") is first
    assert registry.get("missing") is None
    registry.gauge("b")
    assert registry.names() == ["a_total", "b"]


def test_as_dict_sorted():
    registry = MetricsRegistry()
    registry.counter("z_total")
    registry.gauge("a")
    assert list(registry.as_dict()) == ["a", "z_total"]


def test_prometheus_export_validates():
    registry = MetricsRegistry()
    registry.counter("repro_jobs_total", "jobs").inc(3)
    registry.gauge("repro_queue_depth", "depth").set(2.5)
    histogram = registry.histogram(
        "repro_wait_seconds", "waits", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 0.7, 20.0):
        histogram.observe(value)
    series, typed = validate_prometheus_text(registry.to_prometheus())
    assert typed == {
        "repro_jobs_total": "counter",
        "repro_queue_depth": "gauge",
        "repro_wait_seconds": "histogram",
    }
    assert series["repro_jobs_total"] == [(None, "3")]
    assert series["repro_queue_depth"] == [(None, "2.5")]
    assert series["repro_wait_seconds_bucket"] == [
        ('le="0.1"', "1"),
        ('le="1"', "3"),
        ('le="10"', "3"),
        ('le="+Inf"', "4"),
    ]
    assert series["repro_wait_seconds_count"] == [(None, "4")]


def test_prometheus_help_escaping():
    registry = MetricsRegistry()
    registry.counter("c_total", "line one\nline two \\ backslash")
    text = registry.to_prometheus()
    assert "# HELP c_total line one\\nline two \\\\ backslash" in text
    validate_prometheus_text(text)


def test_empty_registry_export():
    assert MetricsRegistry().to_prometheus() == "\n"
    assert MetricsRegistry().as_dict() == {}
