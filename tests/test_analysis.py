"""Tests of the analysis package (patching, sensitivity, scenarios)."""

import pytest

from repro.analysis import (
    compare_scenarios,
    cost_sensitivity,
    ladder_stability,
    most_sensitive_units,
    scenario_table,
    with_latency,
    with_unit_costs,
)
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import explore
from repro.errors import ModelError


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def tv_spec():
    return build_tv_decoder_spec()


class TestPatch:
    def test_with_unit_costs_leaf(self, tv_spec):
        variant = with_unit_costs(tv_spec, {"muP": 80.0})
        assert variant.units.unit("muP").cost == 80.0
        assert tv_spec.units.unit("muP").cost == 100.0  # untouched

    def test_with_unit_costs_cluster(self, tv_spec):
        variant = with_unit_costs(tv_spec, {"D3": 99.0})
        assert variant.units.unit("D3").cost == 99.0

    def test_unknown_unit_rejected(self, tv_spec):
        with pytest.raises(ModelError):
            with_unit_costs(tv_spec, {"ghost": 1.0})

    def test_with_latency(self, tv_spec):
        variant = with_latency(tv_spec, {("P_U1", "muP"): 99.0})
        assert variant.mappings.latency("P_U1", "muP") == 99.0
        assert tv_spec.mappings.latency("P_U1", "muP") == 40.0

    def test_unknown_latency_pair_rejected(self, tv_spec):
        with pytest.raises(ModelError):
            with_latency(tv_spec, {("P_U1", "D3_res"): 1.0})

    def test_patched_spec_explores(self, tv_spec):
        cheap_asic = with_unit_costs(tv_spec, {"A": 10.0})
        front = explore(cheap_asic).front()
        # the ASIC bundle gets much cheaper: f=3 at 10+10+100=120
        assert (120.0, 3.0) in front

    def test_unknown_names_reported_exhaustively(self, tv_spec):
        """The error names every missing override, not just the first,
        and a single bad name poisons an otherwise-valid batch."""
        with pytest.raises(ModelError, match="ghost.*phantom"):
            with_unit_costs(
                tv_spec, {"phantom": 2.0, "muP": 80.0, "ghost": 1.0}
            )
        with pytest.raises(ModelError, match="no_proc"):
            with_latency(
                tv_spec,
                {("P_U1", "muP"): 99.0, ("no_proc", "muP"): 1.0},
            )

    def test_known_process_unknown_resource_rejected(self, tv_spec):
        # both halves of the pair must name an existing mapping edge
        with pytest.raises(ModelError):
            with_latency(tv_spec, {("P_U1", "ghost_res"): 1.0})
        with pytest.raises(ModelError):
            with_latency(tv_spec, {("ghost_proc", "muP"): 1.0})

    def test_latency_round_trip(self, tv_spec):
        from repro.io import spec_to_dict

        original = spec_to_dict(tv_spec)
        there = with_latency(tv_spec, {("P_U1", "muP"): 99.0})
        back = with_latency(there, {("P_U1", "muP"): 40.0})
        assert spec_to_dict(back) == original
        assert spec_to_dict(tv_spec) == original  # untouched throughout

    def test_cost_round_trip(self, tv_spec):
        from repro.io import spec_to_dict

        original = spec_to_dict(tv_spec)
        there = with_unit_costs(tv_spec, {"muP": 80.0, "D3": 99.0})
        back = with_unit_costs(
            there,
            {
                "muP": tv_spec.units.unit("muP").cost,
                "D3": tv_spec.units.unit("D3").cost,
            },
        )
        assert spec_to_dict(back) == original
        assert spec_to_dict(tv_spec) == original

    def test_failed_patch_leaves_original_untouched(self, tv_spec):
        from repro.io import spec_to_dict

        original = spec_to_dict(tv_spec)
        with pytest.raises(ModelError):
            with_unit_costs(tv_spec, {"muP": 1.0, "ghost": 1.0})
        with pytest.raises(ModelError):
            with_latency(tv_spec, {("P_U1", "muP"): 1.0, ("x", "y"): 1.0})
        assert spec_to_dict(tv_spec) == original

    def test_empty_overrides_are_identity(self, tv_spec):
        from repro.io import spec_to_dict

        assert spec_to_dict(with_unit_costs(tv_spec, {})) == spec_to_dict(
            tv_spec
        )
        assert spec_to_dict(with_latency(tv_spec, {})) == spec_to_dict(
            tv_spec
        )


class TestSensitivity:
    def test_sweep_shapes(self, tv_spec):
        sweep = cost_sensitivity(tv_spec, "A", factors=(0.5, 1.0, 2.0))
        assert [p.factor for p in sweep] == [0.5, 1.0, 2.0]
        assert sweep[0].unit_cost == 25.0
        assert all(p.front for p in sweep)

    def test_nominal_factor_reproduces_front(self, tv_spec):
        sweep = cost_sensitivity(tv_spec, "A", factors=(1.0,))
        assert sweep[0].front == explore(tv_spec).front()

    def test_ladder_stability_bounds(self, tv_spec):
        sweep = cost_sensitivity(tv_spec, "C1", factors=(0.5, 1.0, 1.5))
        value = ladder_stability(sweep)
        assert 0.0 <= value <= 1.0
        # a cheap bus's price does not change which platforms exist
        assert value == 1.0

    def test_ladder_stability_empty(self):
        assert ladder_stability([]) == 1.0

    def test_most_sensitive_units_sorted(self, tv_spec):
        ranking = most_sensitive_units(
            tv_spec, factors=(0.25, 4.0), units=("A", "muP", "D3")
        )
        values = list(ranking.values())
        assert values == sorted(values)
        assert set(ranking) == {"A", "muP", "D3"}


class TestScenarios:
    def test_compare_scenarios(self, settop):
        results = compare_scenarios(
            settop,
            {
                "paper": {},
                "no FPGA": {"forbid_units": {"D3", "U2", "G1"}},
                "exact timing": {"timing_mode": "schedule"},
            },
        )
        assert set(results) == {"paper", "no FPGA", "exact timing"}
        assert results["paper"].front()[-1] == (430.0, 8.0)
        assert results["no FPGA"].front()[-1] == (360.0, 7.0)
        assert results["exact timing"].front()[0] == (100.0, 3.0)

    def test_scenario_table(self, settop):
        results = compare_scenarios(
            settop,
            {"paper": {}, "no FPGA": {"forbid_units": {"D3", "U2", "G1"}}},
        )
        text = scenario_table(results)
        assert "f>=8" in text
        lines = text.splitlines()
        f8_row = next(l for l in lines if l.startswith("f>=8"))
        assert "$430" in f8_row and "-" in f8_row
