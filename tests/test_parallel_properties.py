"""Property-based tests: batching never changes a pruning outcome.

The batched explorer speculates ahead of the incumbent bound, so the
property worth testing is the safety of its pruning replay: *every*
candidate the batched run prunes on the incumbent bound is dominated by
the serial run's final Pareto front — no batched run ever discards a
candidate the serial loop would have kept.

Uses hypothesis when available and falls back to a seeded sweep of the
same properties otherwise, so the suite stays meaningful on minimal
installations.
"""

import pytest

from .randspec import random_spec
from repro.core import explore
from repro.parallel import EvaluationCache, explore_batched

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - minimal environments
    HAVE_HYPOTHESIS = False


def assert_pruned_are_dominated(seed: int, batch_size: int, keep_ties: bool):
    """The core property, checked for one (seed, batch_size) pair.

    For every candidate the batched run prunes on the incumbent bound
    there is a point in the *serial* run's final front with cost <= the
    candidate's and flexibility >= the candidate's estimate.  Since the
    estimate upper-bounds anything the candidate could implement, the
    pruned candidate is dominated and its loss cannot change the front.
    """
    spec = random_spec(seed)
    serial = explore(spec, keep_ties=keep_ties)
    trace = []
    batched = explore_batched(
        spec,
        parallel="serial",
        batch_size=batch_size,
        keep_ties=keep_ties,
        trace=trace,
    )
    assert batched.front() == serial.front()
    front = serial.front()
    pruned = [e for e in trace if e["kind"] == "estimate_pruned"]
    for event in pruned:
        assert any(
            cost <= event["cost"] and flexibility >= event["estimate"]
            for cost, flexibility in front
        ), (
            f"seed {seed}: pruned candidate {sorted(event['units'])} "
            f"(cost {event['cost']}, estimate {event['estimate']}) is not "
            f"dominated by the serial front {front}"
        )
    return len(pruned)


def assert_batching_invariant_outcomes(seed: int, sizes=(1, 3, 8, 64)):
    """Pruning decisions are identical across batch geometries."""
    spec = random_spec(seed)

    def decisions(batch_size):
        trace = []
        result = explore_batched(
            spec, parallel="serial", batch_size=batch_size, trace=trace
        )
        pruned = [
            (e["cost"], frozenset(e["units"]), e["estimate"], e["incumbent"])
            for e in trace
            if e["kind"] == "estimate_pruned"
        ]
        return result.front(), pruned

    reference = decisions(sizes[0])
    for size in sizes[1:]:
        assert decisions(size) == reference, (
            f"seed {seed}: pruning outcome changed at batch_size={size}"
        )


def assert_cache_preserves_pruning(seed: int):
    """A warm cross-run memo cache changes no pruning decision."""
    spec = random_spec(seed)
    cache = EvaluationCache()
    cold_trace, warm_trace = [], []
    cold = explore_batched(
        spec, parallel="serial", cache=cache, trace=cold_trace
    )
    warm = explore_batched(
        spec, parallel="serial", cache=cache, trace=warm_trace
    )
    assert cold.front() == warm.front()
    strip = lambda t: [  # noqa: E731
        (e["kind"], e["cost"], frozenset(e["units"])) for e in t
    ]
    assert strip(cold_trace) == strip(warm_trace)


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=500),
        batch_size=st.integers(min_value=1, max_value=40),
        keep_ties=st.booleans(),
    )
    def test_pruned_candidates_dominated_hypothesis(
        seed, batch_size, keep_ties
    ):
        assert_pruned_are_dominated(seed, batch_size, keep_ties)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_batch_geometry_invariant_hypothesis(seed):
        assert_batching_invariant_outcomes(seed)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_cache_preserves_pruning_hypothesis(seed):
        assert_cache_preserves_pruning(seed)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", range(0, 40, 2))
    def test_pruned_candidates_dominated_seeded(seed):
        assert_pruned_are_dominated(seed, batch_size=(seed % 7) + 1,
                                    keep_ties=bool(seed % 2))

    @pytest.mark.parametrize("seed", range(0, 30, 3))
    def test_batch_geometry_invariant_seeded(seed):
        assert_batching_invariant_outcomes(seed)

    @pytest.mark.parametrize("seed", range(0, 20, 4))
    def test_cache_preserves_pruning_seeded(seed):
        assert_cache_preserves_pruning(seed)


def test_some_seed_actually_prunes():
    """Guard the property against vacuity: the corpus must contain
    specs where the incumbent bound really prunes candidates."""
    total = sum(
        assert_pruned_are_dominated(seed, 4, False) for seed in range(20)
    )
    assert total > 0
