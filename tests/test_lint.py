"""Tests of the specification linter."""

import pytest

from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.hgraph import new_cluster
from repro.spec import (
    ArchitectureGraph,
    ERROR,
    ProblemGraph,
    SpecificationGraph,
    WARNING,
    lint_errors,
    lint_specification,
)


def make_spec(problem, arch, mappings):
    spec = SpecificationGraph(problem, arch)
    for process, resource, latency in mappings:
        spec.map(process, resource, latency)
    return spec.freeze()


def simple_problem(extra=None):
    p = ProblemGraph()
    p.add_vertex("proc")
    i = p.add_interface("I")
    for k in (1, 2):
        c = new_cluster(i, f"g{k}")
        c.add_vertex(f"alt{k}")
    if extra:
        extra(p, i)
    return p


def simple_arch():
    a = ArchitectureGraph()
    a.add_resource("cpu", cost=10)
    a.add_resource("dsp", cost=5)
    a.add_bus("bus", 1, "cpu", "dsp")
    return a


FULL_MAPPINGS = [
    ("proc", "cpu", 1.0),
    ("alt1", "cpu", 1.0),
    ("alt2", "dsp", 1.0),
]


class TestCleanSpecs:
    def test_clean_spec_has_no_errors(self):
        spec = make_spec(simple_problem(), simple_arch(), FULL_MAPPINGS)
        assert lint_errors(spec) == []

    def test_paper_case_studies_have_no_errors(self):
        for builder in (build_tv_decoder_spec, build_settop_spec):
            assert lint_errors(builder()) == []

    def test_settop_warnings_are_benign(self):
        """The Set-Top model has a deliberate single-alternative top
        warning-free shape: only no warnings of the dead kinds."""
        codes = {d.code for d in lint_specification(build_settop_spec())}
        assert "unmapped-process" not in codes
        assert "dead-cluster" not in codes
        assert "unsupportable-problem" not in codes


class TestFindings:
    def test_unmapped_process(self):
        spec = make_spec(
            simple_problem(), simple_arch(),
            [("proc", "cpu", 1.0), ("alt1", "cpu", 1.0)],
        )
        diagnostics = lint_specification(spec)
        assert any(d.code == "unmapped-process" for d in diagnostics)
        assert any(d.code == "dead-cluster" for d in diagnostics)

    def test_dead_resource(self):
        arch = simple_arch()
        arch.add_resource("npu", cost=3)
        spec = make_spec(simple_problem(), arch, FULL_MAPPINGS)
        assert any(
            d.code == "dead-resource" and "npu" in d.message
            for d in lint_specification(spec)
        )

    def test_dangling_bus(self):
        arch = simple_arch()
        arch.add_bus("stub", 1, "cpu")  # connects a single node
        spec = make_spec(simple_problem(), arch, FULL_MAPPINGS)
        assert any(
            d.code == "dangling-bus" and "stub" in d.message
            for d in lint_specification(spec)
        )

    def test_unsupportable_problem_is_error(self):
        spec = make_spec(
            simple_problem(), simple_arch(),
            [("alt1", "cpu", 1.0), ("alt2", "dsp", 1.0)],  # proc unmapped
        )
        errors = lint_errors(spec)
        assert any(d.code == "unsupportable-problem" for d in errors)

    def test_unsatisfiable_period_is_error(self):
        p = ProblemGraph()
        p.add_vertex("proc", period=10.0)
        a = ArchitectureGraph()
        a.add_resource("cpu", cost=1)
        spec = make_spec(p, a, [("proc", "cpu", 50.0)])
        assert any(
            d.code == "unsatisfiable-period" for d in lint_errors(spec)
        )

    def test_satisfiable_period_not_flagged(self):
        p = ProblemGraph()
        p.add_vertex("proc", period=100.0)
        a = ArchitectureGraph()
        a.add_resource("cpu", cost=1)
        spec = make_spec(p, a, [("proc", "cpu", 50.0)])
        assert not any(
            d.code == "unsatisfiable-period"
            for d in lint_specification(spec)
        )

    def test_single_alternative_warning(self):
        p = ProblemGraph()
        p.add_vertex("proc")
        i = p.add_interface("I")
        c = new_cluster(i, "only")
        c.add_vertex("alt")
        a = simple_arch()
        spec = make_spec(p, a, [("proc", "cpu", 1.0), ("alt", "cpu", 1.0)])
        assert any(
            d.code == "single-alternative"
            for d in lint_specification(spec)
        )

    def test_empty_cluster_warning(self):
        def extend(p, i):
            new_cluster(i, "hollow")

        spec = make_spec(
            simple_problem(extend), simple_arch(), FULL_MAPPINGS
        )
        assert any(
            d.code == "empty-cluster" for d in lint_specification(spec)
        )

    def test_unmapped_port_warning(self):
        p = ProblemGraph()
        p.add_vertex("proc")
        i = p.add_interface("I")
        i.add_port("x")
        c = new_cluster(i, "g")
        c.add_vertex("a")
        c.add_vertex("b")  # two nodes, port unmapped
        a = simple_arch()
        spec = make_spec(
            p, a,
            [("proc", "cpu", 1), ("a", "cpu", 1), ("b", "cpu", 1)],
        )
        assert any(
            d.code == "unmapped-port" for d in lint_specification(spec)
        )

    def test_errors_sort_first(self):
        spec = make_spec(
            simple_problem(), simple_arch(),
            [("alt1", "cpu", 1.0)],
        )
        diagnostics = lint_specification(spec)
        levels = [d.level for d in diagnostics]
        assert levels == sorted(levels, key=lambda l: l != ERROR)
        assert ERROR in levels and WARNING in levels

    def test_cyclic_dependences_error(self):
        p = ProblemGraph()
        p.add_vertex("a")
        p.add_vertex("b")
        p.add_edge("a", "b")
        p.add_edge("b", "a")
        a = simple_arch()
        spec = make_spec(p, a, [("a", "cpu", 1.0), ("b", "cpu", 1.0)])
        assert any(
            d.code == "cyclic-dependences" for d in lint_errors(spec)
        )

    def test_acyclic_chain_not_flagged(self):
        spec = make_spec(simple_problem(), simple_arch(), FULL_MAPPINGS)
        assert not any(
            d.code == "cyclic-dependences"
            for d in lint_specification(spec)
        )

    def test_cycle_inside_cluster_detected(self):
        def extend(p, i):
            c = new_cluster(i, "loopy")
            c.add_vertex("x")
            c.add_vertex("y")
            c.add_edge("x", "y")
            c.add_edge("y", "x")

        spec = make_spec(
            simple_problem(extend), simple_arch(),
            FULL_MAPPINGS + [("x", "cpu", 1.0), ("y", "cpu", 1.0)],
        )
        assert any(
            d.code == "cyclic-dependences" for d in lint_errors(spec)
        )

    def test_repr(self):
        spec = make_spec(
            simple_problem(), simple_arch(),
            [("proc", "cpu", 1.0), ("alt1", "cpu", 1.0)],
        )
        text = repr(lint_specification(spec)[0])
        assert "]" in text and ":" in text
