"""Unit tests for scopes, traversal, validation and the builder."""

import pytest

from repro.errors import ModelError, ValidationError
from repro.hgraph import (
    HierarchicalGraph,
    HierarchyBuilder,
    HierarchyIndex,
    count_elements,
    iter_clusters,
    iter_interfaces,
    leaf_names,
    leaves,
    new_cluster,
    validate_hierarchy,
)


def small_decoder():
    """The Fig. 1 shape: two vertices and two interfaces with clusters."""
    g = HierarchicalGraph("G")
    g.add_vertex("P_A")
    g.add_vertex("P_C")
    i_d = g.add_interface("I_D")
    i_u = g.add_interface("I_U")
    for k in (1, 2, 3):
        c = new_cluster(i_d, f"g_D{k}")
        c.add_vertex(f"P_D{k}")
    for k in (1, 2):
        c = new_cluster(i_u, f"g_U{k}")
        c.add_vertex(f"P_U{k}")
    g.add_edge("I_D", "I_U")
    return g


class TestGraphScope:
    def test_duplicate_names_rejected(self):
        g = HierarchicalGraph("G")
        g.add_vertex("a")
        with pytest.raises(ModelError):
            g.add_vertex("a")
        with pytest.raises(ModelError):
            g.add_interface("a")

    def test_edge_endpoints_must_exist(self):
        g = HierarchicalGraph("G")
        g.add_vertex("a")
        with pytest.raises(ModelError):
            g.add_edge("a", "b")

    def test_edge_port_qualifier_on_vertex_rejected(self):
        g = HierarchicalGraph("G")
        g.add_vertex("a")
        g.add_vertex("b")
        with pytest.raises(ModelError):
            g.add_edge("a", "b", src_port="p")

    def test_edge_port_must_be_declared(self):
        g = HierarchicalGraph("G")
        g.add_vertex("a")
        i = g.add_interface("I")
        i.add_port("p")
        g.add_edge("a", "I", dst_port="p")
        with pytest.raises(ModelError):
            g.add_edge("a", "I", dst_port="q")

    def test_node_lookup_and_contains(self):
        g = small_decoder()
        assert g.node("P_A").name == "P_A"
        assert g.node("I_D").name == "I_D"
        assert g.node("nope") is None
        assert "P_C" in g
        assert "P_D1" not in g  # nested, not in top scope

    def test_in_out_edges(self):
        g = small_decoder()
        assert [e.dst for e in g.out_edges("I_D")] == ["I_U"]
        assert [e.src for e in g.in_edges("I_U")] == ["I_D"]

    def test_clusters_iteration(self):
        g = small_decoder()
        assert sorted(c.name for c in g.clusters()) == [
            "g_D1", "g_D2", "g_D3", "g_U1", "g_U2",
        ]


class TestTraversal:
    def test_leaves_equation_1(self):
        g = small_decoder()
        assert sorted(leaves(g)) == sorted(
            ["P_A", "P_C", "P_D1", "P_D2", "P_D3", "P_U1", "P_U2"]
        )

    def test_leaf_names_len(self):
        assert len(leaf_names(small_decoder())) == 7

    def test_iter_interfaces(self):
        g = small_decoder()
        assert sorted(i.name for i in iter_interfaces(g)) == ["I_D", "I_U"]

    def test_iter_clusters_nested(self):
        g = small_decoder()
        # add one nested level
        idx = HierarchyIndex(g)
        c = idx.cluster("g_D1")
        inner = c.add_interface("I_X")
        nested = new_cluster(inner, "g_X1")
        nested.add_vertex("P_X1")
        names = sorted(c.name for c in iter_clusters(g))
        assert "g_X1" in names and len(names) == 6

    def test_duplicate_leaf_across_scopes_rejected(self):
        g = small_decoder()
        idx = HierarchyIndex(g)
        idx.cluster("g_U1").add_vertex("P_A")  # clashes with top-level P_A
        with pytest.raises(ModelError):
            leaves(g)


class TestHierarchyIndex:
    def test_maps(self):
        g = small_decoder()
        idx = HierarchyIndex(g)
        assert idx.interface_of_cluster["g_D2"] == "I_D"
        assert idx.scope_of_node["P_D2"].name == "g_D2"
        assert idx.depth["G"] == 0
        assert idx.depth["g_D1"] == 1

    def test_owner_chain_and_qualified_name(self):
        g = small_decoder()
        idx = HierarchyIndex(g)
        assert idx.owner_chain("P_D1") == ("G", "g_D1")
        assert idx.qualified_name("P_D1") == "g_D1.P_D1"
        assert idx.qualified_name("P_A") == "P_A"
        assert idx.owner_chain("g_D1") == ("G", "g_D1")

    def test_enclosing_clusters(self):
        g = small_decoder()
        idx = HierarchyIndex(g)
        assert idx.enclosing_clusters("P_D1") == ("g_D1",)
        assert idx.enclosing_clusters("g_D1") == ()

    def test_inherited_attr(self):
        g = small_decoder()
        idx = HierarchyIndex(g)
        idx.cluster("g_D1").attrs["period"] = 300
        assert idx.inherited_attr("P_D1", "period") == 300
        assert idx.inherited_attr("P_A", "period") is None
        g.attrs["period"] = 100
        assert idx.inherited_attr("P_A", "period") == 100
        # element's own attribute wins
        idx.vertices["P_D1"].attrs["period"] = 200
        assert idx.inherited_attr("P_D1", "period") == 200

    def test_unknown_element(self):
        idx = HierarchyIndex(small_decoder())
        with pytest.raises(ModelError):
            idx.owner_chain("nope")
        with pytest.raises(ModelError):
            idx.cluster("nope")
        with pytest.raises(ModelError):
            idx.interface("nope")


class TestValidation:
    def test_valid_graph_passes(self):
        idx = validate_hierarchy(small_decoder())
        assert isinstance(idx, HierarchyIndex)

    def test_empty_interface_rejected(self):
        g = HierarchicalGraph("G")
        g.add_interface("I")
        with pytest.raises(ValidationError):
            validate_hierarchy(g)
        validate_hierarchy(g, allow_empty_interfaces=True)

    def test_bad_port_map_rejected(self):
        g = HierarchicalGraph("G")
        i = g.add_interface("I")
        i.add_port("p")
        c = new_cluster(i, "g")
        c.add_vertex("v")
        c.map_port("p", "v")
        # sabotage after the fact (simulates a bad deserialisation)
        c.port_map["q"] = "v"
        with pytest.raises(ValidationError):
            validate_hierarchy(g)

    def test_count_elements(self):
        stats = count_elements(small_decoder())
        assert stats == {
            "vertices": 7,
            "interfaces": 2,
            "clusters": 5,
            "edges": 1,
            "max_depth": 1,
        }


class TestBuilder:
    def test_builder_roundtrip(self):
        b = HierarchyBuilder("G_P")
        b.vertex("P_A").vertex("P_C")
        dec = b.interface("I_D")
        for k in (1, 2, 3):
            dec.simple_cluster(f"g_D{k}", f"P_D{k}")
        unc = b.interface("I_U")
        for k in (1, 2):
            unc.simple_cluster(f"g_U{k}", f"P_U{k}")
        b.edge("I_D", "I_U")
        g = b.done()
        assert sorted(leaves(g)) == sorted(
            ["P_A", "P_C", "P_D1", "P_D2", "P_D3", "P_U1", "P_U2"]
        )

    def test_simple_cluster_maps_all_ports(self):
        b = HierarchyBuilder("G")
        i = b.interface("I", ports=("in0", "out0"))
        c = i.simple_cluster("g", "v")
        assert c.cluster_scope.port_map == {"in0": "v", "out0": "v"}

    def test_chain(self):
        b = HierarchyBuilder("G")
        b.vertex("a").vertex("b").vertex("c").chain("a", "b", "c")
        g = b.done()
        assert len(g.edges) == 2
        assert g.edges[0].pair == ("a", "b")
        assert g.edges[1].pair == ("b", "c")

    def test_nested_interface_in_cluster(self):
        b = HierarchyBuilder("G")
        top = b.interface("I_top")
        c = top.cluster("g_top")
        c.vertex("v")
        nested = c.interface("I_in")
        nested.simple_cluster("g_in", "w")
        g = b.done()
        assert sorted(leaves(g)) == ["v", "w"]
