"""Tests of the synthetic specification generator."""

import pytest

from repro.casestudies import (
    synthetic_architecture,
    synthetic_problem,
    synthetic_spec,
)
from repro.core import estimate_flexibility, explore, max_flexibility
from repro.io import dumps_spec
from repro.spec import supports_problem


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert dumps_spec(synthetic_spec(seed=5)) == dumps_spec(
            synthetic_spec(seed=5)
        )

    def test_different_seeds_differ(self):
        assert dumps_spec(synthetic_spec(seed=1)) != dumps_spec(
            synthetic_spec(seed=2)
        )

    def test_sizes_scale(self):
        small = synthetic_spec(n_apps=2, interfaces_per_app=1,
                               alternatives=2, n_accels=1)
        large = synthetic_spec(n_apps=4, interfaces_per_app=3,
                               alternatives=4, n_accels=4)
        assert large.vs_size() > small.vs_size()
        assert len(large.units) > len(small.units)

    def test_max_flexibility_formula(self):
        """Each app: (interfaces * alternatives) - (interfaces - 1);
        top level sums the apps."""
        problem = synthetic_problem(
            n_apps=3, interfaces_per_app=2, alternatives=3
        )
        per_app = 2 * 3 - 1
        assert max_flexibility(problem) == 3 * per_app

    def test_processor_alone_is_possible(self):
        spec = synthetic_spec()
        assert supports_problem(spec, {"proc0"})
        assert not supports_problem(spec, {"acc0"})

    def test_validated_and_frozen(self):
        spec = synthetic_spec(n_apps=2)
        assert spec.frozen

    def test_accelerators_increase_implemented_flexibility(self):
        """The estimate is already maximal on one processor (it ignores
        timing), but the *implemented* flexibility needs accelerators."""
        from repro.core import evaluate_allocation

        spec = synthetic_spec()
        assert estimate_flexibility(spec, {"proc0"}) == estimate_flexibility(
            spec, set(spec.units.names())
        )
        base = evaluate_allocation(spec, {"proc0"})
        full = evaluate_allocation(spec, set(spec.units.names()))
        assert base is not None and full is not None
        assert full.flexibility > base.flexibility

    def test_front_is_non_trivial(self):
        """Timing pressure makes the front multi-point (paper-shaped)."""
        spec = synthetic_spec()
        result = explore(spec)
        assert len(result.points) >= 3
        costs = [c for c, _ in result.front()]
        flexes = [f for _, f in result.front()]
        assert costs == sorted(costs)
        assert flexes == sorted(flexes)

    def test_architecture_connectivity(self):
        arch = synthetic_architecture(n_procs=2, n_accels=2)
        pairs = {e.pair for e in arch.edges}
        assert ("busP", "proc0") in pairs
        assert any(src.startswith("bus") and dst == "acc1"
                   for src, dst in pairs)
