"""Seeded random model builders for property-based tests.

Generates small but structurally diverse specification graphs:
hierarchies with nested interfaces, architectures with partial bus
connectivity, mapping tables with gaps, and timing annotations tight
enough that the utilisation test sometimes bites.  Sizes are bounded so
exhaustive search stays cheap (<= 8 allocatable units), which lets the
property tests compare EXPLORE against ground truth.
"""

from __future__ import annotations

import random
from typing import List

from repro.hgraph import new_cluster
from repro.spec import ArchitectureGraph, ProblemGraph, SpecificationGraph


def random_problem(rng: random.Random) -> ProblemGraph:
    """A random hierarchical problem graph (depth <= 2)."""
    problem = ProblemGraph(f"RP{rng.randrange(10**6)}")
    n_top_vertices = rng.randint(1, 2)
    for v in range(n_top_vertices):
        problem.add_vertex(
            f"top{v}", negligible=bool(v == 0 and rng.random() < 0.5)
        )
    previous = "top0"
    for i in range(rng.randint(1, 2)):
        interface = problem.add_interface(f"I{i}")
        interface.add_port("in", "in")
        interface.add_port("out", "out")
        for c in range(rng.randint(1, 3)):
            cluster = new_cluster(interface, f"c{i}_{c}")
            inner: List[str] = []
            for v in range(rng.randint(1, 2)):
                name = f"p{i}_{c}_{v}"
                cluster.add_vertex(name)
                inner.append(name)
            if len(inner) == 2:
                cluster.add_edge(inner[0], inner[1])
            cluster.map_port("in", inner[0])
            cluster.map_port("out", inner[-1])
            # occasionally nest another interface
            if rng.random() < 0.25:
                nested = cluster.add_interface(f"J{i}_{c}")
                for k in range(rng.randint(1, 2)):
                    alt = new_cluster(nested, f"n{i}_{c}_{k}")
                    alt.add_vertex(f"q{i}_{c}_{k}")
                cluster.add_edge(inner[-1], f"J{i}_{c}")
        problem.add_edge(
            previous,
            f"I{i}",
            src_port="out" if previous.startswith("I") else None,
            dst_port="in",
        )
        previous = f"I{i}"
    if rng.random() < 0.6:
        problem.attrs["period"] = float(rng.choice((150, 250, 400)))
    return problem


def random_architecture(rng: random.Random) -> ArchitectureGraph:
    """A random platform: 1-2 processors, 0-2 accelerators, random buses."""
    arch = ArchitectureGraph(f"RA{rng.randrange(10**6)}")
    n_procs = rng.randint(1, 2)
    n_accels = rng.randint(0, 2)
    for p in range(n_procs):
        arch.add_resource(f"proc{p}", cost=float(rng.randint(4, 12) * 10))
    for a in range(n_accels):
        arch.add_resource(f"acc{a}", cost=float(rng.randint(2, 8) * 10))
    bus_id = 0
    nodes = [f"proc{p}" for p in range(n_procs)] + [
        f"acc{a}" for a in range(n_accels)
    ]
    for i, first in enumerate(nodes):
        for second in nodes[i + 1:]:
            if rng.random() < 0.6:
                arch.add_bus(
                    f"bus{bus_id}",
                    float(rng.randint(1, 4) * 5),
                    first,
                    second,
                )
                bus_id += 1
    return arch


def random_spec(seed: int) -> SpecificationGraph:
    """A complete random specification (deterministic per seed).

    Guarantees structural validity (freeze succeeds) but deliberately
    NOT semantic niceness: processes may be unmappable, clusters dead,
    allocations infeasible — the properties under test must hold anyway.
    """
    rng = random.Random(seed)
    problem = random_problem(rng)
    arch = random_architecture(rng)
    spec = SpecificationGraph(problem, arch, name=f"RS{seed}")
    procs = [v for v in arch.vertices if v.startswith("proc")]
    accels = [v for v in arch.vertices if v.startswith("acc")]

    from repro.hgraph import leaves

    for leaf in leaves(problem):
        mapped = False
        for proc in procs:
            if rng.random() < 0.9:
                spec.map(leaf, proc, float(rng.randint(2, 22) * 10))
                mapped = True
        for accel in accels:
            if rng.random() < 0.4:
                spec.map(leaf, accel, float(rng.randint(1, 6) * 10))
                mapped = True
        if not mapped and rng.random() < 0.8:
            # usually rescue the leaf so explorations are non-trivial
            spec.map(leaf, procs[0], float(rng.randint(2, 22) * 10))
    return spec.freeze()
