"""Golden regression tests against the paper's published artefacts.

``tests/golden/`` snapshots the reproduction's paper-facing outputs —
the Fig. 3 flexibility values, the Fig. 4 / Table-of-results Pareto
fronts of both case studies (with exact allocations, clusters and
exploration statistics), and the Table 1 mapping counts.  These tests
compare the *serial and both parallel* exploration backends against the
snapshots, so any drift in the core loop, the batched replay, or the
model constants is caught against a fixed reference rather than only
against each other.
"""

import json
from pathlib import Path

import pytest

from repro.casestudies import (
    build_settop_problem,
    build_settop_spec,
    build_tv_decoder_spec,
)
from repro.core import explore, flexibility, max_flexibility
from repro.hgraph import HierarchyIndex

GOLDEN = Path(__file__).parent / "golden"

BACKENDS = ["serial", "thread", "process"]


def load(name):
    with open(GOLDEN / name, "r", encoding="utf-8") as handle:
        return json.load(handle)


def result_doc(spec, **kw):
    """The same shape the fixtures were generated with."""
    result = explore(spec, **kw)
    return {
        "spec": spec.name,
        "max_flexibility_bound": result.max_flexibility_bound,
        "points": [
            {
                "units": sorted(p.units),
                "cost": p.cost,
                "flexibility": p.flexibility,
                "clusters": sorted(p.clusters),
            }
            for p in result.points
        ],
        "stats": {
            k: v
            for k, v in result.stats.as_dict().items()
            if k != "elapsed_seconds"
        },
    }


@pytest.mark.parametrize("parallel", BACKENDS)
def test_golden_settop_front(parallel):
    """The Fig. 4 six-point front, allocation for allocation."""
    golden = load("settop_front.json")
    observed = result_doc(
        build_settop_spec(), parallel=parallel, batch_size=16
    )
    assert observed == golden


@pytest.mark.parametrize("parallel", BACKENDS)
def test_golden_tv_decoder_front(parallel):
    golden = load("tv_decoder_front.json")
    observed = result_doc(
        build_tv_decoder_spec(), parallel=parallel, batch_size=16
    )
    assert observed == golden


def test_golden_settop_front_matches_paper_numbers():
    """The snapshot itself carries the published (cost, flexibility)
    pairs — guards the fixture against silent regeneration drift."""
    golden = load("settop_front.json")
    published = [
        (100.0, 2.0),
        (120.0, 3.0),
        (230.0, 4.0),
        (290.0, 5.0),
        (360.0, 7.0),
        (430.0, 8.0),
    ]
    observed = [(p["cost"], p["flexibility"]) for p in golden["points"]]
    assert observed == published
    assert golden["max_flexibility_bound"] == 8.0


def test_golden_fig3_flexibility_values():
    """Fig. 3: f(G_P)=8, f without the game cluster = 5, and the
    published per-application expansion f = 1 + 3 + 4."""
    golden = load("fig3_flexibility.json")
    problem = build_settop_problem()
    assert max_flexibility(problem) == golden["max_flexibility"] == 8.0
    without_game = flexibility(
        problem,
        active={
            "gamma_I",
            "gamma_D",
            "gamma_D1",
            "gamma_D2",
            "gamma_D3",
            "gamma_U1",
            "gamma_U2",
        },
        weighted=False,
        strict=False,
    )
    assert without_game == golden["without_game"] == 5.0
    index = HierarchyIndex(problem)
    for cluster, expected in golden["per_application_terms"].items():
        assert flexibility(index.cluster(cluster)) == expected


def test_golden_table1_mapping_counts():
    """Table 1: per-process and per-resource mapping-edge counts."""
    golden = load("table1_counts.json")
    spec = build_settop_spec()
    rows, cols = {}, {}
    for edge in spec.mappings:
        rows[edge.process] = rows.get(edge.process, 0) + 1
        unit = spec.units.unit_of_leaf[edge.resource]
        cols[unit] = cols.get(unit, 0) + 1
    assert len(spec.mappings) == golden["total_mappings"]
    assert rows == golden["per_process"]
    assert cols == golden["per_resource_unit"]


def test_golden_table1_matches_paper_shape():
    """15 process rows; muP1/muP2 map 10 processes each (Table 1)."""
    golden = load("table1_counts.json")
    assert len(golden["per_process"]) == 15
    assert golden["per_resource_unit"]["muP1"] == 10
    assert golden["per_resource_unit"]["muP2"] == 10
