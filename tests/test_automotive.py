"""Tests of the automotive ECU-consolidation case study (extension)."""

import pytest

from repro.casestudies import build_automotive_spec
from repro.core import (
    evaluate_allocation,
    exhaustive_front,
    explore,
    max_flexibility,
)
from repro.spec import lint_errors


@pytest.fixture(scope="module")
def auto_spec():
    return build_automotive_spec()


@pytest.fixture(scope="module")
def auto_result(auto_spec):
    return explore(auto_spec)


class TestModel:
    def test_max_flexibility(self, auto_spec):
        assert max_flexibility(auto_spec.problem) == 7.0

    def test_lint_clean(self, auto_spec):
        assert lint_errors(auto_spec) == []

    def test_units(self, auto_spec):
        assert set(auto_spec.units.names()) == {
            "ECU1", "ECU2", "GPU", "DSP",
            "CAN", "FLEXRAY", "AVB", "ALINK", "BLINK",
        }


class TestExploration:
    def test_front(self, auto_result):
        assert auto_result.front() == [
            (120.0, 3.0), (285.0, 4.0), (335.0, 7.0),
        ]

    def test_front_matches_exhaustive(self, auto_spec, auto_result):
        exact = exhaustive_front(auto_spec)
        assert auto_result.front() == [impl.point for impl in exact]

    def test_lane_keeping_needs_two_compute_units(self, auto_spec):
        """LKA misses the 69% bound on either ECU alone (105/150 and
        115/150) — consolidation pressure drives the front."""
        single_ecu1 = evaluate_allocation(auto_spec, {"ECU1"})
        single_ecu2 = evaluate_allocation(auto_spec, {"ECU2"})
        assert single_ecu1 is not None and single_ecu2 is not None
        assert "gamma_LKA" not in single_ecu1.clusters
        assert "gamma_LKA" not in single_ecu2.clusters
        dual = evaluate_allocation(auto_spec, {"ECU1", "ECU2", "CAN"})
        assert dual is not None
        assert "gamma_LKA" in dual.clusters

    def test_nn_and_video_need_gpu(self, auto_result):
        flagship = auto_result.points[-1]
        assert "GPU" in flagship.units
        assert {"gamma_NN", "gamma_VID", "gamma_MPC"} <= flagship.clusters
        record = flagship.ecs_for("gamma_NN")
        assert record is not None
        assert record.binding["P_NN"] == "GPU"

    def test_solver_offloads_camera_to_fit_hough(self, auto_result):
        """On the {ECU2, AVB, GPU} point the Hough variant only fits
        because the camera pipeline moves to the GPU."""
        flagship = auto_result.points[-1]
        record = flagship.ecs_for("gamma_Hough")
        assert record is not None
        assert record.binding["P_Cam"] == "GPU"
        assert record.binding["P_Hough"] == "ECU2"

    def test_exact_scheduling_relaxes_lka(self, auto_spec):
        """The exact schedule fits LKA on one ECU (105 <= 150), so the
        cheap end of the front gains the lane keeper."""
        result = explore(auto_spec, timing_mode="schedule")
        first = result.points[0]
        assert first.cost <= 150.0
        assert "gamma_LKA" in explore(
            auto_spec, timing_mode="schedule"
        ).points[1].clusters

    def test_dsp_never_pareto_under_strict_timing(self, auto_result):
        """The DSP only serves best-effort audio; it never pays for
        itself on this front."""
        for implementation in auto_result.points:
            assert "DSP" not in implementation.units
