"""Unit tests for hierarchical activation, rules, flattening, timelines."""

import pytest

from repro.activation import (
    Activation,
    ActivationTimeline,
    activation_from_selection,
    assert_valid_activation,
    check_activation,
    flatten,
    selection_from_clusters,
)
from repro.casestudies import build_settop_problem, build_tv_decoder_problem
from repro.errors import ActivationError
from repro.hgraph import HierarchyIndex


TV_SELECTION = {"I_D": "gamma_D1", "I_U": "gamma_U1"}
SETTOP_TV = {"I_App": "gamma_D", "I_D": "gamma_D2", "I_U": "gamma_U2"}
SETTOP_GAME = {"I_App": "gamma_G", "I_G": "gamma_G1"}


class TestActivationFromSelection:
    def test_tv_decoder(self):
        root = build_tv_decoder_problem()
        act = activation_from_selection(root, TV_SELECTION)
        assert act.vertices == {"P_A", "P_C", "P_D1", "P_U1"}
        assert act.interfaces == {"I_D", "I_U"}
        assert act.clusters == {"gamma_D1", "gamma_U1"}
        assert act.is_active("P_D1") and not act.is_active("P_D2")

    def test_nested_selection(self):
        root = build_settop_problem()
        act = activation_from_selection(root, SETTOP_GAME)
        assert act.vertices == {"P_C_G", "P_D", "P_G1"}
        assert act.clusters == {"gamma_G", "gamma_G1"}
        # the TV-side interfaces are not reached
        assert "I_D" not in act.interfaces

    def test_ignores_unreached_selections(self):
        root = build_settop_problem()
        sel = dict(SETTOP_GAME, I_D="gamma_D1", I_U="gamma_U1")
        act = activation_from_selection(root, sel)
        assert "gamma_D1" not in act.clusters

    def test_missing_selection_raises(self):
        root = build_tv_decoder_problem()
        with pytest.raises(ActivationError):
            activation_from_selection(root, {"I_D": "gamma_D1"})

    def test_wrong_cluster_raises(self):
        root = build_tv_decoder_problem()
        with pytest.raises(ActivationError):
            activation_from_selection(
                root, {"I_D": "gamma_U1", "I_U": "gamma_U1"}
            )

    def test_equality_and_hash(self):
        root = build_tv_decoder_problem()
        a1 = activation_from_selection(root, TV_SELECTION)
        a2 = activation_from_selection(root, dict(TV_SELECTION))
        assert a1 == a2 and hash(a1) == hash(a2)


class TestSelectionFromClusters:
    def test_roundtrip(self):
        root = build_tv_decoder_problem()
        sel = selection_from_clusters(root, {"gamma_D2", "gamma_U1"})
        assert sel == {"I_D": "gamma_D2", "I_U": "gamma_U1"}

    def test_ambiguous_raises(self):
        root = build_tv_decoder_problem()
        with pytest.raises(ActivationError):
            selection_from_clusters(
                root, {"gamma_D1", "gamma_D2", "gamma_U1"}
            )

    def test_unreachable_extra_raises(self):
        root = build_settop_problem()
        with pytest.raises(ActivationError):
            selection_from_clusters(root, {"gamma_G", "gamma_G1", "gamma_D1"})


class TestRules:
    def test_valid_activation_passes(self):
        root = build_tv_decoder_problem()
        act = activation_from_selection(root, TV_SELECTION)
        assert check_activation(root, act) == []
        assert_valid_activation(root, act)

    def test_rule4_missing_top_vertex(self):
        root = build_tv_decoder_problem()
        act = activation_from_selection(root, TV_SELECTION)
        broken = Activation(
            act.vertices - {"P_A"}, act.interfaces, act.clusters
        )
        violations = check_activation(root, broken)
        assert any("rule 4" in v for v in violations)

    def test_rule1_two_clusters(self):
        root = build_tv_decoder_problem()
        act = activation_from_selection(root, TV_SELECTION)
        broken = Activation(
            act.vertices | {"P_D2"},
            act.interfaces,
            act.clusters | {"gamma_D2"},
        )
        violations = check_activation(root, broken)
        assert any("rule 1" in v for v in violations)

    def test_rule2_missing_embedded_vertex(self):
        root = build_tv_decoder_problem()
        act = activation_from_selection(root, TV_SELECTION)
        broken = Activation(
            act.vertices - {"P_D1"}, act.interfaces, act.clusters
        )
        violations = check_activation(root, broken)
        assert any("rule 2" in v for v in violations)

    def test_dangling_vertex_outside_active_scope(self):
        root = build_tv_decoder_problem()
        act = activation_from_selection(root, TV_SELECTION)
        broken = Activation(
            act.vertices | {"P_D2"}, act.interfaces, act.clusters
        )
        violations = check_activation(root, broken)
        assert any("rule 3" in v for v in violations)

    def test_unknown_elements_reported(self):
        root = build_tv_decoder_problem()
        broken = Activation(
            frozenset({"ghost"}), frozenset({"I_ghost"}), frozenset({"g_ghost"})
        )
        violations = check_activation(root, broken)
        assert any("unknown" in v for v in violations)

    def test_assert_raises(self):
        root = build_tv_decoder_problem()
        with pytest.raises(ActivationError):
            assert_valid_activation(
                root, Activation(frozenset(), frozenset(), frozenset())
            )


class TestFlatten:
    def test_tv_decoder_flat(self):
        root = build_tv_decoder_problem()
        flat = flatten(root, TV_SELECTION)
        assert sorted(flat.leaves) == ["P_A", "P_C", "P_D1", "P_U1"]
        assert set(flat.edges) == {("P_C", "P_D1"), ("P_D1", "P_U1")}

    def test_settop_game_flat(self):
        root = build_settop_problem()
        flat = flatten(root, SETTOP_GAME)
        assert sorted(flat.leaves) == ["P_C_G", "P_D", "P_G1"]
        assert set(flat.edges) == {("P_C_G", "P_G1"), ("P_G1", "P_D")}

    def test_settop_tv_flat(self):
        root = build_settop_problem()
        flat = flatten(root, SETTOP_TV)
        assert sorted(flat.leaves) == ["P_A", "P_C_D", "P_D2", "P_U2"]
        assert set(flat.edges) == {("P_C_D", "P_D2"), ("P_D2", "P_U2")}

    def test_flat_activation_is_valid(self):
        root = build_settop_problem()
        flat = flatten(root, SETTOP_TV)
        assert_valid_activation(root, flat.activation)

    def test_unresolvable_port_raises(self):
        from repro.hgraph import HierarchicalGraph, new_cluster

        g = HierarchicalGraph("G")
        g.add_vertex("a")
        i = g.add_interface("I")
        c = new_cluster(i, "gam")
        c.add_vertex("x")
        c.add_vertex("y")  # two nodes, no port map -> ambiguous
        g.add_edge("a", "I")
        with pytest.raises(ActivationError):
            flatten(g, {"I": "gam"})

    def test_single_node_fallback(self):
        from repro.hgraph import HierarchicalGraph, new_cluster

        g = HierarchicalGraph("G")
        g.add_vertex("a")
        i = g.add_interface("I")
        c = new_cluster(i, "gam")
        c.add_vertex("x")
        g.add_edge("a", "I")
        flat = flatten(g, {"I": "gam"})
        assert set(flat.edges) == {("a", "x")}


class TestTimeline:
    def test_segments_and_lookup(self):
        root = build_settop_problem()
        tl = ActivationTimeline(root)
        tl.switch_to(0.0, SETTOP_TV)
        tl.switch_to(10.0, SETTOP_GAME)
        assert len(tl) == 2
        assert tl.activation_at(5.0).clusters >= {"gamma_D"}
        assert tl.activation_at(10.0).clusters >= {"gamma_G"}
        assert tl.selection_at(12.0)["I_App"] == "gamma_G"

    def test_before_start_raises(self):
        root = build_settop_problem()
        tl = ActivationTimeline(root)
        tl.switch_to(0.0, SETTOP_TV)
        with pytest.raises(ActivationError):
            tl.activation_at(-1.0)

    def test_non_increasing_time_raises(self):
        root = build_settop_problem()
        tl = ActivationTimeline(root)
        tl.switch_to(0.0, SETTOP_TV)
        with pytest.raises(ActivationError):
            tl.switch_to(0.0, SETTOP_GAME)

    def test_invalid_selection_rejected(self):
        root = build_settop_problem()
        tl = ActivationTimeline(root)
        with pytest.raises(ActivationError):
            tl.switch_to(0.0, {"I_App": "gamma_G"})  # missing I_G choice

    def test_switch_events(self):
        root = build_settop_problem()
        tl = ActivationTimeline(root)
        tl.switch_to(0.0, SETTOP_TV)
        tl.switch_to(10.0, SETTOP_GAME)
        tl.switch_to(
            20.0, {"I_App": "gamma_D", "I_D": "gamma_D1", "I_U": "gamma_U2"}
        )
        events = tl.switch_events()
        assert len(events) == 2
        first = events[0]
        assert first.time == 10.0
        assert "I_App" in first.changed_interfaces
        assert "gamma_G" in first.activated
        assert "gamma_D" in first.deactivated
