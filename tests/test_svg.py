"""Tests of the SVG front renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.casestudies import build_settop_spec
from repro.core import explore
from repro.report import front_svg, save_front_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def front():
    return explore(build_settop_spec()).front()


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestFrontSvg:
    def test_valid_xml(self, front):
        root = parse(front_svg(front))
        assert root.tag == f"{SVG_NS}svg"

    def test_marker_per_front_point(self, front):
        root = parse(front_svg(front))
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == len(front)

    def test_dominated_points_hollow(self, front):
        dominated = [(500.0, 2.0), (400.0, 1.0)]
        root = parse(front_svg(front, dominated))
        hollow = [
            c
            for c in root.findall(f"{SVG_NS}circle")
            if c.get("fill") == "none"
        ]
        assert len(hollow) == 2

    def test_staircase_path_present(self, front):
        root = parse(front_svg(front))
        paths = root.findall(f"{SVG_NS}path")
        assert len(paths) == 1
        assert paths[0].get("d", "").startswith("M ")

    def test_labels_show_values(self, front):
        text = front_svg(front)
        assert "($430, f=8)" in text
        assert "($100, f=2)" in text

    def test_empty_front(self):
        text = front_svg([])
        assert "(no points)" in text
        parse(text)

    def test_single_point(self):
        root = parse(front_svg([(10.0, 1.0)]))
        assert len(root.findall(f"{SVG_NS}circle")) == 1

    def test_title_escaped(self):
        text = front_svg([(1.0, 1.0)], title="a <b> & c")
        assert "&lt;b&gt;" in text and "&amp;" in text
        parse(text)

    def test_save(self, front, tmp_path):
        path = tmp_path / "front.svg"
        save_front_svg(front, str(path), title="Set-Top")
        content = path.read_text()
        assert "Set-Top" in content
        parse(content)
