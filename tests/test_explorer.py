"""Tests of EXPLORE, including the full case-study reproduction."""

import pytest

from repro.casestudies import (
    PAPER_PARETO,
    build_settop_spec,
    build_tv_decoder_spec,
)
from repro.core import (
    dominates,
    exhaustive_front,
    explore,
    nsga2_explore,
    spec_max_flexibility,
)
from repro.errors import ExplorationError


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def settop_result(settop):
    return explore(settop)


@pytest.fixture(scope="module")
def tv_spec():
    return build_tv_decoder_spec()


class TestPaperReproduction:
    def test_front_matches_paper(self, settop_result):
        """The six published Pareto points: (cost, flexibility)."""
        expected = [(cost, float(flex)) for _, cost, flex in PAPER_PARETO]
        assert settop_result.front() == expected

    def test_six_points(self, settop_result):
        assert len(settop_result.points) == 6

    def test_paper_allocations(self, settop_result):
        """Rows 1, 2, 4, 5, 6 match the paper's allocations exactly;
        row 3 is a cost/flexibility-equivalent tie (documented in
        EXPERIMENTS.md)."""
        observed = [frozenset(p.units) for p in settop_result.points]
        paper = [frozenset(units) for units, _, _ in PAPER_PARETO]
        for row in (0, 1, 3, 4, 5):
            assert observed[row] == paper[row], f"row {row}"
        row3 = observed[2]
        assert settop_result.points[2].cost == 230.0
        assert settop_result.points[2].flexibility == 4.0
        assert row3 in (
            paper[2],
            frozenset({"muP2", "C1", "D3", "G1"}),
            frozenset({"muP2", "C1", "D3", "U2"}),
        )

    def test_paper_cluster_sets(self, settop_result):
        by_cost = {p.cost: p for p in settop_result.points}
        assert by_cost[100.0].clusters == {
            "gamma_I", "gamma_D", "gamma_D1", "gamma_U1",
        }
        assert by_cost[120.0].clusters == {
            "gamma_I", "gamma_G", "gamma_G1",
            "gamma_D", "gamma_D1", "gamma_U1",
        }
        assert by_cost[290.0].clusters == {
            "gamma_I", "gamma_G", "gamma_G1", "gamma_D",
            "gamma_D1", "gamma_D3", "gamma_U1", "gamma_U2",
        }
        assert by_cost[430.0].clusters == set(
            settop_result.points[5].clusters
        )
        assert len(by_cost[430.0].clusters) == 11  # all clusters

    def test_stops_at_max_flexibility(self, settop, settop_result):
        assert settop_result.max_flexibility_bound == 8.0
        assert settop_result.best().flexibility == 8.0

    def test_search_space_reduction_shape(self, settop_result):
        """>=99.9% of the raw space rejected before binding, as in
        Section 5."""
        stats = settop_result.stats
        assert stats.design_space_size == 2 ** 17
        assert stats.possible_allocations < stats.design_space_size / 30
        assert stats.estimate_exceeded <= 100  # paper: 'typically < 100'
        assert stats.feasible_implementations >= 6
        assert stats.elapsed_seconds < 60  # paper: 'within minutes'

    def test_runs_fast(self, settop_result):
        assert settop_result.stats.elapsed_seconds < 10


class TestCrossValidation:
    def test_explore_equals_exhaustive_on_tv_decoder(self, tv_spec):
        result = explore(tv_spec)
        exact = exhaustive_front(tv_spec)
        assert result.front() == [impl.point for impl in exact]

    def test_points_mutually_non_dominated(self, settop_result):
        points = settop_result.front()
        for a in points:
            for b in points:
                assert not dominates(a, b)

    def test_flexibility_strictly_increases(self, settop_result):
        flex = [f for _, f in settop_result.front()]
        assert flex == sorted(set(flex))

    def test_no_cheaper_implementation_with_same_flexibility(self, settop):
        """Spot-check optimality: nothing below $230 achieves f >= 4."""
        from repro.core import AllocationEnumerator, evaluate_allocation

        for cost, units in AllocationEnumerator(settop):
            if cost >= 230:
                break
            impl = evaluate_allocation(settop, units)
            if impl is not None:
                assert impl.flexibility < 4.0, units


class TestAblationToggles:
    def test_without_possible_filter_same_front(self, settop, settop_result):
        result = explore(settop, use_possible_filter=False)
        assert result.front() == settop_result.front()

    def test_without_estimation_same_front(self, settop, settop_result):
        result = explore(settop, use_estimation=True, prune_comm=False)
        assert result.front() == settop_result.front()

    def test_estimation_reduces_solver_work(self, settop):
        with_est = explore(settop)
        without_est = explore(settop, use_estimation=False)
        assert with_est.front() == without_est.front()
        assert (
            with_est.stats.solver_invocations
            < without_est.stats.solver_invocations
        )

    def test_relaxed_utilization_changes_front(self, settop):
        """Without the 69% test, the game runs on muP2 -> f=3 at $100."""
        result = explore(settop, check_utilization=False)
        assert result.front()[0] == (100.0, 3.0)

    def test_max_cost_budget(self, settop):
        result = explore(settop, max_cost=150)
        assert result.front() == [(100.0, 2.0), (120.0, 3.0)]

    def test_max_candidates_budget(self, settop):
        result = explore(settop, max_candidates=1)
        assert len(result.points) <= 1

    def test_keep_ties_contains_paper_row3(self, settop, settop_result):
        """With ties kept, the paper's exact $230 allocation appears."""
        result = explore(settop, keep_ties=True)
        tied_230 = [
            frozenset(p.units) for p in result.points if p.cost == 230.0
        ]
        assert frozenset({"muP2", "G1", "U2", "C1"}) in tied_230
        assert len(tied_230) >= 3
        assert all(
            p.flexibility == 4.0 for p in result.points if p.cost == 230.0
        )
        # the strict front is a subset of the tie-expanded one
        assert set(settop_result.front()) <= set(result.front())

    def test_keep_ties_points_all_non_dominated(self, settop):
        result = explore(settop, keep_ties=True)
        for a in result.front():
            for b in result.front():
                assert not dominates(a, b)

    def test_keep_ties_allocations_distinct(self, settop):
        result = explore(settop, keep_ties=True)
        units = [frozenset(p.units) for p in result.points]
        assert len(units) == len(set(units))

    def test_schedule_timing_mode_shifts_front_left(self, settop):
        """With exact scheduling (future work of the paper), the game
        fits on muP2 and every cheap point gains flexibility."""
        result = explore(settop, timing_mode="schedule")
        assert result.front() == [
            (100.0, 3.0), (170.0, 4.0), (230.0, 5.0),
            (360.0, 7.0), (430.0, 8.0),
        ]

    def test_schedule_mode_dominates_utilization_mode(self, settop, settop_result):
        """Exact acceptance never loses flexibility at a given cost."""
        exact = explore(settop, timing_mode="schedule")
        for cost, flex in settop_result.front():
            best = max(
                (f for c, f in exact.front() if c <= cost), default=0.0
            )
            assert best >= flex

    def test_timing_mode_none_equals_flag(self, settop):
        assert (
            explore(settop, timing_mode="none").front()
            == explore(settop, check_utilization=False).front()
        )

    def test_bad_timing_mode_rejected(self, settop):
        from repro.core import evaluate_allocation

        with pytest.raises(ValueError):
            evaluate_allocation(settop, {"muP2"}, timing_mode="vibes")

    def test_weighted_exploration(self, settop):
        result = explore(settop, weighted=True)
        assert result.front()  # unit weights: same shape as unweighted
        assert result.front() == explore(settop).front()

    def test_unfrozen_spec_rejected(self):
        from repro.spec import (
            ArchitectureGraph, ProblemGraph, SpecificationGraph,
        )

        p = ProblemGraph()
        p.add_vertex("proc")
        a = ArchitectureGraph()
        a.add_resource("res", cost=1)
        spec = SpecificationGraph(p, a)
        with pytest.raises(ExplorationError):
            explore(spec)

    def test_zero_cost_units_need_budget(self):
        from repro.spec import (
            ArchitectureGraph, ProblemGraph, make_specification,
        )

        p = ProblemGraph()
        p.add_vertex("proc")
        a = ArchitectureGraph()
        a.add_resource("res")  # zero cost
        spec = make_specification(p, a, [("proc", "res", 1.0)])
        with pytest.raises(ExplorationError):
            explore(spec)
        result = explore(spec, max_cost=10)
        assert result.front() == [(0.0, 1.0)]


class TestNsga2Baseline:
    def test_nsga2_finds_reasonable_front(self, settop, settop_result):
        result = nsga2_explore(
            settop, population_size=30, generations=15, seed=7
        )
        assert result.front
        # every NSGA-II front point is dominated-by-or-equal-to EXPLORE's
        exact = settop_result.front()
        for point in result.points():
            assert any(
                p == point or dominates(p, point) for p in exact
            )

    def test_nsga2_deterministic_per_seed(self, tv_spec):
        r1 = nsga2_explore(tv_spec, population_size=16, generations=8, seed=3)
        r2 = nsga2_explore(tv_spec, population_size=16, generations=8, seed=3)
        assert r1.points() == r2.points()

    def test_nsga2_exact_on_small_spec(self, tv_spec):
        result = nsga2_explore(
            tv_spec, population_size=40, generations=30, seed=1
        )
        exact = [impl.point for impl in exhaustive_front(tv_spec)]
        assert set(result.points()) <= set(exact) or all(
            any(dominates(e, p) or e == p for e in exact)
            for p in result.points()
        )
        # with this budget on 7 units NSGA-II should find the whole front
        assert set(result.points()) == set(exact)

    def test_spec_max_flexibility_bound(self, settop):
        assert spec_max_flexibility(settop) == 8.0
