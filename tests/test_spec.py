"""Unit tests for the specification-graph package."""

import pytest

from repro.errors import ModelError, ValidationError
from repro.hgraph import new_cluster
from repro.spec import (
    ArchitectureGraph,
    MappingTable,
    ProblemGraph,
    SpecificationGraph,
    UnitCatalog,
    activatable_clusters,
    bindable_leaves,
    cost_of,
    is_comm,
    is_negligible,
    make_specification,
    period_of,
    supports_problem,
    surviving_mappings,
    usable_units,
)
from repro.casestudies import build_tv_decoder_spec


class TestAttributes:
    def test_cost_of(self):
        arch = ArchitectureGraph()
        v = arch.add_resource("r", cost=10)
        assert cost_of(v) == 10.0

    def test_cost_negative_rejected(self):
        arch = ArchitectureGraph()
        v = arch.add_vertex("r", cost=-1)
        with pytest.raises(ModelError):
            cost_of(v)

    def test_cost_non_numeric_rejected(self):
        arch = ArchitectureGraph()
        v = arch.add_vertex("r", cost="expensive")
        with pytest.raises(ModelError):
            cost_of(v)

    def test_is_comm(self):
        arch = ArchitectureGraph()
        r = arch.add_resource("r")
        b = arch.add_bus("b", 1.0)
        assert not is_comm(r)
        assert is_comm(b)

    def test_bad_kind_rejected(self):
        arch = ArchitectureGraph()
        v = arch.add_vertex("r", kind="quantum")
        with pytest.raises(ModelError):
            is_comm(v)

    def test_negligible(self):
        p = ProblemGraph()
        assert is_negligible(p.add_vertex("ctl", negligible=True))
        assert not is_negligible(p.add_vertex("work"))

    def test_period(self):
        p = ProblemGraph()
        i = p.add_interface("I")
        c = new_cluster(i, "g", period=240)
        assert period_of(c) == 240.0
        assert period_of(p.add_vertex("v")) is None

    def test_period_invalid(self):
        p = ProblemGraph()
        i = p.add_interface("I")
        c = new_cluster(i, "g", period=0)
        with pytest.raises(ModelError):
            period_of(c)


class TestMappingTable:
    def test_add_and_lookup(self):
        t = MappingTable()
        t.add("p", "r", 10)
        assert t.latency("p", "r") == 10.0
        assert t.resources_of("p") == ("r",)
        assert [e.process for e in t.of_resource("r")] == ["p"]

    def test_duplicate_rejected(self):
        t = MappingTable()
        t.add("p", "r", 10)
        with pytest.raises(ModelError):
            t.add("p", "r", 12)

    def test_missing_latency_raises(self):
        t = MappingTable()
        with pytest.raises(ModelError):
            t.latency("p", "r")

    def test_negative_latency_rejected(self):
        t = MappingTable()
        with pytest.raises(ModelError):
            t.add("p", "r", -3)

    def test_len_iter(self):
        t = MappingTable()
        t.add("p", "r1", 1)
        t.add("p", "r2", 2)
        assert len(t) == 2
        assert {e.resource for e in t} == {"r1", "r2"}


class TestArchitectureGraph:
    def test_add_bus_connects_both_directions(self):
        arch = ArchitectureGraph()
        arch.add_resource("a")
        arch.add_resource("b")
        arch.add_bus("c", 5.0, "a", "b")
        pairs = {e.pair for e in arch.edges}
        assert ("c", "a") in pairs and ("a", "c") in pairs
        assert ("c", "b") in pairs and ("b", "c") in pairs

    def test_comm_vertices(self):
        spec = build_tv_decoder_spec()
        names = {v.name for v in spec.architecture.comm_vertices()}
        assert names == {"C1", "C2"}


class TestUnitCatalog:
    def test_tv_decoder_units(self):
        spec = build_tv_decoder_spec()
        catalog = spec.units
        assert set(catalog.names()) == {
            "muP", "A", "C1", "C2", "D3", "U1", "U2",
        }
        assert catalog.unit("muP").kind == "leaf"
        assert catalog.unit("D3").kind == "cluster"
        assert catalog.unit("D3").interface == "FPGA"
        assert catalog.unit("D3").top_node == "FPGA"
        assert catalog.unit("muP").top_node == "muP"
        assert catalog.unit("C1").comm
        assert not catalog.unit("D3").comm

    def test_unit_of_leaf(self):
        spec = build_tv_decoder_spec()
        assert spec.units.unit_of("D3_res").name == "D3"
        assert spec.units.unit_of("muP").name == "muP"
        with pytest.raises(ModelError):
            spec.units.unit_of("nope")

    def test_costs(self):
        spec = build_tv_decoder_spec()
        assert spec.units.unit("muP").cost == 100.0
        assert spec.units.unit("D3").cost == 30.0
        assert spec.units.total_cost(["muP", "C1", "D3"]) == 140.0

    def test_cluster_cost_defaults_to_leaf_sum(self):
        arch = ArchitectureGraph()
        i = arch.add_interface("I")
        c = new_cluster(i, "design")
        c.add_vertex("r1", cost=7)
        c.add_vertex("r2", cost=5)
        catalog = UnitCatalog(arch)
        assert catalog.unit("design").cost == 12.0

    def test_unknown_unit(self):
        spec = build_tv_decoder_spec()
        with pytest.raises(ModelError):
            spec.units.unit("nope")

    def test_functional_and_comm_split(self):
        spec = build_tv_decoder_spec()
        functional = {u.name for u in spec.units.functional_units()}
        comm = {u.name for u in spec.units.comm_units()}
        assert comm == {"C1", "C2"}
        assert functional == {"muP", "A", "D3", "U1", "U2"}


class TestSpecificationGraph:
    def test_freeze_validates_mapping_endpoints(self):
        p = ProblemGraph()
        p.add_vertex("proc")
        a = ArchitectureGraph()
        a.add_resource("res")
        spec = SpecificationGraph(p, a)
        spec.map("proc", "res", 1.0)
        spec.map("ghost", "res", 1.0)
        with pytest.raises(ValidationError):
            spec.freeze()

    def test_mapping_onto_bus_rejected(self):
        p = ProblemGraph()
        p.add_vertex("proc")
        a = ArchitectureGraph()
        a.add_resource("res")
        a.add_bus("bus", 1.0, "res")
        spec = SpecificationGraph(p, a)
        spec.map("proc", "bus", 1.0)
        with pytest.raises(ValidationError):
            spec.freeze()

    def test_map_after_freeze_rejected(self):
        spec = build_tv_decoder_spec()
        with pytest.raises(ModelError):
            spec.map("P_A", "A", 1.0)

    def test_use_before_freeze_rejected(self):
        p = ProblemGraph()
        p.add_vertex("proc")
        a = ArchitectureGraph()
        a.add_resource("res")
        spec = SpecificationGraph(p, a)
        with pytest.raises(ModelError):
            _ = spec.units

    def test_make_specification(self):
        p = ProblemGraph()
        p.add_vertex("proc")
        a = ArchitectureGraph()
        a.add_resource("res", cost=3)
        spec = make_specification(p, a, [("proc", "res", 2.0)])
        assert spec.frozen
        assert spec.mappings.latency("proc", "res") == 2.0

    def test_sizes(self):
        spec = build_tv_decoder_spec()
        # problem: 7 leaves + 2 interfaces + 5 clusters = 14
        # architecture: 4 top leaves + 3 design leaves + 1 interface + 3 clusters = 11
        assert spec.vs_size() == 25
        assert spec.design_space_size() == 2 ** 7
        assert spec.es_size() > 0


class TestReduce:
    def test_bindable_leaves_processor_only(self):
        spec = build_tv_decoder_spec()
        assert bindable_leaves(spec, {"muP"}) == {
            "P_A", "P_C", "P_D1", "P_U1",
        }

    def test_bindable_leaves_with_designs(self):
        spec = build_tv_decoder_spec()
        leaves = bindable_leaves(spec, {"muP", "D3", "U2"})
        assert leaves == {"P_A", "P_C", "P_D1", "P_D3", "P_U1", "P_U2"}

    def test_surviving_mappings(self):
        spec = build_tv_decoder_spec()
        survivors = surviving_mappings(spec, {"A"})
        assert {(e.process, e.resource) for e in survivors} == {
            ("P_D1", "A"), ("P_D2", "A"), ("P_U1", "A"), ("P_U2", "A"),
        }

    def test_supports_problem(self):
        spec = build_tv_decoder_spec()
        assert supports_problem(spec, {"muP"})
        assert supports_problem(spec, {"muP", "C1"})
        assert supports_problem(spec, set(spec.units.names()))
        # The ASIC alone cannot host the controller/authentication.
        assert not supports_problem(spec, {"A"})
        assert not supports_problem(spec, {"A", "C1", "C2"})
        assert not supports_problem(spec, set())

    def test_activatable_clusters(self):
        spec = build_tv_decoder_spec()
        assert activatable_clusters(spec, {"muP"}) == {
            "gamma_D1", "gamma_U1",
        }
        assert activatable_clusters(spec, {"muP", "A", "D3"}) == {
            "gamma_D1", "gamma_D2", "gamma_D3", "gamma_U1", "gamma_U2",
        }

    def test_usable_units_requires_ancestors(self):
        arch = ArchitectureGraph()
        top = arch.add_interface("Outer")
        outer = new_cluster(top, "outer_c", cost=1)
        outer.add_vertex("outer_leaf")
        inner_if = outer.add_interface("Inner")
        inner = new_cluster(inner_if, "inner_c", cost=1)
        inner.add_vertex("inner_leaf")
        p = ProblemGraph()
        p.add_vertex("proc")
        spec = make_specification(p, arch, [("proc", "inner_leaf", 1.0)])
        assert usable_units(spec, {"inner_c"}) == set()
        assert usable_units(spec, {"inner_c", "outer_c"}) == {
            "inner_c", "outer_c",
        }
        assert not supports_problem(spec, {"inner_c"})
        assert supports_problem(spec, {"inner_c", "outer_c"})
