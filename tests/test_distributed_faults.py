"""Fault-injection tests of the distributed coordinator and workers.

The kill tests are the real thing: a ``python -m repro shard-worker``
subprocess is SIGKILL'd mid-shard and restarted on the same directory;
the coordinator's bounded retries resume the shard from its journal
and the merged result must be byte-identical to an uninterrupted run.
A shard whose worker never comes back degrades the merge to
``completed=False`` with an optimality gap that ``verify_gap``
accepts — sound, never silently wrong.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.casestudies import build_settop_spec
from repro.core import explore
from repro.distributed import explore_sharded
from repro.io.result_io import result_to_dict
from repro.resilience.anytime import verify_gap

WORKER_SCRIPT = """
import sys
from repro.distributed.worker import serve
def ready(bound):
    print(f"READY {bound[1]}", flush=True)
serve(sys.argv[1], port=int(sys.argv[2]) if len(sys.argv) > 2 else 0,
      ready=ready)
"""


def _child_env():
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_worker(directory, port=0):
    """A shard-worker subprocess; returns (process, bound port)."""
    process = subprocess.Popen(
        [sys.executable, "-c", WORKER_SCRIPT, str(directory), str(port)],
        env=_child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = process.stdout.readline()
    assert line.startswith("READY"), f"worker failed to start: {line!r}"
    return process, int(line.split()[1])


def free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def result_doc(result):
    document = result_to_dict(result)
    document.get("stats", {}).pop("elapsed_seconds", None)
    document.pop("cache", None)
    return json.dumps(document, sort_keys=True)


@pytest.fixture(scope="module")
def settop_solo():
    return explore(build_settop_spec(), engine="compiled")


class TestWorkerKill:
    def test_sigkill_mid_run_then_restart_matches_uninterrupted(
        self, tmp_path, settop_solo
    ):
        """Kill -9 the worker mid-shard; the restarted worker resumes
        from its journal and the merged front is byte-identical."""
        worker_dir = str(tmp_path / "worker")
        process, port = start_worker(worker_dir)
        replacement = {}

        def kill_and_restart():
            time.sleep(0.35)
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
            time.sleep(0.2)
            # Same directory, same port: the journals survive the kill.
            replacement["process"], _ = start_worker(worker_dir, port)

        saboteur = threading.Thread(target=kill_and_restart, daemon=True)
        saboteur.start()
        try:
            sharded = explore_sharded(
                build_settop_spec(),
                shards=4,
                strategy="band",
                mode="remote",
                workers=[f"127.0.0.1:{port}"],
                workdir=str(tmp_path / "coord"),
                engine="compiled",
                checkpoint_every=5,
                retry_attempts=10,
                retry_delay=0.4,
            )
        finally:
            saboteur.join(timeout=30)
            for victim in (process, replacement.get("process")):
                if victim is not None and victim.poll() is None:
                    victim.kill()
                    victim.wait(timeout=30)
        assert result_doc(sharded.result) == result_doc(settop_solo)
        assert sharded.result.completed
        # The kill actually bit: at least one shard needed a retry.
        assert any(o.attempts > 1 for o in sharded.outcomes)

    def test_worker_never_returns_degrades_to_sound_gap(
        self, tmp_path, settop_solo
    ):
        """One worker alive, one address dead, no failover budget: the
        dead worker's shards are lost and the gap is verifiably sound."""
        process, port = start_worker(str(tmp_path / "worker"))
        try:
            sharded = explore_sharded(
                build_settop_spec(),
                shards=4,
                strategy="band",
                mode="remote",
                workers=[
                    f"127.0.0.1:{port}",
                    f"127.0.0.1:{free_port()}",
                ],
                workdir=str(tmp_path / "coord"),
                engine="compiled",
                retry_attempts=1,
                retry_delay=0.01,
            )
        finally:
            process.kill()
            process.wait(timeout=30)
        assert [o.shard.index for o in sharded.outcomes if o.lost] == [1, 3]
        assert not sharded.result.completed
        assert sharded.result.gap is not None
        assert verify_gap(sharded.result, settop_solo) == []

    def test_failover_to_surviving_worker(self, tmp_path, settop_solo):
        """With retry budget, a dead address's shards fail over to the
        surviving worker and the run still completes exactly."""
        process, port = start_worker(str(tmp_path / "worker"))
        try:
            sharded = explore_sharded(
                build_settop_spec(),
                shards=4,
                strategy="band",
                mode="remote",
                workers=[
                    f"127.0.0.1:{port}",
                    f"127.0.0.1:{free_port()}",
                ],
                workdir=str(tmp_path / "coord"),
                engine="compiled",
                retry_attempts=2,
                retry_delay=0.01,
            )
        finally:
            process.kill()
            process.wait(timeout=30)
        assert result_doc(sharded.result) == result_doc(settop_solo)
        assert not sharded.lost_shards


class TestWorkerDirectoryReuse:
    def test_stale_journal_from_other_spec_is_never_resumed(
        self, tmp_path
    ):
        """A worker directory outlives any one exploration.  A run
        request whose job id collides with a journal from a *different*
        spec must start fresh, not resume the stale journal and return
        the wrong run's result."""
        from repro.casestudies import build_tv_decoder_spec
        from repro.distributed import make_partition
        from repro.distributed.worker import run_request
        from repro.io.json_io import spec_to_dict

        directory = str(tmp_path / "worker")
        os.makedirs(directory)
        replies = []
        for spec in (build_settop_spec(), build_tv_decoder_spec()):
            shard = make_partition(spec, 1, "band")[0]
            replies.append(run_request(directory, {
                "job": "shard-000",  # colliding id, on purpose
                "spec": spec_to_dict(spec),
                "shard": shard.to_dict(),
                "options": {"engine": "compiled"},
            }))
        assert all(reply["completed"] for reply in replies)
        assert not replies[1]["resumed"]
        solo = result_to_dict(
            explore(build_tv_decoder_spec(), engine="compiled")
        )
        assert replies[1]["result"]["points"] == solo["points"]

    def test_coordinator_runs_share_workers_across_specs(self, tmp_path):
        """End-to-end regression: two different explorations through
        the same worker processes (spec-digest-namespaced job ids keep
        their journals apart) each merge to their own solo result."""
        from repro.casestudies import build_tv_decoder_spec

        process, port = start_worker(str(tmp_path / "worker"))
        try:
            docs = []
            for name, spec in (
                ("settop", build_settop_spec()),
                ("tv", build_tv_decoder_spec()),
            ):
                sharded = explore_sharded(
                    spec, shards=2, strategy="band", mode="remote",
                    workers=[f"127.0.0.1:{port}"],
                    workdir=str(tmp_path / f"coord-{name}"),
                    engine="compiled",
                )
                docs.append((result_doc(sharded.result), result_doc(
                    explore(spec, engine="compiled")
                )))
        finally:
            process.kill()
            process.wait(timeout=30)
        for got, want in docs:
            assert got == want


class TestCoordinatorInterrupted:
    def test_inline_rerun_resumes_truncated_shards(self, tmp_path):
        """An interrupted inline coordinator (simulated by per-shard
        evaluation budgets) leaves journals a rerun finishes exactly."""
        spec = build_settop_spec()
        workdir = str(tmp_path / "coord")
        first = explore_sharded(
            spec, shards=4, strategy="band", mode="inline",
            workdir=workdir, engine="compiled",
            checkpoint_every=1, max_evaluations=2,
        )
        assert not first.result.completed
        assert first.result.gap is not None
        second = explore_sharded(
            spec, shards=4, strategy="band", mode="inline",
            workdir=workdir, engine="compiled",
        )
        assert second.result.completed
        assert all(o.resumed for o in second.outcomes)
        assert result_doc(second.result) == result_doc(
            explore(spec, engine="compiled")
        )
