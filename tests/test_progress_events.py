"""Differential tests of the structured progress-event seam.

The progress callback (:mod:`repro.core.progress`) is the observation
seam of EXPLORE: the CLI and the exploration service both consume it.
Its contract is that events carry replay-order data only — no
wall-clock — so a serial run and any batched/pooled run of the same
exploration emit *identical* event sequences.  These tests extend the
PR-1 differential harness to that event stream.
"""

import pytest

from .randspec import random_spec
from repro.casestudies import build_settop_spec
from repro.core import explore
from repro.core.progress import PROGRESS_EVENT_KINDS, ProgressEmitter
from repro.errors import ExplorationError

#: Subset of the differential corpus (events are verbose; a dozen
#: seeds already cover feasible/infeasible/truncation variety).
SEEDS = list(range(12))


def collect_events(spec, **kwargs):
    events = []
    result = explore(spec, progress=events.append, **kwargs)
    return events, result


def test_event_lifecycle_shape():
    """start first, end last, kinds from the documented vocabulary."""
    events, result = collect_events(build_settop_spec(), progress_every=16)
    assert events[0]["kind"] == "explore_start"
    assert events[-1]["kind"] == "explore_end"
    assert {e["kind"] for e in events} <= set(PROGRESS_EVENT_KINDS)
    start, end = events[0], events[-1]
    assert start["design_space_size"] == 2 ** 17
    assert start["f_max"] == 8.0
    assert end["completed"] is True
    assert end["reason"] is None
    assert end["points"] == len(result.points)
    assert end["candidates"] == result.stats.candidates_enumerated
    assert end["evaluations"] == result.stats.estimate_exceeded


def test_no_wallclock_fields():
    """The determinism contract: no event carries time or rates."""
    events, _ = collect_events(build_settop_spec(), progress_every=8)
    forbidden = {"t", "time", "elapsed", "seconds", "eta", "rate"}
    for event in events:
        assert not (set(event) & forbidden), event


def test_incumbent_trajectory_matches_front():
    """Incumbent events replay exactly the recorded Pareto points."""
    events, result = collect_events(build_settop_spec())
    incumbents = [e for e in events if e["kind"] == "incumbent"]
    assert [
        (e["cost"], e["flexibility"], e["units"]) for e in incumbents
    ] == [(p.cost, p.flexibility, sorted(p.units)) for p in result.points]
    flexibilities = [e["flexibility"] for e in incumbents]
    assert flexibilities == sorted(flexibilities)


def test_progress_cadence():
    """One progress event per ``progress_every`` enumerated candidates."""
    events, result = collect_events(build_settop_spec(), progress_every=100)
    progress = [e for e in events if e["kind"] == "progress"]
    assert len(progress) == result.stats.candidates_enumerated // 100
    assert [e["candidates"] for e in progress] == [
        100 * (i + 1) for i in range(len(progress))
    ]


def test_no_cadence_means_lifecycle_only():
    """Without progress_every only start/incumbent/end events appear."""
    events, _ = collect_events(build_settop_spec())
    assert not any(e["kind"] == "progress" for e in events)


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_differential_event_sequences(mode):
    """Serial and batched runs emit byte-identical event streams."""
    for seed in SEEDS:
        spec = random_spec(seed)
        reference, _ = collect_events(spec, progress_every=3)
        observed, _ = collect_events(
            spec, progress_every=3, parallel=mode, batch_size=4
        )
        assert observed == reference, f"seed {seed} diverged under {mode}"


def test_differential_event_sequences_options():
    """Option combinations keep the streams identical too."""
    for options in (
        dict(keep_ties=True),
        dict(timing_mode="none"),
        dict(weighted=True),
    ):
        spec = random_spec(5)
        reference, _ = collect_events(spec, progress_every=2, **options)
        observed, _ = collect_events(
            spec, progress_every=2, parallel="thread", batch_size=3,
            **options,
        )
        assert observed == reference, f"diverged with {options}"


def test_tracer_does_not_perturb_events():
    """Attaching a tracer (PR-4) leaves the event stream untouched —
    tracing is a parallel observation channel, not a participant."""
    from repro.trace import Tracer

    for seed in SEEDS[:4]:
        spec = random_spec(seed)
        reference, _ = collect_events(spec, progress_every=3)
        observed, _ = collect_events(
            spec, progress_every=3, tracer=Tracer(level="audit")
        )
        assert observed == reference, f"seed {seed} perturbed by tracer"


def test_truncated_run_events():
    """An anytime-truncated run ends with completed=False + reason."""
    events, result = collect_events(
        build_settop_spec(), max_evaluations=5
    )
    assert not result.completed
    end = events[-1]
    assert end["kind"] == "explore_end"
    assert end["completed"] is False
    assert end["reason"] == "max_evaluations"


def test_validation():
    with pytest.raises(ExplorationError):
        explore(build_settop_spec(), progress="not-callable")
    with pytest.raises(ExplorationError):
        explore(
            build_settop_spec(), progress=lambda e: None, progress_every=0
        )
    # progress_every without a callback is a documented no-op.
    result = explore(build_settop_spec(), progress_every=10)
    assert result.completed


def test_emitter_inactive_is_noop():
    emitter = ProgressEmitter(None, 5)
    assert not emitter.active
    emitter.start(10, 1.0)
    emitter.candidate(5, 1, 1, 0.0)
    emitter.incumbent(1.0, 1.0, ["u"], 1, 1)
    emitter.end(True, None, 10, 5, 1)
