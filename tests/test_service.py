"""The exploration service: scheduling, preemption, recovery, events.

The headline guarantee is differential: any number of jobs time-sliced
over one shared pool — preempted, interleaved, even killed and
recovered — produce fronts *fingerprint-identical* to solo
uninterrupted ``explore()`` runs.
"""

import os

import pytest

from .randspec import random_spec
from .test_service_metrics import validate_prometheus_text
from repro.casestudies import build_settop_spec
from repro.core import explore
from repro.io import job_io
from repro.service import ExplorationService, ManualClock, ServiceError


def fingerprint(result):
    """Front points + bound (slicing legitimately changes checkpoint
    statistics, never the exploration outcome)."""
    points = [
        (sorted(p.units), p.cost, p.flexibility, sorted(p.clusters))
        for p in result.points
    ]
    return points, result.max_flexibility_bound


def make_service(directory, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("slice_evaluations", 3)
    kwargs.setdefault("clock", ManualClock())
    return ExplorationService(str(directory), **kwargs)


def test_sixteen_jobs_two_workers_exact(tmp_path):
    """16 concurrent jobs on a 2-worker pool: all fronts exact."""
    specs = [random_spec(seed) for seed in range(16)]
    with make_service(tmp_path) as service:
        jobs = [service.submit(spec) for spec in specs]
        assert service.pool.workers == 2
        service.run()
        total_preemptions = 0
        for job, spec in zip(jobs, specs):
            assert job.state == "completed", (job.job_id, job.error)
            assert fingerprint(job.result) == fingerprint(explore(spec)), (
                f"{job.job_id} diverged from the solo run"
            )
            total_preemptions += job.preemptions
        # The tiny slice budget forces real checkpoint-preemptions.
        assert total_preemptions > 0
        metric = service.metrics.get("repro_preemptions_total")
        assert metric.value == total_preemptions
        assert service.metrics.get("repro_jobs_completed_total").value == 16


def test_crash_recovery_resumes_exact(tmp_path):
    """A service abandoned mid-run resumes every job to exact fronts."""
    specs = {f"j{i:04d}": random_spec(i + 40) for i in range(4)}
    service = make_service(tmp_path)
    for spec in specs.values():
        service.submit(spec)
    service.run(max_slices=3)
    live = [j for j in service.list_jobs() if not j.terminal]
    assert live, "pick a slice budget that leaves work unfinished"
    # Abandon without close(): the ledger is flushed per append, so
    # this is the in-process equivalent of kill -9.
    service.pool.shutdown()

    restarted = make_service(tmp_path)
    recovered = [j for j in restarted.list_jobs() if j.recovered]
    assert {j.job_id for j in recovered} == {j.job_id for j in live}
    restarted.run()
    for job_id, spec in specs.items():
        job = restarted.job(job_id)
        assert job.state == "completed", (job_id, job.error)
        assert fingerprint(restarted.result(job_id)) == fingerprint(
            explore(spec)
        ), f"{job_id} diverged after recovery"
    assert restarted.metrics.get("repro_jobs_recovered_total").value == len(
        recovered
    )
    restarted.close()


def test_repeated_crashes_converge(tmp_path):
    """Crashing after every slice still converges to exact fronts."""
    spec = random_spec(7)
    service = make_service(tmp_path, slice_evaluations=2)
    service.submit(spec)
    service.run(max_slices=1)
    service.pool.shutdown()
    for _ in range(20):
        service = make_service(tmp_path, slice_evaluations=2)
        job = service.job("j0000")
        if job.state == "completed":
            break
        service.run(max_slices=1)
        service.pool.shutdown()
    assert job.state == "completed"
    assert fingerprint(service.result("j0000")) == fingerprint(explore(spec))
    service.close()


def test_deterministic_schedule_replay(tmp_path):
    """Under a manual clock the event schedule replays exactly."""

    def run(directory):
        with make_service(directory) as service:
            subscription = service.subscribe()
            for i in range(4):
                service.submit(
                    random_spec(i + 3), priority=1.0 + (i % 2)
                )
            service.run()
            return [
                (event["kind"], event["job"])
                for event in subscription.drain()
            ]

    first = run(tmp_path / "a")
    second = run(tmp_path / "b")
    assert first == second


def test_priority_shapes_schedule(tmp_path):
    """A higher-priority job gets slices earlier (stride share)."""
    spec = build_settop_spec()
    with make_service(
        tmp_path, slice_evaluations=4, workers=1
    ) as service:
        subscription = service.subscribe(kinds=("slice_start",))
        low = service.submit(spec, name="low", priority=1.0)
        high = service.submit(spec, name="high", priority=3.0)
        service.run(max_slices=8)
        starts = [e["job"] for e in subscription.drain()]
        assert starts.count(high.job_id) > starts.count(low.job_id)


def test_cancel(tmp_path):
    with make_service(tmp_path) as service:
        job = service.submit(random_spec(1))
        service.cancel(job.job_id)
        assert job.state == "cancelled"
        assert service.run() == 0
        with pytest.raises(ServiceError):
            service.cancel(job.job_id)
    restarted = make_service(tmp_path)
    assert restarted.job(job.job_id).state == "cancelled"
    restarted.close()


def test_failed_job_is_terminal(tmp_path):
    """A job whose options explode at run time fails cleanly."""
    with make_service(tmp_path) as service:
        bad = service.submit(random_spec(2), options={"backend": "nope"})
        good = service.submit(random_spec(3))
        service.run()
        assert bad.state == "failed"
        assert bad.error and "backend" in bad.error
        assert good.state == "completed"
        assert service.metrics.get("repro_jobs_failed_total").value == 1
        with pytest.raises(ServiceError):
            service.result(bad.job_id)


def test_event_stream_filters(tmp_path):
    with make_service(tmp_path) as service:
        spec = random_spec(4)
        job = service.submit(spec)
        other = service.submit(random_spec(5))
        mine = service.subscribe(job_id=job.job_id)
        completions = service.subscribe(kinds=("completed",))
        service.run()
        assert {e["job"] for e in mine.drain()} == {job.job_id}
        completed = completions.drain()
        assert {e["job"] for e in completed} == {
            job.job_id, other.job_id,
        }
        for event in completed:
            assert event["front"], "completed events carry the front"


def test_event_files_and_watchability(tmp_path):
    """Every published event is journaled to events/<id>.jsonl."""
    import json

    with make_service(tmp_path) as service:
        job = service.submit(random_spec(6))
        service.run()
    path = job_io.events_path(str(tmp_path), job.job_id)
    events = [
        json.loads(line)
        for line in open(path, encoding="utf-8")
        if line.strip()
    ]
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "submitted"
    assert kinds[-1] == "completed"
    assert all(e["job"] == job.job_id for e in events)


def test_spool_ingestion(tmp_path):
    """Out-of-process submissions are adopted from the spool."""
    spec = random_spec(8)
    job_io.write_submission(
        str(tmp_path), spec, "spooled-job", priority=2,
        options={"keep_ties": True},
    )
    with make_service(tmp_path) as service:
        service.run()
        jobs = service.list_jobs()
        assert len(jobs) == 1
        assert jobs[0].name == "spooled-job"
        assert jobs[0].options == {"keep_ties": True}
        assert jobs[0].state == "completed"
    assert not job_io.read_submissions(str(tmp_path))
    assert fingerprint(jobs[0].result) == fingerprint(
        explore(spec, keep_ties=True)
    )


def test_metrics_exports(tmp_path):
    with make_service(tmp_path) as service:
        service.submit(random_spec(9))
        service.run()
    import json

    snapshot = json.load(open(job_io.metrics_json_path(str(tmp_path))))
    assert snapshot["repro_jobs_completed_total"]["value"] == 1
    text = open(job_io.metrics_prometheus_path(str(tmp_path))).read()
    series, typed = validate_prometheus_text(text)
    assert typed["repro_wait_seconds"] == "histogram"
    assert ("repro_jobs_completed_total" in series)


def test_checkpoint_files_per_job(tmp_path):
    with make_service(tmp_path, slice_evaluations=2) as service:
        job = service.submit(build_settop_spec())
        service.run(max_slices=2)
        assert os.path.exists(
            job_io.checkpoint_path(str(tmp_path), job.job_id)
        )
        assert job.preemptions >= 1


def test_validation(tmp_path):
    with make_service(tmp_path) as service:
        with pytest.raises(ServiceError):
            service.submit(random_spec(0), priority=0.0)
        with pytest.raises(ServiceError):
            service.submit(random_spec(0), options={"workers": 4})
        with pytest.raises(ServiceError):
            service.job("nope")
    with pytest.raises(ServiceError):
        ExplorationService(str(tmp_path / "x"), slice_evaluations=0)


def test_serial_pool_kind(tmp_path):
    """kind='serial' runs inline but is otherwise identical."""
    spec = random_spec(11)
    with make_service(tmp_path, pool_kind="serial") as service:
        job = service.submit(spec)
        service.run()
        assert fingerprint(job.result) == fingerprint(explore(spec))
