"""Exact-schedule tests for the deterministic stride scheduler.

Stride scheduling with an injectable clock makes the full schedule a
pure function of (priorities, submission order, aging rate); these
tests assert literal schedules, not just statistical fairness.
"""

import pytest

from repro.service import ManualClock, SchedulerError, StrideScheduler


def schedule(scheduler, clock, slices, advance=1.0):
    """Run ``slices`` pick/charge rounds, advancing the clock each."""
    picked = []
    for _ in range(slices):
        job_id = scheduler.pick()
        if job_id is None:
            break
        picked.append(job_id)
        scheduler.charge(job_id)
        clock.advance(advance)
    return picked


def test_round_robin_equal_priorities():
    """Equal priorities round-robin in submission order."""
    clock = ManualClock()
    scheduler = StrideScheduler(clock)
    for job in ("a", "b", "c"):
        scheduler.add(job)
    assert schedule(scheduler, clock, 9) == [
        "a", "b", "c", "a", "b", "c", "a", "b", "c",
    ]


def test_proportional_share():
    """A priority-2 job receives exactly twice the slices."""
    clock = ManualClock()
    scheduler = StrideScheduler(clock)
    scheduler.add("hi", priority=2.0)
    scheduler.add("lo", priority=1.0)
    picked = schedule(scheduler, clock, 9)
    # Exact stride order: hi (pass 0) ties broken by seq, then the
    # smaller accumulated pass always runs next.
    assert picked == [
        "hi", "lo", "hi", "hi", "lo", "hi", "hi", "lo", "hi",
    ]
    assert picked.count("hi") == 2 * picked.count("lo")


def test_three_way_priorities():
    clock = ManualClock()
    scheduler = StrideScheduler(clock)
    scheduler.add("a", priority=3.0)
    scheduler.add("b", priority=2.0)
    scheduler.add("c", priority=1.0)
    picked = schedule(scheduler, clock, 12)
    assert picked == [
        "a", "b", "c", "a", "b", "a", "a", "b", "c", "a", "b", "a",
    ]
    assert (picked.count("a"), picked.count("b"), picked.count("c")) == (
        6, 4, 2,
    )


def test_newcomer_joins_at_pass_floor():
    """A late submission competes fairly instead of monopolising."""
    clock = ManualClock()
    scheduler = StrideScheduler(clock)
    scheduler.add("old")
    schedule(scheduler, clock, 5)
    scheduler.add("new")
    picked = schedule(scheduler, clock, 4)
    # "new" starts at old's pass (the floor), ties break by seq: old
    # first, then strict alternation — not five catch-up slices.
    assert picked == ["old", "new", "old", "new"]


def test_completion_frees_share():
    clock = ManualClock()
    scheduler = StrideScheduler(clock)
    scheduler.add("a")
    scheduler.add("b")
    assert schedule(scheduler, clock, 2) == ["a", "b"]
    scheduler.remove("a")
    assert schedule(scheduler, clock, 2) == ["b", "b"]
    scheduler.remove("b")
    assert scheduler.pick() is None
    assert len(scheduler) == 0


def test_aging_boosts_long_waiters():
    """With aging, a low-priority job jumps the queue after waiting."""
    clock = ManualClock()
    scheduler = StrideScheduler(clock, aging_rate=0.0)
    aged = StrideScheduler(clock, aging_rate=20000.0)
    for s in (scheduler, aged):
        s.add("hi", priority=8.0)
        s.add("lo", priority=1.0)
    plain, boosted = [], []
    for _ in range(10):
        for s, picked in ((scheduler, plain), (aged, boosted)):
            job = s.pick()
            picked.append(job)
            s.charge(job)
        clock.advance(1.0)
    # Without aging the 8:1 share starves "lo" for long stretches;
    # with aging "lo"'s effective pass sinks while it waits and it
    # runs strictly more often.
    assert boosted.count("lo") > plain.count("lo")
    assert plain == [
        "hi", "lo", "hi", "hi", "hi", "hi", "hi", "hi", "hi", "hi",
    ]
    assert boosted == [
        "hi", "lo", "hi", "hi", "hi", "lo", "hi", "hi", "hi", "hi",
    ]


def test_deterministic_replay():
    """The same mix always yields the same schedule."""

    def run():
        clock = ManualClock()
        scheduler = StrideScheduler(clock, aging_rate=100.0)
        scheduler.add("x", priority=1.5)
        scheduler.add("y", priority=1.0)
        scheduler.add("z", priority=3.0)
        return schedule(scheduler, clock, 20)

    assert run() == run()


def test_job_ids_submission_order():
    scheduler = StrideScheduler(ManualClock())
    for job in ("c", "a", "b"):
        scheduler.add(job)
    assert scheduler.job_ids() == ["c", "a", "b"]
    assert "a" in scheduler
    assert "missing" not in scheduler


def test_validation():
    clock = ManualClock()
    with pytest.raises(SchedulerError):
        StrideScheduler(clock, aging_rate=-1.0)
    scheduler = StrideScheduler(clock)
    with pytest.raises(SchedulerError):
        scheduler.add("a", priority=0.0)
    scheduler.add("a")
    with pytest.raises(SchedulerError):
        scheduler.add("a")
    with pytest.raises(SchedulerError):
        scheduler.charge("missing")
    with pytest.raises(SchedulerError):
        scheduler.remove("missing")
    with pytest.raises(SchedulerError):
        scheduler.waiting_since("missing")
    with pytest.raises(SchedulerError):
        scheduler.charge("a", slices=-1.0)


def test_manual_clock():
    clock = ManualClock(start=5.0)
    assert clock.now() == 5.0
    clock.advance(2.5)
    assert clock.now() == 7.5
    with pytest.raises(Exception):
        clock.advance(-1.0)
