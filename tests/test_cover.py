"""Tests of minimal ECS coverage (set covering)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.casestudies import build_settop_spec
from repro.core import evaluate_allocation, minimal_cover


def fs(*items):
    return frozenset(items)


class TestMinimalCover:
    def test_empty_universe(self):
        assert minimal_cover(fs(), [fs("a")]) == ()

    def test_single_candidate(self):
        assert minimal_cover(fs("a", "b"), [fs("a", "b")]) == (0,)

    def test_prefers_fewer_sets(self):
        candidates = [fs("a"), fs("b"), fs("a", "b")]
        assert minimal_cover(fs("a", "b"), candidates) == (2,)

    def test_exact_pairing(self):
        """The paper's coverage example shape: {D2 U1} and {D1 U2}."""
        candidates = [
            fs("D1", "U1"), fs("D2", "U1"), fs("D1", "U2"), fs("D2", "U2"),
        ]
        chosen = minimal_cover(fs("D1", "D2", "U1", "U2"), candidates)
        assert len(chosen) == 2
        union = frozenset().union(*(candidates[i] for i in chosen))
        assert union == fs("D1", "D2", "U1", "U2")

    def test_uncoverable_elements_ignored(self):
        assert minimal_cover(fs("a", "zzz"), [fs("a")]) == (0,)

    def test_no_candidates(self):
        assert minimal_cover(fs("a"), []) == ()

    def test_greedy_path_for_large_instances(self):
        rng = random.Random(0)
        universe = frozenset(f"e{i}" for i in range(20))
        candidates = [
            frozenset(rng.sample(sorted(universe), k=rng.randint(2, 6)))
            for _ in range(30)
        ]
        chosen = minimal_cover(universe, candidates)
        covered = frozenset().union(*(candidates[i] for i in chosen))
        assert universe & frozenset().union(*candidates) <= covered

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.frozensets(
                st.sampled_from("abcdef"), min_size=1, max_size=4
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_cover_is_valid_and_minimal_on_small_instances(self, candidates):
        universe = frozenset().union(*candidates)
        chosen = minimal_cover(universe, candidates)
        covered = frozenset().union(*(candidates[i] for i in chosen))
        assert universe <= covered
        # exactness: no strictly smaller sub-collection covers
        from itertools import combinations

        for size in range(len(chosen)):
            for subset in combinations(range(len(candidates)), size):
                union = (
                    frozenset().union(*(candidates[i] for i in subset))
                    if subset
                    else frozenset()
                )
                assert not universe <= union


class TestImplementationMinimalCoverage:
    def test_minimal_coverage_covers_all_clusters(self):
        spec = build_settop_spec()
        impl = evaluate_allocation(
            spec, {"muP2", "C1", "D3", "G1", "U2"}
        )
        assert impl is not None
        minimal = impl.minimal_coverage()
        covered = frozenset().union(*(r.clusters for r in minimal))
        assert impl.clusters <= covered
        assert len(minimal) <= len(impl.coverage)

    def test_minimal_coverage_respects_fpga_exclusivity(self):
        spec = build_settop_spec()
        impl = evaluate_allocation(
            spec, {"muP2", "C1", "D3", "G1", "U2"}
        )
        for record in impl.minimal_coverage():
            assert not (
                "gamma_D3" in record.clusters
                and "gamma_U2" in record.clusters
            )

    def test_minimal_coverage_size_bound(self):
        """4 D/U clusters over 2 interfaces need >= 2 ECSs; minimal
        coverage achieves exactly the lower bound here."""
        from repro.core import minimal_coverage_size

        spec = build_settop_spec()
        impl = evaluate_allocation(spec, {"muP2", "C1", "D3", "U2"})
        assert impl is not None
        minimal = impl.minimal_coverage()
        tv_records = [
            r for r in minimal if "gamma_D" in r.clusters
        ]
        assert len(tv_records) >= minimal_coverage_size(
            spec,
            frozenset(
                c for c in impl.clusters if c.startswith("gamma_D")
                or c.startswith("gamma_U")
            ),
        ) - 1  # gamma_D itself is in every tv record
