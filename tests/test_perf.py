"""Performance-regression guards (loose budgets).

The paper's headline engineering claim is speed ("industrial size
applications can be efficiently explored within minutes").  These tests
keep the reproduction honest about it without being flaky: budgets are
an order of magnitude above observed times.
"""

import time

import pytest

from repro.casestudies import build_settop_spec, synthetic_spec
from repro.core import explore, flexibility, max_flexibility
from repro.spec import supports_problem


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


class TestBudgets:
    def test_settop_explore_under_five_seconds(self):
        spec = build_settop_spec()
        result, seconds = timed(explore, spec)
        assert len(result.points) == 6
        assert seconds < 5.0

    def test_flexibility_evaluation_fast(self):
        spec = build_settop_spec()
        start = time.perf_counter()
        for _ in range(1000):
            max_flexibility(spec.problem)
        assert time.perf_counter() - start < 2.0

    def test_possible_predicate_fast(self):
        spec = build_settop_spec()
        names = list(spec.units.names())
        start = time.perf_counter()
        for mask in range(4096):
            subset = {n for i, n in enumerate(names) if mask >> i & 1}
            supports_problem(spec, subset)
        assert time.perf_counter() - start < 5.0

    def test_medium_synthetic_under_budget(self):
        spec = synthetic_spec(
            n_apps=4, interfaces_per_app=2, alternatives=3,
            n_procs=2, n_accels=4,
        )
        result, seconds = timed(explore, spec)
        assert result.points
        assert seconds < 30.0

    def test_solver_invocation_budget(self):
        """The paper's 'typically less than 100' binding attempts."""
        spec = build_settop_spec()
        result = explore(spec)
        assert result.stats.estimate_exceeded < 100
