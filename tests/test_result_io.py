"""Tests of exploration-result serialisation."""

import pytest

from repro.casestudies import build_settop_spec
from repro.core import explore
from repro.errors import SerializationError
from repro.io import (
    dump_result,
    dumps_result,
    implementation_from_dict,
    implementation_to_dict,
    load_result,
    loads_result,
    result_from_dict,
    result_to_csv,
    result_to_dict,
)


@pytest.fixture(scope="module")
def result():
    return explore(build_settop_spec())


class TestResultRoundTrip:
    def test_points_roundtrip(self, result):
        restored = loads_result(dumps_result(result))
        assert restored.front() == result.front()
        assert restored.max_flexibility_bound == result.max_flexibility_bound
        for original, copy in zip(result.points, restored.points):
            assert copy.units == original.units
            assert copy.clusters == original.clusters
            assert len(copy.coverage) == len(original.coverage)

    def test_coverage_bindings_roundtrip(self, result):
        restored = loads_result(dumps_result(result))
        original = result.points[-1].ecs_for("gamma_D3")
        copy = restored.points[-1].ecs_for("gamma_D3")
        assert copy is not None
        assert copy.binding == original.binding
        assert copy.selection == original.selection

    def test_stats_roundtrip(self, result):
        restored = loads_result(dumps_result(result))
        assert restored.stats.as_dict() == result.stats.as_dict()

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "result.json"
        dump_result(result, str(path))
        assert load_result(str(path)).front() == result.front()

    def test_implementation_roundtrip(self, result):
        impl = result.points[0]
        copy = implementation_from_dict(implementation_to_dict(impl))
        assert copy.point == impl.point
        assert copy.units == impl.units

    def test_bad_format(self):
        with pytest.raises(SerializationError):
            result_from_dict({"format": "nope", "version": 1})

    def test_bad_version(self, result):
        document = result_to_dict(result)
        document["version"] = 42
        with pytest.raises(SerializationError):
            result_from_dict(document)

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            loads_result("nope{")

    def test_missing_key(self):
        with pytest.raises(SerializationError):
            implementation_from_dict({"units": []})


class TestCsv:
    def test_csv_shape(self, result):
        lines = result_to_csv(result).splitlines()
        assert lines[0] == "cost,flexibility,units,clusters"
        assert len(lines) == 1 + len(result.points)
        first = lines[1].split(",")
        assert first[0] == "100" and first[1] == "2"

    def test_csv_units_joined(self, result):
        text = result_to_csv(result)
        assert "A1;C1;C2;D3;muP2" in text
