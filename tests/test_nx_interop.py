"""Tests of the networkx interoperability layer."""

import networkx
import pytest

from repro.activation import flatten
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.io import (
    flat_to_networkx,
    hierarchy_to_networkx,
    spec_to_networkx,
)


@pytest.fixture(scope="module")
def tv_spec():
    return build_tv_decoder_spec()


class TestHierarchyConversion:
    def test_node_kinds(self, tv_spec):
        graph = hierarchy_to_networkx(tv_spec.problem)
        kinds = networkx.get_node_attributes(graph, "element")
        assert kinds["P_A"] == "vertex"
        assert kinds["I_D"] == "interface"
        assert kinds["gamma_D1"] == "cluster"

    def test_refinement_edges(self, tv_spec):
        graph = hierarchy_to_networkx(tv_spec.problem)
        assert graph.edges["gamma_D1", "I_D"]["relation"] == "refines"
        assert graph.edges["gamma_D1", "P_D1"]["relation"] == "contains"

    def test_dependence_edges(self, tv_spec):
        graph = hierarchy_to_networkx(tv_spec.problem)
        assert graph.edges["I_D", "I_U"]["relation"] == "dependence"

    def test_attrs_forwarded(self, tv_spec):
        graph = hierarchy_to_networkx(tv_spec.problem)
        assert graph.nodes["P_A"]["negligible"] is True

    def test_counts(self, tv_spec):
        graph = hierarchy_to_networkx(tv_spec.problem)
        index = tv_spec.p_index
        expected = (
            len(index.vertices)
            + len(index.interfaces)
            + len(index.clusters)
        )
        assert graph.number_of_nodes() == expected


class TestSpecConversion:
    def test_sides_and_mappings(self, tv_spec):
        graph = spec_to_networkx(tv_spec)
        assert graph.nodes["P_U1"]["side"] == "problem"
        assert graph.nodes["muP"]["side"] == "architecture"
        assert graph.edges["P_U1", "muP"]["relation"] == "mapping"
        assert graph.edges["P_U1", "muP"]["latency"] == 40.0

    def test_mapping_edge_count(self, tv_spec):
        graph = spec_to_networkx(tv_spec)
        mapping_edges = [
            e
            for e in graph.edges(data=True)
            if e[2].get("relation") == "mapping"
        ]
        assert len(mapping_edges) == len(tv_spec.mappings)

    def test_standard_algorithms_apply(self):
        """The point of the interop: run stock networkx analyses."""
        spec = build_settop_spec()
        graph = spec_to_networkx(spec)
        degrees = dict(graph.in_degree())
        # the processors are the most mapped-onto resources
        top = max(
            (n for n, d in graph.nodes(data=True)
             if d.get("side") == "architecture" and d.get("element") == "vertex"),
            key=lambda n: degrees.get(n, 0),
        )
        assert top in ("muP1", "muP2")


class TestFlatConversion:
    def test_flat_task_graph(self, tv_spec):
        flat = flatten(
            tv_spec.problem, {"I_D": "gamma_D1", "I_U": "gamma_U1"}
        )
        graph = flat_to_networkx(flat)
        assert set(graph.nodes) == set(flat.leaves)
        assert networkx.is_directed_acyclic_graph(graph)
        order = list(networkx.topological_sort(graph))
        assert order.index("P_D1") < order.index("P_U1")
