"""Tests of the front-quality metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.report import coverage, front_summary, hypervolume, knee_point

points_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=50).map(float),
        st.integers(min_value=0, max_value=10).map(float),
    ),
    min_size=0,
    max_size=30,
)


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume([(2.0, 3.0)], reference=(10.0, 0.0)) == 24.0

    def test_two_points(self):
        # (2, 1) adds (10-2)*1; (5, 3) adds (10-5)*2
        value = hypervolume([(2.0, 1.0), (5.0, 3.0)], reference=(10.0, 0.0))
        assert value == 8.0 + 10.0

    def test_empty(self):
        assert hypervolume([]) == 0.0

    def test_dominated_points_ignored(self):
        base = hypervolume([(2.0, 1.0), (5.0, 3.0)], reference=(10.0, 0.0))
        noisy = hypervolume(
            [(2.0, 1.0), (5.0, 3.0), (6.0, 2.0)], reference=(10.0, 0.0)
        )
        assert base == noisy

    @settings(max_examples=150, deadline=None)
    @given(points_strategy, points_strategy)
    def test_superset_never_shrinks_hypervolume(self, pts, extra):
        reference = (60.0, 0.0)
        assert hypervolume(pts + extra, reference) >= hypervolume(
            pts, reference
        ) - 1e-9

    def test_settop_front_value(self):
        front = [
            (100.0, 2.0), (120.0, 3.0), (230.0, 4.0),
            (290.0, 5.0), (360.0, 7.0), (430.0, 8.0),
        ]
        value = hypervolume(front, reference=(430.0, 0.0))
        expected = (
            (430 - 100) * 2 + (430 - 120) * 1 + (430 - 230) * 1
            + (430 - 290) * 1 + (430 - 360) * 2 + 0
        )
        assert value == expected


class TestCoverage:
    def test_identical_fronts(self):
        front = [(1.0, 1.0), (2.0, 2.0)]
        assert coverage(front, front) == 1.0

    def test_dominating_front(self):
        strong = [(1.0, 3.0)]
        weak = [(2.0, 2.0), (3.0, 1.0)]
        assert coverage(strong, weak) == 1.0
        assert coverage(weak, strong) == 0.0

    def test_partial(self):
        a = [(1.0, 1.0)]
        b = [(1.0, 1.0), (0.5, 3.0)]
        assert coverage(a, b) == 0.5

    def test_empty_b(self):
        assert coverage([(1.0, 1.0)], []) == 1.0


class TestKnee:
    def test_empty(self):
        assert knee_point([]) is None

    def test_single(self):
        assert knee_point([(3.0, 1.0)]) == (3.0, 1.0)

    def test_steepest_segment_wins(self):
        front = [(100.0, 2.0), (120.0, 3.0), (230.0, 4.0)]
        # slopes: 1/20 then 1/110 -> knee at (120, 3)
        assert knee_point(front) == (120.0, 3.0)

    def test_settop_knee(self):
        from repro.casestudies import build_settop_spec
        from repro.core import explore

        front = explore(build_settop_spec()).front()
        assert knee_point(front) == (120.0, 3.0)


class TestSummary:
    def test_summary_fields(self):
        summary = front_summary([(1.0, 1.0), (4.0, 5.0)])
        assert summary["points"] == 2
        assert summary["cost_span"] == (1.0, 4.0)
        assert summary["flexibility_span"] == (1.0, 5.0)
        assert summary["knee"] == (4.0, 5.0)
        assert summary["hypervolume"] > 0

    def test_summary_empty(self):
        summary = front_summary([])
        assert summary["points"] == 0
        assert summary["knee"] is None
