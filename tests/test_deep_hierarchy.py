"""Depth-3 hierarchies: alternatives inside alternatives inside apps.

The paper's examples stop at depth 2 (application -> stage ->
alternative); the model has no depth limit.  These tests build a
three-level problem — a codec suite whose video path itself chooses
between software and hardware pipelines, each with alternative
entropy coders — and pins the recursive flexibility arithmetic,
activatability, flattening and exploration at that depth.
"""

import pytest

from repro.activation import flatten
from repro.core import (
    evaluate_allocation,
    exhaustive_front,
    explore,
    flexibility,
    max_flexibility,
)
from repro.hgraph import new_cluster
from repro.spec import (
    ArchitectureGraph,
    ProblemGraph,
    SpecificationGraph,
    activatable_clusters,
)


def build_deep_spec():
    problem = ProblemGraph("Deep")
    top = problem.add_interface("I_App")
    # branch 1: plain audio app (leaf cluster)
    audio = new_cluster(top, "app_audio")
    audio.add_vertex("P_audio")
    # branch 2: video app with a nested pipeline choice
    video = new_cluster(top, "app_video", period=100.0)
    video.add_vertex("P_cap")
    pipe = video.add_interface("I_pipe")
    pipe.add_port("in", "in")
    # depth-2 alternative A: software pipeline with entropy choice
    soft = new_cluster(pipe, "pipe_soft")
    soft.add_vertex("P_scale")
    entropy = soft.add_interface("I_entropy")
    for name, proc in (("ent_huff", "P_huff"), ("ent_arith", "P_arith")):
        alt = new_cluster(entropy, name)
        alt.add_vertex(proc)
    soft.add_edge("P_scale", "I_entropy")
    soft.map_port("in", "P_scale")
    # depth-2 alternative B: hardware pipeline (leaf)
    hard = new_cluster(pipe, "pipe_hard")
    hard.add_vertex("P_hwpipe")
    hard.map_port("in", "P_hwpipe")
    video.add_edge("P_cap", "I_pipe", dst_port="in")

    arch = ArchitectureGraph("Deep_arch")
    arch.add_resource("cpu", cost=100.0)
    arch.add_resource("hw", cost=80.0)
    arch.add_bus("b", 10.0, "cpu", "hw")

    spec = SpecificationGraph(problem, arch, name="Deep_spec")
    spec.map_row("P_audio", {"cpu": 10.0})
    spec.map_row("P_cap", {"cpu": 5.0})
    spec.map_row("P_scale", {"cpu": 20.0})
    spec.map_row("P_huff", {"cpu": 30.0})
    spec.map_row("P_arith", {"cpu": 60.0})  # 5+20+60 = 85 > 0.69*100
    spec.map_row("P_hwpipe", {"hw": 15.0})
    return spec.freeze()


@pytest.fixture(scope="module")
def deep():
    return build_deep_spec()


class TestDepth3Flexibility:
    def test_max_flexibility_arithmetic(self, deep):
        """f(pipe_soft) = 2 (two entropy coders); f(I_pipe) = 2 + 1;
        f(app_video) = 3; top = 1 + 3 = 4."""
        assert max_flexibility(deep.problem) == 4.0

    def test_partial_activation(self, deep):
        active = {"app_audio", "app_video", "pipe_soft", "ent_huff"}
        assert flexibility(deep.problem, active=active, strict=False) == 2.0

    def test_activatability_depth3(self, deep):
        clusters = activatable_clusters(deep, {"cpu"})
        assert clusters == {
            "app_audio", "app_video", "pipe_soft", "ent_huff", "ent_arith",
        }
        assert "pipe_hard" in activatable_clusters(deep, {"cpu", "hw"})

    def test_flatten_depth3(self, deep):
        flat = flatten(
            deep.problem,
            {
                "I_App": "app_video",
                "I_pipe": "pipe_soft",
                "I_entropy": "ent_arith",
            },
        )
        assert sorted(flat.leaves) == ["P_arith", "P_cap", "P_scale"]
        assert ("P_scale", "P_arith") in flat.edges


class TestDepth3Exploration:
    def test_cpu_alone(self, deep):
        impl = evaluate_allocation(deep, {"cpu"})
        assert impl is not None
        # arithmetic coder blows the bound on the cpu: 85/100 > 0.69
        assert "ent_arith" not in impl.clusters
        # f = app_audio(1) + app_video(soft: huff only -> 1) = 2
        assert impl.flexibility == 2.0

    def test_full_platform(self, deep):
        impl = evaluate_allocation(deep, {"cpu", "hw", "b"})
        assert impl is not None
        # arith still infeasible on cpu; hw pipeline adds 1
        assert impl.flexibility == 3.0
        assert "pipe_hard" in impl.clusters

    def test_front_matches_exhaustive(self, deep):
        result = explore(deep)
        assert result.front() == [
            impl.point for impl in exhaustive_front(deep)
        ]
        assert result.front() == [(100.0, 2.0), (190.0, 3.0)]

    def test_schedule_mode_unlocks_arith(self, deep):
        """Exact scheduling accepts the 85 <= 100 chain."""
        impl = evaluate_allocation(deep, {"cpu"}, timing_mode="schedule")
        assert "ent_arith" in impl.clusters
        assert impl.flexibility == 3.0
