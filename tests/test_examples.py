"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; these tests execute
them in-process (stdout captured) so a regression in the API surface
they use fails the suite, not just the docs.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    assert buffer.getvalue().strip(), f"{script} produced no output"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "settop_family.py",
        "adaptive_runtime.py",
        "platform_dimensioning.py",
        "product_roadmap.py",
    } <= set(EXAMPLES)


def test_settop_example_reports_match():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(
            str(EXAMPLES_DIR / "settop_family.py"), run_name="__main__"
        )
    assert "MATCH" in buffer.getvalue()


def test_adaptive_example_serves_all_on_flagship():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(
            str(EXAMPLES_DIR / "adaptive_runtime.py"), run_name="__main__"
        )
    assert "served 6/6 requests" in buffer.getvalue()
