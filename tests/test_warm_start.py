"""End-to-end warm-start exactness (:mod:`repro.store` wired through
``explore(warm_store=...)``).

The headline contract: a warm run is **byte-identical** to a cold run —
result document (points, statistics, progress events), trace
fingerprint — and only the cache diagnostics differ.  Proven
differentially over the case studies, the 30-seed random corpus and
randomized chains of latency/cost/structural edits, plus the failure
modes: corrupted segments and malformed payloads degrade to cold,
never to a wrong front.
"""

import json
import os
import random

import pytest

from .randspec import random_spec
from repro.analysis import with_latency, with_unit_costs
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import explore
from repro.errors import ExplorationError
from repro.io import spec_from_dict, spec_to_dict
from repro.io.result_io import dumps_result, loads_result, result_to_dict
from repro.resilience import resume_explore
from repro.resilience.journal import _parse_line, encode_record
from repro.service import ExplorationService
from repro.store import diff_specs, invalidate, open_store
from repro.store.store import _reset_stores
from repro.trace import Tracer, trace_fingerprint

SEEDS = list(range(30))


@pytest.fixture(autouse=True)
def fresh_intern_table():
    _reset_stores()
    yield
    _reset_stores()


def fresh(spec):
    """A structurally identical spec that shares no object identity —
    defeats the per-spec evaluator interning so every run genuinely
    consults the store instead of the in-memory memo."""
    return spec_from_dict(spec_to_dict(spec))


def canonical(result, ignore=()):
    """Result document minus wall-clock and cache diagnostics."""
    document = result_to_dict(result)
    document.get("stats", {}).pop("elapsed_seconds", None)
    for key in ignore:
        document.get("stats", {}).pop(key, None)
    document.pop("cache", None)
    return json.dumps(document, sort_keys=True)


def run(spec, warm_store=None, **options):
    tracer = Tracer(level="audit")
    result = explore(
        fresh(spec), warm_store=warm_store, tracer=tracer, **options
    )
    return result, trace_fingerprint(tracer.all_records())


class TestCaseStudies:
    @pytest.mark.parametrize(
        "build", [build_settop_spec, build_tv_decoder_spec]
    )
    def test_warm_equals_cold(self, build, tmp_path):
        spec = build()
        store_path = str(tmp_path / "ws")
        cold, cold_trace = run(spec)
        filling, filling_trace = run(spec, warm_store=store_path)
        _reset_stores()
        warm, warm_trace = run(spec, warm_store=store_path)

        assert canonical(cold) == canonical(filling) == canonical(warm)
        assert cold_trace == filling_trace == warm_trace
        assert filling.stats.warm_writes > 0
        assert warm.stats.warm_hits == filling.stats.warm_writes
        assert warm.stats.warm_misses == 0
        assert warm.stats.warm_corruptions == 0

    def test_single_latency_edit_reuses_almost_everything(self, tmp_path):
        spec = build_settop_spec()
        store_path = str(tmp_path / "ws")
        run(spec, warm_store=store_path)

        mapping = spec_to_dict(spec)["mappings"][0]
        pair = (mapping["process"], mapping["resource"])
        patched = with_latency(spec, {pair: mapping["latency"] + 1})
        report = invalidate(
            open_store(store_path), spec, patched, diff_specs(spec, patched)
        )
        assert report["kind"] == "local"
        assert report["invalidated"] >= 1

        _reset_stores()
        cold, cold_trace = run(patched)
        _reset_stores()
        warm, warm_trace = run(patched, warm_store=store_path)
        assert canonical(cold) == canonical(warm)
        assert cold_trace == warm_trace
        # the edit is local: nearly all verdicts replay from the store
        assert warm.stats.warm_hits > warm.stats.warm_misses

    def test_cost_edit_keeps_every_verdict(self, tmp_path):
        spec = build_settop_spec()
        store_path = str(tmp_path / "ws")
        filling, _trace = run(spec, warm_store=store_path)

        unit = sorted(spec.units.names())[0]
        patched = with_unit_costs(spec, {unit: 12345.0})
        report = invalidate(open_store(store_path), spec, patched)
        # costs never enter a verdict, so nothing is dropped ...
        assert report == {
            "kind": "local",
            "invalidated": 0,
            "namespace": report["namespace"],
        }

        _reset_stores()
        cold, cold_trace = run(patched)
        _reset_stores()
        warm, warm_trace = run(patched, warm_store=store_path)
        assert canonical(cold) == canonical(warm)
        assert cold_trace == warm_trace
        # ... and every stored verdict the new trajectory revisits is
        # replayed (the edit reorders the enumeration, so *new*
        # sub-problems may appear — misses, but never stale hits)
        assert warm.stats.warm_hits > 0
        assert filling.stats.warm_writes > 0


class TestRandomCorpus:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_equals_cold(self, seed, tmp_path):
        spec = random_spec(seed)
        store_path = str(tmp_path / "ws")
        cold, cold_trace = run(spec)
        filling, filling_trace = run(spec, warm_store=store_path)
        _reset_stores()
        warm, warm_trace = run(spec, warm_store=store_path)
        assert canonical(cold) == canonical(filling) == canonical(warm)
        assert cold_trace == filling_trace == warm_trace
        assert warm.stats.warm_misses == 0
        if filling.stats.warm_writes:
            assert warm.stats.warm_hits > 0

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_randomized_edit_chain(self, seed, tmp_path):
        """Any chain of patches: warm == cold at every step."""
        rng = random.Random(seed * 7919 + 13)
        spec = random_spec(seed)
        store_path = str(tmp_path / "ws")
        run(spec, warm_store=store_path)
        for _step in range(4):
            document = spec_to_dict(spec)
            choice = rng.random()
            if choice < 0.45 and document["mappings"]:
                mapping = rng.choice(document["mappings"])
                edited = with_latency(
                    spec,
                    {
                        (mapping["process"], mapping["resource"]):
                            mapping["latency"] + rng.choice((1.0, 5.0, 25.0))
                    },
                )
            elif choice < 0.9:
                unit = rng.choice(sorted(spec.units.names()))
                edited = with_unit_costs(
                    spec, {unit: float(rng.randint(1, 400))}
                )
            else:
                # structural: perturb the period attribute
                document["problem"].setdefault("attrs", {})["period"] = (
                    float(rng.choice((137, 731, 1311)))
                )
                edited = spec_from_dict(document)
            invalidate(open_store(store_path), spec, edited)
            _reset_stores()
            cold, cold_trace = run(edited)
            _reset_stores()
            warm, warm_trace = run(edited, warm_store=store_path)
            assert canonical(cold) == canonical(warm), (
                f"seed {seed}: warm diverged after a "
                f"{diff_specs(spec, edited).kind} edit"
            )
            assert cold_trace == warm_trace
            spec = edited


class TestFailureModes:
    def fill(self, tmp_path):
        spec = build_settop_spec()
        store_path = str(tmp_path / "ws")
        run(spec, warm_store=store_path)
        _reset_stores()
        segments = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(store_path)
            for name in names
        ]
        assert segments
        return spec, store_path, segments

    def test_corrupted_segment_degrades_to_cold(self, tmp_path):
        spec, store_path, segments = self.fill(tmp_path)
        for segment in segments:
            data = open(segment, "rb").read()
            with open(segment, "wb") as handle:
                handle.write(data[: len(data) // 2])
                handle.write(b"#### bit rot ####\n")
                handle.write(data[len(data) // 2:])
        cold, cold_trace = run(spec)
        _reset_stores()
        warm, warm_trace = run(spec, warm_store=store_path)
        assert canonical(cold) == canonical(warm)
        assert cold_trace == warm_trace
        store = open_store(store_path)
        assert store.corrupt_entries > 0  # loud, not silent
        assert not store.verify()["ok"]

    def test_malformed_payload_detected_not_trusted(self, tmp_path):
        """CRC-valid records with garbage verdicts: the evaluator's
        payload validation rejects them and recomputes cold."""
        spec, store_path, segments = self.fill(tmp_path)
        for segment in segments:
            lines = open(segment, "rb").read().splitlines()
            with open(segment, "w", encoding="utf-8") as handle:
                for line in lines:
                    rtype, payload = _parse_line(line + b"\n")
                    if rtype == "entry":
                        payload["v"] = {"b": 5, "d": "wrong", "tc": None}
                    handle.write(encode_record(rtype, payload))
        cold, cold_trace = run(spec)
        _reset_stores()
        warm, warm_trace = run(spec, warm_store=store_path)
        assert canonical(cold) == canonical(warm)
        assert cold_trace == warm_trace
        assert warm.stats.warm_corruptions > 0
        assert warm.stats.warm_hits == 0

    def test_version_skewed_store_starts_cold(self, tmp_path):
        spec, store_path, segments = self.fill(tmp_path)
        for segment in segments:
            lines = open(segment, "rb").read().splitlines()
            rtype, header = _parse_line(lines[0] + b"\n")
            header["version"] += 1
            with open(segment, "w", encoding="utf-8") as handle:
                handle.write(encode_record(rtype, header))
                for line in lines[1:]:
                    handle.write(line.decode("utf-8") + "\n")
        cold, _cold_trace = run(spec)
        _reset_stores()
        warm, _warm_trace = run(spec, warm_store=store_path)
        assert canonical(cold) == canonical(warm)
        assert warm.stats.warm_hits == 0
        assert open_store(store_path).skewed_segments > 0

    def test_unwritable_store_never_fails_the_run(self, tmp_path, monkeypatch):
        spec = build_settop_spec()
        store_path = str(tmp_path / "ws")
        # every segment-open fails, as on a full or read-only disk
        # (chmod is no barrier when the suite runs as root)
        monkeypatch.setattr(
            "repro.store.store._Namespace._open_writer", lambda self: None
        )
        cold, cold_trace = run(spec)
        _reset_stores()
        warm, warm_trace = run(spec, warm_store=store_path)
        assert canonical(cold) == canonical(warm)
        assert cold_trace == warm_trace
        assert open_store(store_path).writes == 0  # nothing durable
        _reset_stores()
        assert open_store(store_path).stats()["entries"] == 0

    def test_invalid_warm_store_value_rejected(self):
        with pytest.raises(ExplorationError):
            explore(build_settop_spec(), warm_store=123)
        with pytest.raises(ExplorationError):
            explore(build_settop_spec(), warm_store="")


class TestWiring:
    def test_store_object_accepted(self, tmp_path):
        spec = build_settop_spec()
        store = open_store(str(tmp_path / "ws"))
        filling, _trace = run(spec, warm_store=store)
        assert filling.stats.warm_writes > 0
        assert store.writes == filling.stats.warm_writes

    def test_batched_thread_pool_uses_the_store(self, tmp_path):
        spec = build_settop_spec()
        store_path = str(tmp_path / "ws")
        cold, cold_trace = run(spec, parallel="thread", workers=2)
        filling, _trace = run(
            spec, warm_store=store_path, parallel="thread", workers=2
        )
        _reset_stores()
        warm, warm_trace = run(
            spec, warm_store=store_path, parallel="thread", workers=2
        )
        assert canonical(cold) == canonical(filling) == canonical(warm)
        assert cold_trace == warm_trace
        assert warm.stats.warm_hits > 0

    def test_checkpoint_resume_records_the_store(self, tmp_path):
        """The store path rides the checkpoint header like pool
        geometry: a resumed run keeps warming, and the result is
        identical to an uninterrupted cold run."""
        spec = build_settop_spec()
        store_path = str(tmp_path / "ws")
        ckpt = str(tmp_path / "run.ckpt")
        full, _trace = run(spec)

        truncated = explore(
            fresh(spec),
            warm_store=store_path,
            checkpoint=ckpt,
            max_evaluations=3,
        )
        assert not truncated.completed
        _reset_stores()
        resumed = resume_explore(ckpt, max_evaluations=None)
        assert resumed.completed
        # checkpointing legitimately differs only in its own counter
        skip = ("checkpoints_written",)
        assert canonical(full, skip) == canonical(resumed, skip)
        assert resumed.stats.warm_hits + resumed.stats.warm_writes > 0

        # the recorded path is overridable like any execution knob
        _reset_stores()
        other = str(tmp_path / "elsewhere")
        resumed_other = resume_explore(
            ckpt, warm_store=other, max_evaluations=None
        )
        assert canonical(full, skip) == canonical(resumed_other, skip)
        assert os.path.isdir(other)

    def test_result_json_round_trips_cache_section(self, tmp_path):
        spec = build_settop_spec()
        filling, _trace = run(spec, warm_store=str(tmp_path / "ws"))
        document = json.loads(dumps_result(filling))
        assert document["cache"]["warm_writes"] > 0
        restored = loads_result(dumps_result(filling))
        assert restored.stats.cache_dict() == filling.stats.cache_dict()
        assert canonical(restored) == canonical(filling)


class TestService:
    def test_jobs_share_one_store(self, tmp_path):
        spec = build_settop_spec()
        with ExplorationService(
            str(tmp_path), workers=2, slice_evaluations=16
        ) as service:
            service.submit(fresh(spec), name="first")
            service.run()
            first_hits = service.metrics.get("repro_warm_hits_total").value
            service.submit(fresh(spec), name="second")
            service.run()
            jobs = service.list_jobs()
            assert all(j.state == "completed" for j in jobs)
            hits = service.metrics.get("repro_warm_hits_total").value
            assert hits > first_hits  # the second tenant reuses the first's
            assert os.path.isdir(os.path.join(str(tmp_path), "warmstore"))
            solo = explore(fresh(spec))
            for job in jobs:
                result = service.result(job.job_id)
                assert [
                    (sorted(p.units), p.cost, p.flexibility)
                    for p in result.points
                ] == [
                    (sorted(p.units), p.cost, p.flexibility)
                    for p in solo.points
                ]

    def test_warm_store_disabled(self, tmp_path):
        with ExplorationService(
            str(tmp_path), workers=1, warm_store=None
        ) as service:
            service.submit(build_settop_spec())
            service.run()
            [job] = service.list_jobs()
            assert job.state == "completed"
            assert not os.path.exists(os.path.join(str(tmp_path), "warmstore"))
            assert service.metrics.get("repro_warm_hits_total").value == 0
