"""Tests of the Definition-4 flexibility metric, incl. paper values."""

import pytest

from repro.casestudies import (
    build_settop_problem,
    build_settop_spec,
    build_tv_decoder_problem,
)
from repro.core import (
    estimate_flexibility,
    flexibility,
    max_flexibility,
    spec_max_flexibility,
)
from repro.errors import ActivationError
from repro.hgraph import HierarchicalGraph, new_cluster


class TestPaperValues:
    def test_settop_max_is_8(self):
        """Fig. 3: 'If all clusters can be activated ... f(G_P) = 8.'"""
        assert max_flexibility(build_settop_problem()) == 8.0

    def test_settop_without_game_is_5(self):
        """Fig. 3: 'If cluster gamma_G is not used ... f(G_P) = 5.'"""
        problem = build_settop_problem()
        active = {
            "gamma_I", "gamma_D",
            "gamma_D1", "gamma_D2", "gamma_D3", "gamma_U1", "gamma_U2",
        }
        assert flexibility(problem, active=active, strict=False) == 5.0

    def test_tv_decoder_fig1(self):
        """Fig. 1 decoder: 3 decryptions + 2 uncompressions -> 3+2-1 = 4."""
        assert max_flexibility(build_tv_decoder_problem()) == 4.0

    def test_settop_muP2_estimate_is_3(self):
        """Section 5: estimated flexibility of allocation {muP2} is 3."""
        spec = build_settop_spec()
        assert estimate_flexibility(spec, {"muP2"}) == 3.0

    def test_settop_spec_max_is_8(self):
        assert spec_max_flexibility(build_settop_spec()) == 8.0

    def test_settop_single_app_examples(self):
        problem = build_settop_problem()
        browser_only = {"gamma_I"}
        assert flexibility(problem, active=browser_only, strict=False) == 1.0
        tv_min = {"gamma_D", "gamma_D1", "gamma_U1"}
        assert flexibility(problem, active=tv_min, strict=False) == 1.0
        muP2_feasible = {"gamma_I", "gamma_D", "gamma_D1", "gamma_U1"}
        assert flexibility(problem, active=muP2_feasible, strict=False) == 2.0


class TestFormula:
    def test_leaf_cluster_is_one(self):
        g = HierarchicalGraph("G")
        i = g.add_interface("I")
        c = new_cluster(i, "g1")
        c.add_vertex("v")
        assert flexibility(g) == 1.0

    def test_interface_sums_clusters(self):
        g = HierarchicalGraph("G")
        i = g.add_interface("I")
        for k in range(4):
            new_cluster(i, f"g{k}").add_vertex(f"v{k}")
        assert flexibility(g) == 4.0

    def test_multi_interface_correction_term(self):
        """n interfaces with k_i alternatives: sum(k_i) - (n-1)."""
        g = HierarchicalGraph("G")
        for n, k in enumerate((3, 2, 4)):
            i = g.add_interface(f"I{n}")
            for j in range(k):
                new_cluster(i, f"g{n}_{j}").add_vertex(f"v{n}_{j}")
        assert flexibility(g) == 3 + 2 + 4 - 2

    def test_no_interfaces_scope_is_one(self):
        g = HierarchicalGraph("G")
        g.add_vertex("a")
        g.add_vertex("b")
        assert flexibility(g) == 1.0

    def test_nested_hierarchy(self):
        """A cluster containing an interface multiplies richness by sum."""
        g = HierarchicalGraph("G")
        top = g.add_interface("I")
        outer = new_cluster(top, "outer")
        inner_if = outer.add_interface("J")
        for k in range(3):
            new_cluster(inner_if, f"in{k}").add_vertex(f"w{k}")
        plain = new_cluster(top, "plain")
        plain.add_vertex("p")
        # f = f(outer) + f(plain) = (3 - 0) + 1
        assert flexibility(g) == 4.0

    def test_inactive_cluster_contributes_zero(self):
        g = HierarchicalGraph("G")
        i = g.add_interface("I")
        for k in range(3):
            new_cluster(i, f"g{k}").add_vertex(f"v{k}")
        assert flexibility(g, active={"g0", "g1"}) == 2.0

    def test_strict_rejects_inconsistent_activation(self):
        g = HierarchicalGraph("G")
        i = g.add_interface("I")
        new_cluster(i, "g0").add_vertex("v0")
        with pytest.raises(ActivationError):
            flexibility(g, active=set())

    def test_non_strict_inconsistent_returns_value(self):
        g = HierarchicalGraph("G")
        i = g.add_interface("I")
        new_cluster(i, "g0").add_vertex("v0")
        assert flexibility(g, active=set(), strict=False) == 0.0

    def test_predicate_active(self):
        problem = build_settop_problem()
        value = flexibility(
            problem,
            active=lambda name: not name.endswith("3"),
            strict=False,
        )
        # drops gamma_D3 and gamma_G3: 8 - 2
        assert value == 6.0


class TestWeighted:
    def test_weighted_reduces_to_unweighted_for_unit_weights(self):
        problem = build_settop_problem()
        assert flexibility(problem, weighted=True) == flexibility(problem)

    def test_weighted_scales_contributions(self):
        g = HierarchicalGraph("G")
        i = g.add_interface("I")
        new_cluster(i, "g0", weight=2.5).add_vertex("v0")
        new_cluster(i, "g1").add_vertex("v1")
        assert flexibility(g, weighted=True) == 3.5
        assert flexibility(g) == 2.0

    def test_weighted_nested(self):
        g = HierarchicalGraph("G")
        top = g.add_interface("I")
        outer = new_cluster(top, "outer", weight=2.0)
        inner_if = outer.add_interface("J")
        new_cluster(inner_if, "in0", weight=3.0).add_vertex("w0")
        # f(outer) = 2 * (3 * 1) = 6
        assert flexibility(g, weighted=True) == 6.0


class TestEstimate:
    def test_estimate_zero_for_impossible_allocation(self):
        spec = build_settop_spec()
        assert estimate_flexibility(spec, {"A1"}) == 0.0
        assert estimate_flexibility(spec, set()) == 0.0

    def test_estimate_is_upper_bound_of_implementable(self):
        from repro.core import evaluate_allocation

        spec = build_settop_spec()
        for units in ({"muP2"}, {"muP1"}, {"muP2", "D3", "U2"},
                      {"muP2", "A1", "C2"}):
            estimate = estimate_flexibility(spec, units)
            impl = evaluate_allocation(spec, units)
            if impl is not None:
                assert impl.flexibility <= estimate

    def test_estimate_monotone_in_allocation(self):
        spec = build_settop_spec()
        smaller = estimate_flexibility(spec, {"muP2"})
        larger = estimate_flexibility(spec, {"muP2", "A1", "C2"})
        assert larger >= smaller
