"""Tests of adaptive trace reporting."""

import pytest

from repro.adaptive import AdaptiveSimulator, mode_label, trace_report
from repro.casestudies import FPGA_RECONFIG_DELAY, build_settop_spec
from repro.core import explore


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def flagship(settop):
    return explore(settop).points[-1]


def make_trace(settop, flagship):
    sim = AdaptiveSimulator(settop, flagship)
    sim.request(0.0, {"gamma_I"})
    sim.request(1000.0, {"gamma_D1", "gamma_U1"})
    sim.request(3000.0, {"gamma_G"})
    return sim


class TestTraceReport:
    def test_mode_residency_sums_to_useful_time(self, settop, flagship):
        sim = make_trace(settop, flagship)
        report = trace_report(sim, horizon=4000.0)
        assert report.idle_time == 0.0
        useful = sum(report.mode_residency.values())
        assert useful + report.reconfig_time == pytest.approx(4000.0)

    def test_residency_per_mode(self, settop, flagship):
        sim = make_trace(settop, flagship)
        report = trace_report(sim, horizon=4000.0)
        browser = mode_label({"gamma_I"})
        assert report.mode_residency[browser] == pytest.approx(1000.0)

    def test_occupancy_weighted_by_residency(self, settop, flagship):
        sim = AdaptiveSimulator(settop, flagship)
        sim.request(0.0, {"gamma_D1", "gamma_U1"})
        report = trace_report(sim, horizon=100.0)
        # TV on muP2 the whole window: (95+45)/300
        assert report.resource_occupancy["muP2"] == pytest.approx(
            (95 + 45) / 300
        )
        assert report.busiest_resource()[0] == "muP2"

    def test_reconfig_time_charged(self, settop):
        impl = next(
            p for p in explore(settop).points if p.cost == 290.0
        )
        sim = AdaptiveSimulator(settop, impl)
        sim.request(0.0, {"gamma_I"})
        sim.request(5000.0, {"gamma_D3"})
        report = trace_report(sim, horizon=10000.0)
        assert report.reconfig_time == pytest.approx(FPGA_RECONFIG_DELAY)

    def test_idle_before_first_mode(self, settop, flagship):
        sim = AdaptiveSimulator(settop, flagship)
        sim.request(500.0, {"gamma_I"})
        report = trace_report(sim, horizon=1000.0)
        assert report.idle_time == 500.0

    def test_empty_trace(self, settop, flagship):
        sim = AdaptiveSimulator(settop, flagship)
        report = trace_report(sim, horizon=100.0)
        assert report.mode_residency == {}
        assert report.idle_time == 100.0
        assert report.busiest_resource() == ("", 0.0)

    def test_horizon_truncates(self, settop, flagship):
        sim = make_trace(settop, flagship)
        report = trace_report(sim, horizon=500.0)
        assert sum(report.mode_residency.values()) == pytest.approx(500.0)
        assert len(report.mode_residency) == 1
