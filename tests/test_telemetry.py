"""The telemetry plane: registry, sampler, profiler, fleet, top, CLI.

Covers the unified metric namespace (collectors, grammar validation,
snapshot algebra), the process resource sampler, the phase profiler on
the tracer seam, the warm-store bridge, coordinator-side fleet
telemetry, the ``repro top`` renderer, and the new CLI surfaces —
including the satellite requirement that the merged export of *every*
metric surface stays inside the Prometheus grammar with no name
collisions.
"""

import io
import json
import os

import pytest

from repro.casestudies import build_settop_spec
from repro.cli import main as cli_main
from repro.core import explore
from repro.io import dump_spec, job_io
from repro.service import ExplorationService, MetricError
from repro.store import open_store
from repro.telemetry import (
    PHASE_BUCKETS,
    FleetTelemetry,
    MetricRegistry,
    PhaseProfiler,
    ResourceSampler,
    Telemetry,
    diff_snapshots,
    export_store_metrics,
    format_top,
    registry_from_snapshot,
    run_top,
    store_collector,
    top_snapshot,
)
from repro.telemetry.registry import COLLECTOR_ERRORS_METRIC

from .test_service_metrics import validate_prometheus_text


class TestMetricRegistry:
    def test_collectors_run_on_export(self):
        registry = MetricRegistry()
        calls = []

        def collect(reg):
            calls.append(1)
            reg.gauge("repro_fresh", "").set(42.0)

        registry.register_collector(collect)
        assert registry.as_dict()["repro_fresh"]["value"] == 42.0
        registry.to_prometheus()
        assert len(calls) == 2

    def test_collector_registration_idempotent(self):
        registry = MetricRegistry()
        calls = []

        def collect(reg):
            calls.append(1)

        registry.register_collector(collect)
        registry.register_collector(collect)
        registry.as_dict()
        assert len(calls) == 1

    def test_failing_collector_is_counted_not_fatal(self):
        registry = MetricRegistry()

        def boom(reg):
            raise RuntimeError("collector bug")

        registry.register_collector(boom)
        registry.counter("repro_ok_total", "").inc()
        document = registry.as_dict()
        assert document["repro_ok_total"]["value"] == 1
        assert document[COLLECTOR_ERRORS_METRIC]["value"] == 1

    def test_validate_flags_histogram_suffix_collision(self):
        registry = MetricRegistry()
        registry.histogram("repro_x_seconds", "", (1.0,))
        registry.gauge("repro_x_seconds_bucket", "")
        problems = registry.validate()
        assert any("collides" in p for p in problems)
        with pytest.raises(MetricError):
            registry.validate(strict=True)

    def test_validate_clean_registry(self):
        registry = MetricRegistry()
        registry.counter("repro_a_total", "").inc()
        registry.histogram("repro_b_seconds", "", (0.1, 1.0)).observe(0.5)
        assert registry.validate(strict=True) == []


class TestSnapshots:
    def _populated(self):
        registry = MetricRegistry()
        registry.counter("repro_c_total", "count help").inc(7)
        registry.gauge("repro_g", "gauge help").set(-2.5)
        histogram = registry.histogram(
            "repro_h_seconds", "hist help", (0.001, 0.1, 1.0)
        )
        for value in (0.0005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        return registry

    def test_round_trip_identity(self):
        document = self._populated().as_dict()
        assert registry_from_snapshot(document).as_dict() == document

    def test_round_trip_survives_json_key_sorting(self):
        # json.dump(sort_keys=True) orders histogram bucket keys
        # lexically ("0.001" < "1e-05" is false numerically); the
        # loader must re-sort numerically.
        registry = MetricRegistry()
        registry.histogram(
            "repro_p_seconds", "", PHASE_BUCKETS
        ).observe(0.0001)
        document = json.loads(
            json.dumps(registry.as_dict(), sort_keys=True)
        )
        loaded = registry_from_snapshot(document)
        assert loaded.as_dict() == document
        validate_prometheus_text(loaded.to_prometheus())

    def test_diff_snapshots(self):
        registry = self._populated()
        before = registry.as_dict()
        registry.counter("repro_c_total").inc(3)
        registry.histogram("repro_h_seconds").observe(0.2)
        registry.counter("repro_new_total", "").inc()
        after = registry.as_dict()
        delta = diff_snapshots(before, after)
        assert delta["repro_c_total"]["delta"] == 3
        assert delta["repro_c_total"]["change"] == "changed"
        assert delta["repro_new_total"]["change"] == "added"
        assert delta["repro_h_seconds"]["after"]["count"] == 5
        assert "repro_g" not in delta  # unchanged
        assert diff_snapshots(after, after) == {}

    def test_diff_reports_removed(self):
        delta = diff_snapshots(
            {"repro_old": {"kind": "gauge", "value": 1}}, {}
        )
        assert delta["repro_old"]["change"] == "removed"


class TestResourceSampler:
    def test_snapshot_shape(self):
        snap = ResourceSampler().snapshot()
        for key in (
            "rss_max_bytes", "cpu_user_seconds", "cpu_system_seconds",
            "uptime_seconds", "gc_collections", "gc_objects",
        ):
            assert key in snap
        assert snap["rss_max_bytes"] > 0
        assert snap["cpu_user_seconds"] >= 0

    def test_uptime_uses_injected_clock(self):
        ticks = iter((100.0, 107.5))
        sampler = ResourceSampler(clock=lambda: next(ticks))
        assert sampler.snapshot()["uptime_seconds"] == 7.5

    def test_export_mirrors_gauges_and_sample_counter(self):
        registry = MetricRegistry()
        sampler = ResourceSampler()
        sampler.export(registry)
        sampler.export(registry)
        document = registry.as_dict()
        assert document["repro_process_rss_max_bytes"]["value"] > 0
        assert document["repro_process_samples_total"]["value"] == 2
        validate_prometheus_text(registry.to_prometheus())


class TestPhaseProfiler:
    def test_charge_and_totals(self):
        profiler = PhaseProfiler()
        profiler.charge("evaluate", 0.002)
        profiler.charge("evaluate", 0.3)
        profiler.charge("binding", 0.00005)
        assert profiler.totals() == {
            "binding": {"calls": 1, "seconds": 0.00005},
            "evaluate": {"calls": 2, "seconds": pytest.approx(0.302)},
        }

    def test_timed_charges_even_on_raise(self):
        profiler = PhaseProfiler(clock=iter((0.0, 1.5)).__next__)
        with pytest.raises(ValueError):
            profiler.timed("boom", lambda: (_ for _ in ()).throw(
                ValueError("x")
            ))
        assert profiler.totals()["boom"]["seconds"] == 1.5

    def test_export_histograms(self):
        profiler = PhaseProfiler()
        profiler.charge("evaluate", 0.002)
        profiler.charge("evaluate", 0.3)
        profiler.charge("evaluate", 120.0)  # beyond the last bound
        registry = MetricRegistry()
        profiler.export(registry)
        entry = registry.as_dict()["repro_phase_evaluate_seconds"]
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(120.302)
        validate_prometheus_text(registry.to_prometheus())

    def test_phase_names_sanitised(self):
        profiler = PhaseProfiler()
        profiler.charge("weird phase/name", 0.1)
        registry = MetricRegistry()
        profiler.export(registry)
        assert "repro_phase_weird_phase_name_seconds" in registry.as_dict()

    def test_profiler_satisfies_telemetry_seam(self):
        profiler = PhaseProfiler()
        assert profiler.profiler is profiler
        assert Telemetry().profiler.profiler is not None


class TestStoreBridge:
    def test_export_after_warm_runs(self, tmp_path):
        spec = build_settop_spec()
        store_dir = str(tmp_path / "store")
        explore(spec, warm_store=store_dir)
        explore(spec, warm_store=store_dir)
        store = open_store(store_dir)
        registry = MetricRegistry()
        export_store_metrics(store, registry)
        document = registry.as_dict()
        # In-process reruns are absorbed by the evaluator's verdict
        # memo, so the store's lifetime signal here is misses+writes.
        assert document["repro_store_misses_total"]["value"] > 0
        assert document["repro_store_writes_total"]["value"] > 0
        assert document["repro_store_bytes"]["value"] > 0
        assert document["repro_store_evicted_total"]["value"] == 0
        validate_prometheus_text(registry.to_prometheus())

    def test_evicted_counter_reaches_export(self, tmp_path):
        spec = build_settop_spec()
        store_dir = str(tmp_path / "store")
        explore(spec, warm_store=store_dir)
        store = open_store(store_dir)
        report = store.gc(max_bytes=0)
        assert report["evicted"]
        registry = MetricRegistry()
        export_store_metrics(store, registry)
        assert registry.as_dict()["repro_store_evicted_total"][
            "value"
        ] == len(report["evicted"])

    def test_collector_refreshes_on_every_export(self, tmp_path):
        spec = build_settop_spec()
        store_dir = str(tmp_path / "store")
        explore(spec, warm_store=store_dir)
        store = open_store(store_dir)
        registry = MetricRegistry()
        registry.register_collector(store_collector(store))
        first = registry.as_dict()["repro_store_misses_total"]["value"]
        store.binding("ffffffff").get("no-such-key")
        second = registry.as_dict()["repro_store_misses_total"]["value"]
        assert second == first + 1


class TestFleetTelemetry:
    def test_beats_and_outcomes_aggregate(self):
        fleet = FleetTelemetry()
        fleet.record_beat(0, {
            "job": "s0", "cursor": 10, "evaluations": 4,
            "resources": {"rss_max_bytes": 1000,
                          "cpu_user_seconds": 1.0,
                          "cpu_system_seconds": 0.5},
        })
        fleet.record_beat(0, {"job": "s0", "cursor": 20, "evaluations": 9})
        # An old worker's beat: no resources key at all.
        fleet.record_beat(1, {"job": "s1", "cursor": 5, "evaluations": 2})
        fleet.record_outcome({
            "shard": 0, "worker": "127.0.0.1:7000", "completed": True,
            "attempts": 1, "heartbeats": 2, "hangs": 0, "failures": 0,
            "elapsed_seconds": 0.2, "cursor": 32,
            "resources": {"rss_max_bytes": 2000,
                          "cpu_user_seconds": 2.0,
                          "cpu_system_seconds": 0.5},
        })
        view = fleet.as_dict()
        assert view["fleet"]["shards"] == 2
        assert view["fleet"]["shards_completed"] == 1
        assert view["fleet"]["heartbeats"] == 3
        assert view["fleet"]["evaluations"] == 11
        assert view["fleet"]["rss_max_bytes"] == 2000
        assert view["fleet"]["workers"] == 1
        assert view["shards"]["0"]["cursor"] == 32

    def test_export_grammar(self):
        fleet = FleetTelemetry()
        fleet.record_beat(0, {
            "cursor": 1, "evaluations": 1,
            "resources": {"rss_max_bytes": 7, "cpu_user_seconds": 0.1},
        })
        fleet.record_outcome({"shard": 0, "completed": True,
                              "attempts": 1, "elapsed_seconds": 0.1})
        document = fleet.registry.as_dict()
        assert document["repro_shard_000_heartbeats_total"]["value"] == 1
        assert document["repro_fleet_shards_completed"]["value"] == 1
        assert fleet.registry.validate(strict=True) == []
        validate_prometheus_text(fleet.registry.to_prometheus())


def _service_run(directory, specs=None):
    service = ExplorationService(str(directory), slice_evaluations=200)
    try:
        for spec in specs or (build_settop_spec(),):
            service.submit(spec)
        service.run()
    finally:
        service.close()
    return service


class TestTop:
    def test_snapshot_and_render(self, tmp_path):
        _service_run(tmp_path)
        snapshot = top_snapshot(str(tmp_path))
        assert snapshot["states"] == {"completed": 1}
        (row,) = snapshot["jobs"]
        assert row["state"] == "completed"
        assert row["evaluations"] > 0
        assert snapshot["metrics"]["repro_slices_total"] >= 1
        screen = format_top(snapshot)
        assert "JOB" in screen and row["job"] in screen
        assert "completed" in screen

    def test_empty_directory_is_tolerated(self, tmp_path):
        snapshot = top_snapshot(str(tmp_path))
        assert snapshot["jobs"] == []
        assert "(no jobs)" in format_top(snapshot)

    def test_run_top_iterations_and_json(self, tmp_path):
        _service_run(tmp_path)
        out = io.StringIO()
        naps = []
        shown = run_top(
            str(tmp_path), out, refresh=0.5, iterations=3,
            sleep=naps.append,
        )
        assert shown == 3
        assert naps == [0.5, 0.5]
        out = io.StringIO()
        run_top(str(tmp_path), out, iterations=1, as_json=True)
        snapshot = json.loads(out.getvalue())
        assert snapshot["states"] == {"completed": 1}


class TestServiceUnifiedRegistry:
    def test_merged_namespace_is_collision_free(self, tmp_path):
        """Satellite (a): service + breaker + store + process + phase
        metrics merge into one registry that survives strict grammar
        and collision validation, and the exposition parses."""
        service = _service_run(tmp_path)
        document = service.metrics.as_dict()
        # All three historic surfaces plus the new ones, one namespace:
        assert "repro_jobs_completed_total" in document
        assert "repro_phase_binding_seconds" in document
        assert "repro_warm_hits_total" in document
        assert "repro_store_hits_total" in document
        assert "repro_process_rss_max_bytes" in document
        assert service.metrics.validate(strict=True) == []
        series, typed = validate_prometheus_text(
            service.metrics.to_prometheus()
        )
        assert "repro_store_hits_total" in typed

    def test_metrics_json_snapshot_loadable(self, tmp_path):
        _service_run(tmp_path)
        with open(job_io.metrics_json_path(str(tmp_path))) as handle:
            document = json.load(handle)
        loaded = registry_from_snapshot(document)
        assert loaded.as_dict() == document


class TestCli:
    def _svc(self, tmp_path):
        directory = tmp_path / "svc"
        _service_run(directory)
        return str(directory)

    def test_cache_stats_prometheus(self, tmp_path):
        spec = build_settop_spec()
        store_dir = str(tmp_path / "store")
        explore(spec, warm_store=store_dir)
        out = io.StringIO()
        assert cli_main(
            ["cache", "stats", store_dir, "--format", "prometheus"],
            out=out,
        ) == 0
        series, typed = validate_prometheus_text(out.getvalue())
        assert typed["repro_store_misses_total"] == "counter"
        assert typed["repro_store_bytes"] == "gauge"
        # --json keeps working unchanged.
        out = io.StringIO()
        assert cli_main(
            ["cache", "stats", store_dir, "--json"], out=out
        ) == 0
        assert "entries" in json.loads(out.getvalue())

    def test_telemetry_dump_and_diff(self, tmp_path):
        directory = self._svc(tmp_path)
        out = io.StringIO()
        assert cli_main(["telemetry", "dump", directory], out=out) == 0
        dumped = json.loads(out.getvalue())
        with open(job_io.metrics_json_path(directory)) as handle:
            assert dumped == json.load(handle)
        out = io.StringIO()
        assert cli_main(
            ["telemetry", "dump", directory, "--format", "prometheus"],
            out=out,
        ) == 0
        validate_prometheus_text(out.getvalue())
        out = io.StringIO()
        assert cli_main(
            ["telemetry", "diff", directory, directory], out=out
        ) == 0
        assert json.loads(out.getvalue()) == {}

    def test_telemetry_arity_and_missing_path(self, tmp_path):
        directory = self._svc(tmp_path)
        assert cli_main(
            ["telemetry", "diff", directory], out=io.StringIO()
        ) == 1
        assert cli_main(
            ["telemetry", "dump", str(tmp_path / "nope")],
            out=io.StringIO(),
        ) == 1

    def test_top_once(self, tmp_path):
        directory = self._svc(tmp_path)
        out = io.StringIO()
        assert cli_main(["top", directory, "--once"], out=out) == 0
        assert "repro top" in out.getvalue()
        assert "completed" in out.getvalue()
        out = io.StringIO()
        assert cli_main(
            ["top", directory, "--once", "--json"], out=out
        ) == 0
        assert json.loads(out.getvalue())["states"] == {"completed": 1}
        assert cli_main(
            ["top", str(tmp_path / "nope")], out=io.StringIO()
        ) == 1
