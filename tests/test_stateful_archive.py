"""Stateful property test of the Pareto archive.

A hypothesis rule-based machine feeds arbitrary point sequences into a
:class:`~repro.core.ParetoArchive` and checks after every step that the
archive equals the batch-computed front of everything seen so far, that
it stays sorted, and that its members are mutually non-dominated.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import ParetoArchive, dominates, pareto_front

point_strategy = st.tuples(
    st.integers(min_value=0, max_value=30).map(float),
    st.integers(min_value=0, max_value=12).map(float),
)


class ArchiveMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.archive = ParetoArchive(keep_ties=False)
        self.seen = []

    @rule(point=point_strategy)
    def add_point(self, point):
        cost, flexibility = point
        accepted = self.archive.try_add(cost, flexibility, payload=point)
        self.seen.append(point)
        if accepted:
            assert point in self.archive.points
        else:
            # rejected points are dominated by (or equal to) a member
            assert any(
                member == point or dominates(member, point)
                for member in self.archive.points
            )

    @invariant()
    def archive_equals_batch_front(self):
        if not hasattr(self, "archive"):
            return
        assert self.archive.points == pareto_front(
            self.seen, keep_ties=False
        )

    @invariant()
    def members_mutually_non_dominated(self):
        if not hasattr(self, "archive"):
            return
        for a in self.archive.points:
            for b in self.archive.points:
                assert not dominates(a, b)

    @invariant()
    def sorted_by_cost(self):
        if not hasattr(self, "archive"):
            return
        costs = [c for c, _ in self.archive.points]
        assert costs == sorted(costs)

    @invariant()
    def payloads_track_points(self):
        if not hasattr(self, "archive"):
            return
        assert len(self.archive.payloads) == len(self.archive.points)
        for point, payload in zip(
            self.archive.points, self.archive.payloads
        ):
            assert payload == point


ArchiveMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestParetoArchiveStateful = ArchiveMachine.TestCase
