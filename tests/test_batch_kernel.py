"""The block-vectorized kernel IS the scalar kernel IS the reference.

:mod:`repro.compiled.batch` re-expresses enumeration and the cheap
candidate checks as uint64 bit-plane operations over blocks of
thousands of candidates.  Its contract is the same as the compiled
engine's: byte-identical results, enumeration order, progress events
and logical traces.  These tests prove it at three levels:

* the band-cursor API of :class:`MaskAllocationEnumerator`
  (``peek_cost``/``next_band``) partitions the heap stream exactly,
  including equal-cost bands (the set-top catalog has bands of
  thousands of tied masks);
* the materialized closed-form order and every vectorized check
  (usable / possible / comm-pruned / estimate) match the scalar
  kernel element-for-element over random specs (hypothesis-driven)
  and the corpus seeds;
* ``explore()`` results, event streams and trace fingerprints are
  identical with the block kernel on, forced off
  (``REPRO_VECTORIZE=0``), with numpy absent (import-path fallback),
  and on the band-streaming source
  (``REPRO_MATERIALIZE_MAX_BITS=0``) — serially and batched.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .randspec import random_spec
from .test_parallel_explore import SEEDS, fingerprint
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.compiled import MaskAllocationEnumerator, compiled_spec_for
from repro.compiled import batch
from repro.core import explore
from repro.trace import Tracer, trace_fingerprint

requires_numpy = pytest.mark.skipif(
    batch._np is None, reason="numpy not installed"
)


def _enumerator(spec, include_empty=True):
    cspec = compiled_spec_for(spec)
    return cspec, MaskAllocationEnumerator(
        cspec, list(spec.units.names()), include_empty=include_empty
    )


# ---------------------------------------------------------------------------
# Band-cursor API (pure stdlib — runs with or without numpy)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("include_empty", [False, True])
def test_bands_partition_the_heap_stream(include_empty):
    """Concatenated bands reproduce ``iter_masks`` order exactly, and
    every band is a maximal equal-cost run announced by peek_cost."""
    spec = build_settop_spec()
    _, enum = _enumerator(spec, include_empty)
    reference = list(
        MaskAllocationEnumerator(
            compiled_spec_for(spec),
            list(spec.units.names()),
            include_empty=include_empty,
        ).iter_masks()
    )
    replayed = []
    previous = None
    while True:
        peek = enum.peek_cost()
        try:
            cost, masks = enum.next_band()
        except StopIteration:
            assert peek is None
            break
        assert peek == cost
        assert masks, "bands are never empty"
        if previous is not None:
            assert cost > previous, "band costs strictly increase"
        previous = cost
        replayed.extend((cost, mask) for mask in masks)
    assert replayed == reference


def test_band_tie_corners_on_settop():
    """The set-top catalog has thousands of equal-cost candidates; the
    band cursor must group each tie run into one band, in pop order."""
    spec = build_settop_spec()
    _, enum = _enumerator(spec)
    sizes = []
    while True:
        try:
            _, masks = enum.next_band()
        except StopIteration:
            break
        sizes.append(len(masks))
    assert max(sizes) > 1000, "expected large tied bands on settop"
    assert sizes[0] == 1, "the empty allocation is its own zero band"


def test_band_cursor_is_lazy_and_restartable():
    """peek_cost before any pull answers the first cost without
    consuming it; a fresh enumerator starts over."""
    spec = build_tv_decoder_spec()
    _, enum = _enumerator(spec, include_empty=False)
    first_cost = enum.peek_cost()
    cost, _ = enum.next_band()
    assert cost == first_cost
    _, again = _enumerator(spec, include_empty=False)
    assert again.next_band()[0] == first_cost


# ---------------------------------------------------------------------------
# Vectorized checks vs the scalar kernel (numpy only)
# ---------------------------------------------------------------------------


def _assert_kernel_matches_scalar(spec):
    np = batch._np
    cspec = compiled_spec_for(spec)
    kernel = batch.kernel_for(cspec)
    n = cspec.unit_count
    assert n <= 16, "exhaustive check needs a small spec"
    masks = np.arange(1 << n, dtype=np.uint64)
    usable = kernel.usable(masks)
    possible = kernel.possible(masks)
    comm = kernel.comm_pruned(usable)
    estimates = kernel.estimates(masks, False)
    for i in range(1 << n):
        assert int(usable[i]) == cspec.usable_mask(i)
        assert bool(possible[i]) == cspec.possible(i)
        assert bool(comm[i]) == cspec.comm_pruned(i)
        assert float(estimates[i]) == cspec.estimate(i, False)


@requires_numpy
def test_block_checks_match_scalar_corpus():
    for seed in SEEDS[::5]:
        _assert_kernel_matches_scalar(random_spec(seed))


@requires_numpy
@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_block_checks_match_scalar_property(seed):
    """Block-vectorized check results == scalar kernel, exhaustively
    over every allocation mask of an arbitrary random spec."""
    _assert_kernel_matches_scalar(random_spec(seed))


@requires_numpy
def test_materialized_order_matches_heap_order():
    """The closed-form DP order equals the heap stream — costs, masks
    and tie-breaking — on tied (settop) and corpus specs."""
    np = batch._np
    specs = [build_settop_spec(), build_tv_decoder_spec()]
    specs += [random_spec(seed) for seed in SEEDS[::7]]
    for spec in specs:
        for include_empty in (False, True):
            _, enum = _enumerator(spec, include_empty)
            if len(enum._costs) > 12:
                continue
            costs, index_masks = batch.materialized_order(
                enum._costs, include_empty
            )
            spec_masks = []
            for imask in index_masks.tolist():
                mask = 0
                for j, bit in enumerate(enum._bits):
                    if imask >> j & 1:
                        mask |= bit
                spec_masks.append(mask)
            observed = list(zip(costs.tolist(), spec_masks))
            assert observed == list(enum.iter_masks())


@requires_numpy
def test_popcount64_fallback_matches():
    """The SWAR fallback equals numpy's bitwise_count when present."""
    np = batch._np
    values = np.array(
        [0, 1, 2**64 - 1, 0x5555555555555555, 0x0123456789ABCDEF],
        dtype=np.uint64,
    )
    observed = batch.popcount64(values)
    assert observed.tolist() == [bin(int(v)).count("1") for v in values]


# ---------------------------------------------------------------------------
# End-to-end fallback seams
# ---------------------------------------------------------------------------


def test_explore_with_numpy_absent(monkeypatch):
    """With numpy unimportable the engine silently runs the scalar
    kernel and produces the identical result document."""
    monkeypatch.setattr(batch, "_np", None)
    assert batch.active_numpy() is None
    assert batch.numpy_version() is None
    spec = build_settop_spec()
    observed = fingerprint(explore(spec, engine="compiled"))
    assert observed == fingerprint(explore(spec, engine="reference"))


def test_explore_with_vectorize_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_VECTORIZE", "0")
    assert batch.active_numpy() is None
    spec = build_tv_decoder_spec()
    observed = fingerprint(explore(spec, engine="compiled"))
    assert observed == fingerprint(explore(spec, engine="reference"))


def test_block_context_gate_without_numpy(monkeypatch):
    from repro.compiled import compiled_evaluator

    monkeypatch.setattr(batch, "_np", None)
    evaluator = compiled_evaluator(build_settop_spec())
    context = evaluator.block_context([], False, frozenset(), 0.0)
    assert context is None
    assert evaluator.block_outcomes([], None, 0.0) is None


@requires_numpy
def test_band_streaming_source_matches(monkeypatch):
    """Forcing the band-streaming block source (materialization
    threshold 0) changes nothing observable."""
    monkeypatch.setenv("REPRO_MATERIALIZE_MAX_BITS", "0")
    spec = build_settop_spec()
    observed = fingerprint(explore(spec, engine="compiled"))
    assert observed == fingerprint(explore(spec, engine="reference"))


@requires_numpy
@pytest.mark.parametrize("parallel", [None, "thread"])
def test_vectorized_vs_scalar_full_contract(monkeypatch, parallel):
    """Result document, progress events and audit-trace fingerprints
    are identical with the block kernel on and off — serial and
    batched."""
    spec = build_settop_spec()
    contracts = {}
    for mode in ("1", "0"):
        monkeypatch.setenv("REPRO_VECTORIZE", mode)
        events = []
        kw = dict(parallel=parallel, batch_size=16) if parallel else {}
        result = explore(
            spec, engine="compiled", progress=events.append,
            progress_every=25, **kw
        )
        tracer = Tracer(level="audit")
        explore(spec, engine="compiled", tracer=tracer, **kw)
        contracts[mode] = (
            fingerprint(result),
            events,
            trace_fingerprint(tracer.all_records()),
        )
    assert contracts["1"] == contracts["0"]


@requires_numpy
def test_vectorized_corpus_differential(monkeypatch):
    """Vectorized == scalar over the random corpus end to end (the
    small-spec floor is lifted so the block path actually runs)."""
    monkeypatch.setenv("REPRO_VECTORIZE_MIN_BITS", "0")
    for seed in SEEDS[::5]:
        spec = random_spec(seed)
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        vectorized = fingerprint(explore(spec, engine="compiled"))
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        scalar = fingerprint(explore(spec, engine="compiled"))
        assert vectorized == scalar, f"seed {seed} diverged"


@requires_numpy
def test_small_spec_floor_falls_back_scalar(monkeypatch):
    """Below REPRO_VECTORIZE_MIN_BITS the gate declines (array setup
    costs more than a sub-millisecond scalar search saves)."""
    from repro.compiled import compiled_evaluator

    spec = build_tv_decoder_spec()
    evaluator = compiled_evaluator(spec)
    names = list(spec.units.names())
    monkeypatch.setenv("REPRO_VECTORIZE_MIN_BITS", str(len(names) + 1))
    assert evaluator.block_context(names, True, frozenset(), 0.0) is None
    monkeypatch.setenv("REPRO_VECTORIZE_MIN_BITS", "0")
    assert evaluator.block_context(names, True, frozenset(), 0.0) is not None
