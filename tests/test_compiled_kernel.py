"""Differential tests: the compiled engine IS the reference engine.

The compiled candidate-evaluation kernel (:mod:`repro.compiled`) is an
aggressive performance rewrite — bitmask allocations, BDD-compiled
possible-allocation tests, precomputed binding tables, cross-candidate
memoization keyed by relevance projections.  Its contract is exactness:
``explore(engine="compiled")`` must return the same Pareto front, the
same statistics, the same progress-event stream and the same logical
trace as ``engine="reference"`` on every input.  These tests prove it
differentially over the seeded random-spec corpus, both case studies,
the full explore() option matrix, and the golden paper fixtures.
"""

import json
import os

import pytest

from .randspec import random_spec
from .test_parallel_explore import SEEDS, fingerprint
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.compiled import MaskAllocationEnumerator, compiled_spec_for
from repro.core import DEFAULT_ENGINE, ENGINES, explore
from repro.core.candidates import AllocationEnumerator
from repro.errors import ExplorationError
from repro.trace import Tracer, trace_fingerprint

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(scope="module")
def reference_runs():
    """Reference-engine runs, one per corpus seed (computed once)."""
    return {
        seed: explore(random_spec(seed), engine="reference")
        for seed in SEEDS
    }


def test_engine_constants():
    assert DEFAULT_ENGINE == "compiled"
    assert set(ENGINES) == {"compiled", "reference"}


def test_unknown_engine_rejected():
    spec = build_tv_decoder_spec()
    with pytest.raises(ExplorationError, match="unknown engine"):
        explore(spec, engine="turbo")


def test_differential_random_corpus(reference_runs):
    """Fronts, flexibility values and stats equal on ~30 random specs."""
    for seed in SEEDS:
        spec = random_spec(seed)
        observed = fingerprint(explore(spec, engine="compiled"))
        assert observed == fingerprint(reference_runs[seed]), (
            f"seed {seed} diverged between engines"
        )


@pytest.mark.parametrize(
    "options",
    [
        dict(keep_ties=True),
        dict(timing_mode="none"),
        dict(timing_mode="schedule"),
        dict(weighted=True),
        dict(use_estimation=False, max_candidates=300),
        dict(use_possible_filter=False, max_candidates=400),
        dict(prune_comm=False, max_candidates=400),
        dict(max_cost=300.0),
        dict(require_units=["muP2"], forbid_units=["A1"]),
        dict(backend="sat", max_candidates=150),
    ],
    ids=lambda d: "-".join(f"{k}" for k in d),
)
def test_differential_settop_options(options):
    """Every explore() option combination survives compilation."""
    spec = build_settop_spec()
    reference = fingerprint(explore(spec, engine="reference", **options))
    observed = fingerprint(explore(spec, engine="compiled", **options))
    assert observed == reference


@pytest.mark.parametrize("engine", ["compiled", "reference"])
def test_settop_front_is_the_paper_front(engine):
    expected = [
        (100.0, 2.0),
        (120.0, 3.0),
        (230.0, 4.0),
        (290.0, 5.0),
        (360.0, 7.0),
        (430.0, 8.0),
    ]
    assert explore(build_settop_spec(), engine=engine).front() == expected


def test_differential_golden_settop_front():
    """Both engines reproduce the golden settop fixture — points,
    clusters and every statistic."""
    with open(os.path.join(GOLDEN, "settop_front.json")) as handle:
        golden = json.load(handle)
    for engine in ENGINES:
        result = explore(build_settop_spec(), engine=engine)
        observed = [
            {
                "clusters": sorted(p.clusters),
                "cost": p.cost,
                "flexibility": p.flexibility,
                "units": sorted(p.units),
            }
            for p in result.points
        ]
        assert observed == golden["points"], engine
        assert result.max_flexibility_bound == golden[
            "max_flexibility_bound"
        ]
        stats = result.stats.as_dict()
        for key, value in golden["stats"].items():
            if key in stats:
                assert stats[key] == value, (engine, key)


def test_differential_tv_decoder():
    spec = build_tv_decoder_spec()
    assert fingerprint(explore(spec, engine="compiled")) == fingerprint(
        explore(spec, engine="reference")
    )


def test_progress_event_streams_identical():
    """The structured event stream is engine-independent, byte for byte."""
    spec = build_settop_spec()
    streams = {}
    for engine in ENGINES:
        events = []
        explore(spec, engine=engine, progress=events.append,
                progress_every=25, keep_ties=True)
        streams[engine] = events
    assert streams["compiled"] == streams["reference"]


@pytest.mark.parametrize("level", ["spans", "audit"])
def test_trace_fingerprints_identical(level):
    """The logical trace — every evaluate/prune/incumbent/stop record —
    is engine-independent (wall-clock channels excluded by design)."""
    fingerprints = {}
    for engine in ENGINES:
        tracer = Tracer(level=level)
        explore(build_settop_spec(), engine=engine, tracer=tracer)
        fingerprints[engine] = trace_fingerprint(tracer.all_records())
    assert fingerprints["compiled"] == fingerprints["reference"]


def test_trace_fingerprints_identical_random(reference_runs):
    for seed in SEEDS[::7]:
        fingerprints = {}
        for engine in ENGINES:
            tracer = Tracer(level="audit")
            explore(random_spec(seed), engine=engine, tracer=tracer)
            fingerprints[engine] = trace_fingerprint(tracer.all_records())
        assert fingerprints["compiled"] == fingerprints["reference"], (
            f"seed {seed} logical traces diverged"
        )


def test_mask_enumerator_matches_reference_order():
    """Cost order *and* tie order of the mask enumerator are identical."""
    spec = build_settop_spec()
    names = list(spec.units.names())
    reference = list(AllocationEnumerator(spec, names, include_empty=True))
    compiled = list(
        MaskAllocationEnumerator(
            compiled_spec_for(spec), names, include_empty=True
        )
    )
    assert compiled == reference


def test_mask_enumerator_masks_match_sets():
    spec = build_tv_decoder_spec()
    cspec = compiled_spec_for(spec)
    enumerator = MaskAllocationEnumerator(cspec, list(spec.units.names()))
    for (cost, mask), (cost2, units) in zip(
        enumerator.iter_masks(), enumerator
    ):
        assert cost == cost2
        assert cspec.names_of(mask) == units


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_batched_compiled_matches_serial_reference(mode):
    """Engine seam composes with the parallel batched replay."""
    spec = build_settop_spec()
    reference = fingerprint(explore(spec, engine="reference"))
    observed = fingerprint(
        explore(spec, engine="compiled", parallel=mode, batch_size=6)
    )
    assert observed == reference


def test_engine_survives_checkpoint_resume(tmp_path):
    """A checkpointed compiled run resumes to the reference result."""
    from repro.resilience import resume_explore

    spec = build_settop_spec()
    path = str(tmp_path / "run.ckpt")
    truncated = explore(
        spec, engine="compiled", checkpoint=path, checkpoint_every=8,
        max_evaluations=3,
    )
    assert not truncated.completed
    resumed = resume_explore(path, max_evaluations=None)
    reference = explore(spec, engine="reference")

    def comparable(result):
        points, stats, bound = fingerprint(result)
        del stats["checkpoints_written"]
        return points, stats, bound

    assert comparable(resumed) == comparable(reference)
