"""Coverage tests for less-travelled paths across the library."""

import pytest

from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.report import format_table


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


class TestFormatTableVariants:
    def test_all_right_aligned(self):
        text = format_table(
            ["a", "b"], [["1", "2"]], align_left_first=False
        )
        assert text.splitlines()[2].endswith("2")

    def test_wide_cells_stretch_columns(self):
        text = format_table(["h"], [["a-very-wide-cell"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("a-very-wide-cell")


class TestSpecAttrsRoundtrip:
    def test_spec_level_attrs_preserved(self, settop):
        from repro.io import dumps_spec, loads_spec
        from repro.spec import SpecificationGraph

        spec = SpecificationGraph(
            build_tv_decoder_spec().problem,
            build_tv_decoder_spec().architecture,
            name="Attrd",
            attrs={"owner": "team-x"},
        )
        spec.map("P_A", "muP", 1.0)
        spec.freeze()
        restored = loads_spec(dumps_spec(spec))
        assert restored.attrs["owner"] == "team-x"
        assert restored.name == "Attrd"


class TestSolverLimits:
    def test_iter_solutions_limit(self, settop):
        from repro.activation import flatten
        from repro.binding import Allocation, BindingSolver

        flat = flatten(
            settop.problem,
            {"I_App": "gamma_D", "I_D": "gamma_D1", "I_U": "gamma_U1"},
        )
        solver = BindingSolver(
            settop, Allocation(settop, set(settop.units.names()))
        )
        two = list(solver.iter_solutions(flat, limit=2))
        assert len(two) == 2
        everything = list(
            BindingSolver(
                settop, Allocation(settop, set(settop.units.names()))
            ).iter_solutions(flat)
        )
        assert len(everything) > 2
        assert two == everything[:2]


class TestBuilderSurface:
    def test_interface_ports_argument(self):
        from repro.hgraph import HierarchyBuilder

        build = HierarchyBuilder("G")
        iface = build.interface("I", ports=("x", "y"))
        iface.port("z", "out")
        iface.simple_cluster("g", "v")
        graph = build.done()
        assert set(graph.interfaces["I"].ports) == {"x", "y", "z"}

    def test_builder_edge_with_attrs(self):
        from repro.hgraph import HierarchyBuilder

        build = HierarchyBuilder("G")
        build.vertex("a").vertex("b").edge("a", "b", bandwidth=8)
        assert build.graph.edges[0].get("bandwidth") == 8


class TestModeChangeSurface:
    def test_effective_time(self, settop):
        from repro.adaptive import AdaptiveSimulator
        from repro.core import explore

        impl = next(
            p for p in explore(settop).points if p.cost == 290.0
        )
        simulator = AdaptiveSimulator(settop, impl)
        change = simulator.request(100.0, {"gamma_D3"})
        assert change.effective_time == 100.0 + change.reconfig_delay
        assert "accepted" in repr(change)

    def test_rejected_repr(self, settop):
        from repro.adaptive import AdaptiveSimulator
        from repro.core import evaluate_allocation

        cheap = evaluate_allocation(settop, {"muP2"})
        simulator = AdaptiveSimulator(settop, cheap)
        change = simulator.request(0.0, {"gamma_G"})
        assert "rejected" in repr(change)


class TestLatencyPatchEffect:
    def test_faster_game_changes_front(self, settop):
        """Making P_G1 fast on muP2 lets the $100 box keep the game."""
        from repro.analysis import with_latency
        from repro.core import explore

        variant = with_latency(
            settop, {("P_G1", "muP2"): 20.0, ("P_D", "muP2"): 40.0}
        )
        front = explore(variant).front()
        assert front[0] == (100.0, 3.0)


class TestWeightedNsga2:
    def test_weighted_objective(self, settop):
        from repro.core import nsga2_explore

        result = nsga2_explore(
            settop,
            population_size=24,
            generations=10,
            seed=2,
            weighted=True,
        )
        assert result.front  # runs and reports feasible points


class TestCatalogRepr:
    def test_reprs(self, settop):
        assert "units" in repr(settop.units)
        assert "ResourceUnit" in repr(settop.units.unit("muP2"))
        assert "SetTop_spec" in repr(settop)
        assert "MappingTable" in repr(settop.mappings)
