"""Tests of incremental (upgrade) exploration."""

import pytest

from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import (
    dominates,
    explore,
    explore_upgrades,
    upgrade_preserves_base,
)
from repro.errors import ExplorationError


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


class TestExploreUpgrades:
    def test_upgrades_from_muP2(self, settop):
        """Upgrading the $100 box: richer points, all containing muP2."""
        result = explore_upgrades(settop, {"muP2"})
        assert result.base.point == (100.0, 2.0)
        assert result.points[0] is result.base
        assert result.best().flexibility == 8.0
        for point in result.points:
            assert "muP2" in point.units

    def test_upgrade_front_shape(self, settop):
        result = explore_upgrades(settop, {"muP2"})
        front = result.front()
        costs = [c for c, _ in front]
        flexes = [f for _, f in front]
        assert costs == sorted(costs)
        assert flexes == sorted(flexes)
        for a in front:
            for b in front:
                assert not dominates(a, b)

    def test_upgrade_costs_relative_to_base(self, settop):
        result = explore_upgrades(settop, {"muP2"})
        extras = result.upgrade_costs()
        assert extras[0] == 0.0
        assert all(e >= 0 for e in extras)

    def test_muP2_upgrades_match_global_points(self, settop):
        """Every muP2-containing point of the global front reappears."""
        global_front = explore(settop)
        result = explore_upgrades(settop, {"muP2"})
        upgrade_points = set(result.front())
        for impl in global_front.points:
            if "muP2" in impl.units and impl.cost >= 100.0:
                assert impl.point in upgrade_points

    def test_muP1_base_excludes_cheaper_rival(self, settop):
        """From a muP1 base the $230 muP2 variants are unreachable; the
        upgrade front is built over muP1 supersets only."""
        result = explore_upgrades(settop, {"muP1"})
        assert result.base.point == (120.0, 3.0)
        for point in result.points:
            assert "muP1" in point.units
        assert result.best().flexibility >= 7.0

    def test_infeasible_base_rejected(self, settop):
        with pytest.raises(ExplorationError):
            explore_upgrades(settop, {"A1"})

    def test_max_extra_cost(self, settop):
        result = explore_upgrades(settop, {"muP2"}, max_extra_cost=130.0)
        assert all(c <= 130.0 for c in result.upgrade_costs())
        assert result.best().flexibility == 4.0  # muP2+D3+G1+C1

    def test_stats_counters(self, settop):
        result = explore_upgrades(settop, {"muP2"})
        stats = result.stats
        assert stats.design_space_size == 2 ** (len(settop.units) - 1)
        assert stats.estimate_exceeded >= 1
        assert stats.feasible_implementations >= len(result.points) - 1


class TestNonInterference:
    def test_superset_preserves_base(self, settop):
        """The guarantee the paper contrasts against Pop et al."""
        result = explore_upgrades(settop, {"muP2"})
        base = result.base
        for upgrade in result.points[1:]:
            assert upgrade_preserves_base(
                settop, base, frozenset(upgrade.units)
            )

    def test_non_superset_rejected(self, settop):
        from repro.core import evaluate_allocation

        base = evaluate_allocation(settop, {"muP2"})
        assert not upgrade_preserves_base(
            settop, base, frozenset({"muP1"})
        )

    def test_every_base_ecs_still_bindable(self):
        spec = build_tv_decoder_spec()
        from repro.core import evaluate_allocation

        base = evaluate_allocation(spec, {"muP"})
        full = frozenset(spec.units.names())
        assert upgrade_preserves_base(spec, base, full)
