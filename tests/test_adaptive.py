"""Tests of the adaptive runtime simulator."""

import pytest

from repro.adaptive import AdaptiveSimulator, ModeRequest, simulate_requests
from repro.casestudies import FPGA_RECONFIG_DELAY, build_settop_spec
from repro.core import evaluate_allocation, explore
from repro.errors import ReproError


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def full_impl(settop):
    """The $430 maximal-flexibility implementation."""
    result = explore(settop)
    return result.points[-1]


@pytest.fixture(scope="module")
def cheap_impl(settop):
    """The $100 muP2 implementation (flexibility 2)."""
    return evaluate_allocation(settop, {"muP2"})


class TestRequests:
    def test_accept_all_apps_on_full_platform(self, settop, full_impl):
        sim = AdaptiveSimulator(settop, full_impl)
        assert sim.request(0.0, {"gamma_I"}).accepted
        assert sim.request(10.0, {"gamma_G"}).accepted
        assert sim.request(20.0, {"gamma_D"}).accepted
        assert len(sim.accepted()) == 3

    def test_specific_alternative_request(self, settop, full_impl):
        sim = AdaptiveSimulator(settop, full_impl)
        change = sim.request(0.0, {"gamma_D3"})
        assert change.accepted
        assert change.selection["I_D"] == "gamma_D3"
        assert change.binding["P_D3"] == "D3_res"

    def test_reject_unimplemented_cluster(self, settop, cheap_impl):
        sim = AdaptiveSimulator(settop, cheap_impl)
        change = sim.request(0.0, {"gamma_G"})
        assert not change.accepted
        assert "not implemented" in change.reason

    def test_reject_uncombinable_clusters(self, settop, full_impl):
        """gamma_D3 and gamma_U2 are both implemented but never share an
        elementary cluster-activation (one FPGA design at a time)."""
        result = explore(settop)
        impl_290 = next(p for p in result.points if p.cost == 290.0)
        sim = AdaptiveSimulator(settop, impl_290)
        change = sim.request(0.0, {"gamma_D3", "gamma_U2"})
        assert not change.accepted
        assert "simultaneously" in change.reason

    def test_non_increasing_time_raises(self, settop, full_impl):
        sim = AdaptiveSimulator(settop, full_impl)
        sim.request(0.0, {"gamma_I"})
        with pytest.raises(ReproError):
            sim.request(0.0, {"gamma_I"})

    def test_rejected_requests_do_not_advance_time(self, settop, cheap_impl):
        sim = AdaptiveSimulator(settop, cheap_impl)
        assert not sim.request(5.0, {"gamma_G"}).accepted
        assert sim.request(6.0, {"gamma_I"}).accepted


class TestReconfiguration:
    def test_fpga_load_tracked(self, settop, full_impl):
        sim = AdaptiveSimulator(settop, full_impl)
        change = sim.request(0.0, {"gamma_D3"})
        assert change.accepted
        assert change.reconfigured == ("D3",)
        assert change.reconfig_delay == FPGA_RECONFIG_DELAY
        assert change.effective_time == 0.0 + FPGA_RECONFIG_DELAY

    def test_no_reload_when_design_kept(self, settop, full_impl):
        sim = AdaptiveSimulator(settop, full_impl)
        first = sim.request(0.0, {"gamma_D3"})
        assert first.reconfigured == ("D3",)
        second = sim.request(5000.0, {"gamma_D3"})
        assert second.accepted
        assert second.reconfigured == ()
        assert second.reconfig_delay == 0.0

    def test_totals(self, settop, full_impl):
        sim = simulate_requests(
            settop,
            full_impl,
            [
                (0.0, {"gamma_I"}),
                (10.0, {"gamma_D3"}),
                (20.0, {"gamma_D3"}),
            ],
        )
        assert sim.reconfiguration_count() == 1
        assert sim.total_reconfig_delay() == FPGA_RECONFIG_DELAY

    def test_timeline_validated(self, settop, full_impl):
        sim = AdaptiveSimulator(settop, full_impl)
        sim.request(0.0, {"gamma_I"})
        sim.request(10.0, {"gamma_G"})
        events = sim.timeline.switch_events()
        assert len(events) == 1
        assert "I_App" in events[0].changed_interfaces

    def test_mode_request_repr(self):
        request = ModeRequest(1.0, {"a"})
        assert "a" in repr(request)
