"""The supervision plane: watchdogs, circuit breakers, admission.

Unit tests drive every state machine against a
:class:`~repro.service.clock.ManualClock` (deterministic, no sleeps);
the integration tests prove the wiring — a silent (hung-but-connected)
worker is classified ``hung`` and failed over by the coordinator, a
wedged service slice becomes a typed ``hung`` event, an overloaded
service rejects or sheds loudly — and that the legacy paths
(heartbeats disabled, unbounded queue, no slice timeout) are
untouched.  The chaos matrix proper lives in ``tests/test_chaos.py``.
"""

import socket
import threading
import time

import pytest

from .randspec import random_spec
from repro.casestudies import build_settop_spec
from repro.core import explore
from repro.distributed import explore_sharded
from repro.distributed.protocol import (
    MessageStream,
    connect,
    hello_payload,
)
from repro.errors import HangError, OverloadedError
from repro.resilience import RetryPolicy
from repro.service import ExplorationService, ManualClock, ServiceError
from repro.service.metrics import MetricsRegistry
from repro.supervision import (
    AdmissionController,
    BreakerRegistry,
    CircuitBreaker,
    Watchdog,
    run_bounded,
)
from repro.supervision.breaker import CLOSED, HALF_OPEN, OPEN
from .test_distributed_faults import start_worker


def fingerprint(result):
    points = [
        (sorted(p.units), p.cost, p.flexibility, sorted(p.clusters))
        for p in result.points
    ]
    return points, result.max_flexibility_bound, result.completed


class TestWatchdog:
    def test_beating_key_never_expires(self):
        clock = ManualClock()
        dog = Watchdog(timeout_seconds=10.0, clock=clock)
        dog.arm("w")
        for _ in range(20):
            clock.advance(9.0)
            dog.beat("w")
        assert not dog.expired("w")
        assert dog.check() == []
        assert dog.beats("w") == 20

    def test_silence_past_timeout_expires(self):
        clock = ManualClock()
        dog = Watchdog(timeout_seconds=10.0, clock=clock)
        dog.arm("w")
        clock.advance(10.0)
        assert not dog.expired("w")  # exactly at the bound: still alive
        clock.advance(0.5)
        assert dog.expired("w")
        assert dog.check() == ["w"]
        assert dog.silence("w") == pytest.approx(10.5)

    def test_disarm_stops_supervision(self):
        clock = ManualClock()
        dog = Watchdog(timeout_seconds=1.0, clock=clock)
        dog.arm("w")
        dog.disarm("w")
        clock.advance(100.0)
        assert not dog.expired("w")
        assert dog.silence("w") is None
        assert dog.check() == []

    def test_info_keeps_the_latest_beat_payload(self):
        dog = Watchdog(timeout_seconds=1.0, clock=ManualClock())
        dog.arm("w")
        dog.beat("w", cursor=10, evaluations=4)
        dog.beat("w", cursor=20)
        assert dog.info("w") == {"cursor": 20, "evaluations": 4}

    def test_multiple_keys_are_independent(self):
        clock = ManualClock()
        dog = Watchdog(timeout_seconds=5.0, clock=clock)
        dog.arm("a")
        dog.arm("b")
        clock.advance(6.0)
        dog.beat("b")
        assert dog.check() == ["a"]

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout_seconds"):
            Watchdog(timeout_seconds=0.0)


class TestRunBounded:
    def test_none_runs_inline(self):
        assert run_bounded(lambda: 42, None) == 42
        assert threading.active_count() == threading.active_count()

    def test_returns_the_value(self):
        assert run_bounded(lambda: {"x": 1}, 10.0) == {"x": 1}

    def test_relays_the_exception(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError, match="inner"):
            run_bounded(boom, 10.0)

    def test_overrun_raises_hang_error(self):
        release = threading.Event()
        try:
            with pytest.raises(HangError, match="watchdog budget"):
                run_bounded(release.wait, 0.05, name="wedged")
        finally:
            release.set()  # let the abandoned thread exit

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout_seconds"):
            run_bounded(lambda: None, 0.0)


class TestCircuitBreaker:
    def make(self, clock=None, threshold=3):
        return CircuitBreaker(
            "10.0.0.1:7000",
            failure_threshold=threshold,
            clock=clock or ManualClock(),
        )

    def test_closed_until_threshold(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_count(self):
        breaker = self.make()
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_admits_one_probe(self):
        clock = ManualClock()
        breaker = self.make(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(breaker.next_probe_at() - clock.now())
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # one probe at a time
        assert breaker.probes == 1

    def test_probe_success_closes_and_resets_the_ladder(self):
        clock = ManualClock()
        breaker = self.make(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        first_cool_down = breaker.next_probe_at() - clock.now()
        clock.advance(first_cool_down)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # Re-trip: the cool-down ladder restarted from rung one.
        for _ in range(3):
            breaker.record_failure()
        assert breaker.next_probe_at() - clock.now() == pytest.approx(
            first_cool_down
        )

    def test_probe_failure_reopens_longer(self):
        clock = ManualClock()
        breaker = self.make(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        first = breaker.next_probe_at() - clock.now()
        clock.advance(first)
        assert breaker.allow()
        breaker.record_failure()  # failed probe
        assert breaker.state == OPEN
        assert breaker.trips == 2
        second = breaker.next_probe_at() - clock.now()
        assert second > first  # exponential ladder, jitter < growth

    def test_schedules_are_deterministic_and_desynchronised(self):
        ladder = lambda key: CircuitBreaker(key)._schedule  # noqa: E731
        assert ladder("a:1") == ladder("a:1")
        assert ladder("a:1") != ladder("b:1")

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker("k", failure_threshold=0)


class TestBreakerRegistry:
    def test_metrics_export(self):
        metrics = MetricsRegistry()
        registry = BreakerRegistry(clock=ManualClock(), metrics=metrics)
        for _ in range(3):
            registry.record_failure("10.0.0.1:7000")
        assert registry.open_keys() == ["10.0.0.1:7000"]
        assert metrics.get("repro_breaker_state_10_0_0_1_7000").value == 2
        assert metrics.get("repro_breaker_trips_10_0_0_1_7000").value == 1
        registry.record_success("10.0.0.1:7000")
        assert registry.open_keys() == []
        assert metrics.get("repro_breaker_state_10_0_0_1_7000").value == 0
        # Trip counters are cumulative, never rewound.
        assert metrics.get("repro_breaker_trips_10_0_0_1_7000").value == 1

    def test_as_dict_snapshots_every_breaker(self):
        registry = BreakerRegistry(clock=ManualClock())
        registry.record_failure("b:2")
        registry.allow("a:1")
        snapshot = registry.as_dict()
        assert list(snapshot) == ["a:1", "b:2"]
        assert snapshot["b:2"]["failures"] == 1
        assert snapshot["a:1"]["state"] == CLOSED


class TestAdmissionController:
    QUEUE = [("j1", 1.0, 10.0), ("j2", 2.0, 11.0), ("j3", 1.0, 12.0)]

    def test_unbounded_always_accepts(self):
        controller = AdmissionController()
        assert controller.admit(self.QUEUE * 100, 0.5).action == "accept"

    def test_below_the_bound_accepts(self):
        controller = AdmissionController(max_queued=4, policy="reject")
        assert controller.admit(self.QUEUE, 1.0).action == "accept"

    def test_reject_policy_raises_when_full(self):
        controller = AdmissionController(max_queued=3, policy="reject")
        with pytest.raises(OverloadedError, match="queue full"):
            controller.admit(self.QUEUE, priority=100.0)

    def test_shed_evicts_lowest_priority_newest_first(self):
        controller = AdmissionController(max_queued=3, policy="shed")
        decision = controller.admit(self.QUEUE, priority=5.0)
        assert decision.action == "shed"
        # j1 and j3 tie on priority; j3 is newer (least sunk work).
        assert decision.victim == "j3"

    def test_shed_refuses_a_submission_that_beats_nothing(self):
        controller = AdmissionController(max_queued=3, policy="shed")
        with pytest.raises(OverloadedError, match="does not beat"):
            controller.admit(self.QUEUE, priority=1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_queued"):
            AdmissionController(max_queued=0)
        with pytest.raises(ValueError, match="policy"):
            AdmissionController(policy="panic")


def make_service(directory, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("slice_evaluations", 3)
    kwargs.setdefault("clock", ManualClock())
    return ExplorationService(str(directory), **kwargs)


class TestServiceAdmission:
    def test_reject_policy_is_loud_and_counted(self, tmp_path):
        with make_service(
            tmp_path, max_queued=2, overload_policy="reject"
        ) as service:
            service.submit(random_spec(1))
            service.submit(random_spec(2))
            with pytest.raises(OverloadedError, match="queue full"):
                service.submit(random_spec(3))
            assert service.metrics.get("repro_jobs_rejected_total").value == 1
            service.run()
            assert all(
                j.state == "completed" for j in service.list_jobs()
            )

    def test_shed_policy_evicts_and_journals(self, tmp_path):
        with make_service(
            tmp_path, max_queued=2, overload_policy="shed"
        ) as service:
            low = service.submit(random_spec(1), priority=1.0)
            high = service.submit(random_spec(2), priority=4.0)
            with service.subscribe(kinds=["shed"]) as events:
                vip = service.submit(random_spec(3), priority=8.0)
                shed_events = events.drain()
            assert low.state == "cancelled"
            assert [e["job"] for e in shed_events] == [low.job_id]
            assert shed_events[0]["priority"] == 1.0
            assert shed_events[0]["displaced_by_priority"] == 8.0
            assert service.metrics.get("repro_jobs_shed_total").value == 1
            service.run()
            assert high.state == "completed"
            assert vip.state == "completed"

    def test_shed_refusal_does_not_evict(self, tmp_path):
        with make_service(
            tmp_path, max_queued=1, overload_policy="shed"
        ) as service:
            queued = service.submit(random_spec(1), priority=5.0)
            with pytest.raises(OverloadedError, match="does not beat"):
                service.submit(random_spec(2), priority=5.0)
            assert queued.state == "queued"
            service.run()
            assert queued.state == "completed"

    def test_shed_job_resubmits_and_completes(self, tmp_path):
        spec = random_spec(7)
        with make_service(
            tmp_path, max_queued=1, overload_policy="shed"
        ) as service:
            shed = service.submit(spec, priority=1.0)
            service.submit(random_spec(8), priority=2.0)
            assert shed.state == "cancelled"
            # Resubmission after the queue drains is a fresh job.
            service.run()
            job = service.submit(spec, priority=1.0)
            service.run()
            assert fingerprint(service.result(job.job_id)) == fingerprint(
                explore(spec)
            )

    def test_option_validation(self, tmp_path):
        with pytest.raises(ServiceError, match="slice_timeout"):
            make_service(tmp_path, slice_timeout=0.0)
        with pytest.raises(ValueError, match="policy"):
            make_service(tmp_path, max_queued=1, overload_policy="drop")


class TestSliceWatchdog:
    def test_wedged_slice_becomes_a_typed_hung_failure(self, tmp_path):
        from repro.resilience.faults import FaultPlan, inject

        # One injected 1.5s evaluation delay against a 0.2s slice
        # budget: the watchdog preempts the slice, the job fails with a
        # typed HangError, and the service (not the wedged thread)
        # stays in control.
        plan = FaultPlan(
            schedule={"worker": {1: "delay"}}, delay_seconds=1.5
        )
        with make_service(tmp_path, slice_timeout=0.2) as service:
            job = service.submit(random_spec(3))
            with service.subscribe(kinds=["hung"]) as events:
                with inject(plan):
                    service.run()
                hung_events = events.drain()
            assert job.state == "failed"
            assert "watchdog budget" in job.error
            assert [e["job"] for e in hung_events] == [job.job_id]
            assert hung_events[0]["timeout_seconds"] == 0.2
            assert service.metrics.get("repro_hangs_total").value == 1

    def test_generous_timeout_never_fires(self, tmp_path):
        spec = random_spec(4)
        with make_service(tmp_path, slice_timeout=120.0) as service:
            job = service.submit(spec)
            service.run()
            assert job.state == "completed"
            assert service.metrics.get("repro_hangs_total").value == 0
            assert fingerprint(job.result) == fingerprint(explore(spec))


class TestRetrySiteKeys:
    def test_site_key_is_deterministic(self):
        policy = RetryPolicy(attempts=6, jitter=0.5, seed=3)
        assert policy.schedule(site_key="w:1") == policy.schedule(
            site_key="w:1"
        )

    def test_site_keys_desynchronise_peers(self):
        policy = RetryPolicy(attempts=6, jitter=0.5, seed=3)
        assert policy.schedule(site_key="w:1") != policy.schedule(
            site_key="w:2"
        )

    def test_no_site_key_matches_the_journaled_legacy_schedule(self):
        policy = RetryPolicy(attempts=6, jitter=0.5, seed=3)
        assert policy.schedule() == policy.schedule(site_key=None)
        # The header round-trip is unchanged: site keys are a call-time
        # derivation, never serialized state.
        assert RetryPolicy.from_dict(policy.as_dict()).schedule() == \
            policy.schedule()


class SilentWorker:
    """Accepts connections, completes the handshake, then goes silent.

    The model of a *hung* peer: reachable (TCP fine, handshake fine),
    consumes the run request, never replies, never beats.
    """

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._streams = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            stream = MessageStream(connection)
            self._streams.append(stream)
            try:
                stream.receive()  # hello
                stream.send("hello", hello_payload())
                stream.receive()  # the run request -- then silence
            except Exception:
                pass

    def close(self):
        self._stop.set()
        self._listener.close()
        for stream in self._streams:
            try:
                stream.close()
            except OSError:
                pass


@pytest.fixture(scope="module")
def settop_solo():
    return explore(build_settop_spec(), engine="compiled")


class TestCoordinatorSupervision:
    def test_heartbeats_flow_on_a_healthy_run(self, tmp_path, settop_solo):
        process, port = start_worker(str(tmp_path / "worker"))
        try:
            sharded = explore_sharded(
                build_settop_spec(),
                shards=2,
                mode="remote",
                workers=[f"127.0.0.1:{port}"],
                workdir=str(tmp_path / "coord"),
                engine="compiled",
                heartbeat_seconds=0.02,
                heartbeat_timeout=30.0,
            )
        finally:
            process.kill()
            process.wait(timeout=30)
        assert fingerprint(sharded.result) == fingerprint(settop_solo)
        assert sum(o.heartbeats for o in sharded.outcomes) > 0
        assert all(not o.failures for o in sharded.outcomes)

    def test_hung_worker_fails_over_to_a_live_peer(
        self, tmp_path, settop_solo
    ):
        silent = SilentWorker()
        process, port = start_worker(str(tmp_path / "worker"))
        try:
            started = time.monotonic()
            sharded = explore_sharded(
                build_settop_spec(),
                shards=2,
                mode="remote",
                workers=[
                    f"127.0.0.1:{silent.port}",
                    f"127.0.0.1:{port}",
                ],
                workdir=str(tmp_path / "coord"),
                engine="compiled",
                retry_attempts=2,
                retry_delay=0.05,
                heartbeat_seconds=0.05,
                heartbeat_timeout=0.5,
            )
            elapsed = time.monotonic() - started
        finally:
            silent.close()
            process.kill()
            process.wait(timeout=30)
        assert fingerprint(sharded.result) == fingerprint(settop_solo)
        assert sharded.result.completed
        hung = [f for o in sharded.outcomes for f in o.failures]
        assert hung and all(f["kind"] == "hung" for f in hung)
        assert any(o.hangs > 0 for o in sharded.outcomes)
        # The watchdog, not a blocking receive, bounded the wait.
        assert elapsed < 30.0

    def test_hung_worker_without_failover_degrades_soundly(
        self, tmp_path, settop_solo
    ):
        silent = SilentWorker()
        process, port = start_worker(str(tmp_path / "worker"))
        try:
            sharded = explore_sharded(
                build_settop_spec(),
                shards=2,
                mode="remote",
                workers=[
                    f"127.0.0.1:{silent.port}",
                    f"127.0.0.1:{port}",
                ],
                workdir=str(tmp_path / "coord"),
                engine="compiled",
                retry_attempts=1,
                retry_delay=0.01,
                heartbeat_seconds=0.05,
                heartbeat_timeout=0.5,
            )
        finally:
            silent.close()
            process.kill()
            process.wait(timeout=30)
        from repro.resilience.anytime import verify_gap

        assert not sharded.result.completed
        assert sharded.result.gap is not None
        assert verify_gap(sharded.result, settop_solo) == []
        lost = [o for o in sharded.outcomes if o.lost]
        assert len(lost) == 1
        assert lost[0].failures[0]["kind"] == "hung"

    def test_heartbeats_disabled_restores_the_legacy_path(
        self, tmp_path, settop_solo
    ):
        process, port = start_worker(str(tmp_path / "worker"))
        try:
            sharded = explore_sharded(
                build_settop_spec(),
                shards=2,
                mode="remote",
                workers=[f"127.0.0.1:{port}"],
                workdir=str(tmp_path / "coord"),
                engine="compiled",
                heartbeat_seconds=None,
            )
        finally:
            process.kill()
            process.wait(timeout=30)
        assert fingerprint(sharded.result) == fingerprint(settop_solo)
        assert all(o.heartbeats == 0 for o in sharded.outcomes)

    def test_breakers_skip_a_tripped_address(self):
        from repro.distributed.coordinator import _pick_address

        registry = BreakerRegistry(clock=ManualClock())
        addresses = [("10.0.0.1", 1), ("10.0.0.2", 2)]
        for _ in range(3):
            registry.record_failure("10.0.0.1:1")
        assert _pick_address(addresses, 0, registry) == ("10.0.0.2", 2)
        # Every breaker open: fall back to the rotation address (losing
        # the shard outright would be strictly worse than probing).
        for _ in range(3):
            registry.record_failure("10.0.0.2:2")
        assert _pick_address(addresses, 0, registry) == ("10.0.0.1", 1)

    def test_classification_table(self):
        from repro.distributed.coordinator import _classify_failure
        from repro.errors import ProtocolError

        assert _classify_failure(HangError("x")) == "hung"
        assert _classify_failure(socket.timeout()) == "hung"
        assert _classify_failure(ProtocolError("x")) == "protocol"
        assert _classify_failure(ConnectionResetError()) == "dead"
        assert _classify_failure(OSError("x")) == "dead"


class TestHandshakeTimeout:
    def test_unresponsive_accept_loop_times_out(self):
        # A listener that never accepts: the TCP connect succeeds (the
        # backlog answers the SYN) but no hello ever arrives.  Without
        # the finite handshake bound this receive blocks forever.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            started = time.monotonic()
            with pytest.raises(OSError):
                connect(listener.getsockname(), handshake_timeout=0.3)
            assert time.monotonic() - started < 5.0
        finally:
            listener.close()

    def test_tighter_caller_timeout_wins(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            started = time.monotonic()
            with pytest.raises(OSError):
                connect(
                    listener.getsockname(),
                    timeout=0.2,
                    handshake_timeout=30.0,
                )
            assert time.monotonic() - started < 5.0
        finally:
            listener.close()
