"""Tests of failure-impact analysis."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.casestudies import build_settop_spec
from repro.core import (
    critical_units,
    degraded_implementation,
    evaluate_allocation,
    explore,
    failure_impact,
    single_failure_report,
)

from .randspec import random_spec


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def flagship(settop):
    """The $430 maximal-flexibility box."""
    return explore(settop).points[-1]


class TestFailureImpact:
    def test_processor_failure_is_total_outage(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"muP2"})
        assert impact.total_outage
        assert impact.remaining_flexibility == 0.0
        assert impact.lost_clusters == flagship.clusters

    def test_asic_failure_degrades_gracefully(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"A1"})
        assert not impact.total_outage
        assert impact.remaining_flexibility == 3.0
        assert "gamma_G2" in impact.lost_clusters
        assert "gamma_D1" not in impact.lost_clusters

    def test_fpga_design_failure_minor(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"D3"})
        assert impact.remaining_flexibility == 7.0
        assert impact.lost_clusters == {"gamma_D3"}

    def test_bus_failure(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"C2"})
        # without the ASIC bus, A1 is stranded: only muP2 + D3 remain
        # usable (gamma_I, gamma_D1, gamma_D3, gamma_U1 -> f = 3)
        assert impact.remaining_flexibility == 3.0
        assert {"gamma_G1", "gamma_D2", "gamma_U2"} <= impact.lost_clusters

    def test_multi_unit_failure(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"A1", "D3"})
        assert impact.remaining_flexibility <= 3.0

    def test_degraded_implementation_matches_direct_eval(self, settop, flagship):
        degraded = degraded_implementation(settop, flagship, {"A1"})
        direct = evaluate_allocation(
            settop, set(flagship.units) - {"A1"}
        )
        assert degraded is not None and direct is not None
        assert degraded.flexibility == direct.flexibility


class TestReports:
    def test_single_failure_report_sorted_worst_first(self, settop, flagship):
        report = single_failure_report(settop, flagship)
        assert len(report) == len(flagship.units)
        values = [impact.remaining_flexibility for impact in report]
        assert values == sorted(values)
        assert report[0].failed_units == frozenset({"muP2"})

    def test_critical_units(self, settop, flagship):
        assert critical_units(settop, flagship) == frozenset({"muP2"})

    def test_cheap_box_everything_critical(self, settop):
        cheap = evaluate_allocation(settop, {"muP2"})
        assert critical_units(settop, cheap) == frozenset({"muP2"})

    def test_timing_mode_passthrough(self, settop, flagship):
        impact = failure_impact(
            settop, flagship, {"A1"}, timing_mode="schedule"
        )
        # exact scheduling keeps the game on muP2 alive
        assert impact.remaining_flexibility >= 4.0


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=255),
    )
    def test_failing_more_never_helps(self, seed, mask):
        spec = random_spec(seed)
        full = evaluate_allocation(spec, set(spec.units.names()))
        if full is None:
            return
        units = sorted(full.units)
        failed_small = {
            u for i, u in enumerate(units) if mask >> i & 1
        }
        rng = random.Random(seed)
        extra = set(rng.sample(units, k=min(1, len(units))))
        small = failure_impact(spec, full, failed_small)
        large = failure_impact(spec, full, failed_small | extra)
        assert (
            large.remaining_flexibility <= small.remaining_flexibility
        )


# ---------------------------------------------------------------------------
# Kill/resume robustness: a checkpointed exploration killed at an
# arbitrary point and resumed must reproduce the uninterrupted run's
# result fingerprint exactly — over a seeded corpus of random
# specifications, all execution modes, and both case studies.
# ---------------------------------------------------------------------------

from repro.casestudies import build_tv_decoder_spec  # noqa: E402
from repro.resilience import (  # noqa: E402
    FaultPlan,
    SimulatedCrash,
    inject,
    resume_explore,
)

from .test_resilience import fingerprint  # noqa: E402

RESUME_SEEDS = range(30)


def _run_killed_and_resume(spec, tmp_path, mode, kill_at, every, label):
    """Reference vs killed-at-checkpoint-``kill_at``-then-resumed runs."""
    reference = explore(
        spec,
        parallel=mode,
        checkpoint=str(tmp_path / f"{label}-ref.ckpt"),
        checkpoint_every=every,
    )
    killed = str(tmp_path / f"{label}-killed.ckpt")
    crashed = False
    try:
        with inject(FaultPlan(schedule={"checkpoint": {kill_at: "abort"}})):
            explore(
                spec, parallel=mode, checkpoint=killed,
                checkpoint_every=every,
            )
    except SimulatedCrash:
        crashed = True
    # small specs may finish before checkpoint ``kill_at``; resume then
    # just reproduces the completed run — both cases must fingerprint
    # identically to the reference.
    resumed = resume_explore(killed)
    return reference, resumed, crashed


class TestKillResumeCorpus:
    @pytest.mark.parametrize("seed", RESUME_SEEDS)
    def test_seeded_specs_serial(self, seed, tmp_path):
        spec = random_spec(seed)
        reference, resumed, _ = _run_killed_and_resume(
            spec, tmp_path, "serial", kill_at=2, every=8, label="s"
        )
        assert fingerprint(resumed) == fingerprint(reference)

    @pytest.mark.parametrize("seed", RESUME_SEEDS)
    def test_seeded_specs_thread(self, seed, tmp_path):
        spec = random_spec(seed)
        reference, resumed, _ = _run_killed_and_resume(
            spec, tmp_path, "thread", kill_at=2, every=8, label="t"
        )
        assert fingerprint(resumed) == fingerprint(reference)

    @pytest.mark.parametrize("seed", [0, 7, 13, 21, 29])
    def test_seeded_specs_process(self, seed, tmp_path):
        spec = random_spec(seed)
        reference, resumed, _ = _run_killed_and_resume(
            spec, tmp_path, "process", kill_at=2, every=8, label="p"
        )
        assert fingerprint(resumed) == fingerprint(reference)

    @pytest.mark.parametrize("kill_at", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_settop_killed_at_every_checkpoint(
        self, kill_at, settop, tmp_path
    ):
        """The set-top case study, killed at every snapshot in turn."""
        reference, resumed, crashed = _run_killed_and_resume(
            settop, tmp_path, "serial", kill_at=kill_at, every=1024,
            label="settop",
        )
        assert crashed  # 8154 replayed candidates -> 8+ checkpoints
        assert fingerprint(resumed) == fingerprint(reference)
        assert resumed.front() == [
            (100.0, 2.0), (120.0, 3.0), (230.0, 4.0),
            (290.0, 5.0), (360.0, 7.0), (430.0, 8.0),
        ]

    @pytest.mark.parametrize("kill_at", [1, 2])
    def test_tv_decoder_killed_at_every_checkpoint(self, kill_at, tmp_path):
        spec = build_tv_decoder_spec()
        reference, resumed, crashed = _run_killed_and_resume(
            spec, tmp_path, "serial", kill_at=kill_at, every=48,
            label="tv",
        )
        assert crashed
        assert fingerprint(resumed) == fingerprint(reference)

    def test_double_kill_then_resume(self, settop, tmp_path):
        """Killed, resumed, killed again, resumed again — still exact."""
        reference = explore(
            settop,
            checkpoint=str(tmp_path / "ref.ckpt"),
            checkpoint_every=1024,
        )
        killed = str(tmp_path / "killed.ckpt")
        with pytest.raises(SimulatedCrash):
            with inject(FaultPlan(schedule={"checkpoint": {2: "abort"}})):
                explore(settop, checkpoint=killed, checkpoint_every=1024)
        with pytest.raises(SimulatedCrash):
            with inject(FaultPlan(schedule={"checkpoint": {3: "abort"}})):
                resume_explore(killed)
        resumed = resume_explore(killed)
        assert fingerprint(resumed) == fingerprint(reference)

    def test_real_process_kill(self, settop, tmp_path):
        """An actual hard-killed child process (os._exit, no cleanup),
        resumed in this process — the fingerprint still matches."""
        import subprocess
        import sys
        import textwrap

        reference = explore(
            settop,
            checkpoint=str(tmp_path / "ref.ckpt"),
            checkpoint_every=512,
        )
        killed = str(tmp_path / "killed.ckpt")
        script = textwrap.dedent(
            """
            import sys
            from repro.casestudies import build_settop_spec
            from repro.core import explore
            from repro.resilience.checkpoint import CheckpointWriter

            path = sys.argv[1]
            original = CheckpointWriter.checkpoint

            def dying(self, cursor, *args, **kwargs):
                original(self, cursor, *args, **kwargs)
                if cursor >= 512 * 4:
                    import os
                    os._exit(9)  # hard kill: no flush, no atexit

            CheckpointWriter.checkpoint = dying
            explore(
                build_settop_spec(), checkpoint=path, checkpoint_every=512
            )
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, killed],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 9, proc.stderr
        resumed = resume_explore(killed)
        assert fingerprint(resumed) == fingerprint(reference)
