"""Tests of failure-impact analysis."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.casestudies import build_settop_spec
from repro.core import (
    critical_units,
    degraded_implementation,
    evaluate_allocation,
    explore,
    failure_impact,
    single_failure_report,
)

from .randspec import random_spec


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def flagship(settop):
    """The $430 maximal-flexibility box."""
    return explore(settop).points[-1]


class TestFailureImpact:
    def test_processor_failure_is_total_outage(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"muP2"})
        assert impact.total_outage
        assert impact.remaining_flexibility == 0.0
        assert impact.lost_clusters == flagship.clusters

    def test_asic_failure_degrades_gracefully(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"A1"})
        assert not impact.total_outage
        assert impact.remaining_flexibility == 3.0
        assert "gamma_G2" in impact.lost_clusters
        assert "gamma_D1" not in impact.lost_clusters

    def test_fpga_design_failure_minor(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"D3"})
        assert impact.remaining_flexibility == 7.0
        assert impact.lost_clusters == {"gamma_D3"}

    def test_bus_failure(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"C2"})
        # without the ASIC bus, A1 is stranded: only muP2 + D3 remain
        # usable (gamma_I, gamma_D1, gamma_D3, gamma_U1 -> f = 3)
        assert impact.remaining_flexibility == 3.0
        assert {"gamma_G1", "gamma_D2", "gamma_U2"} <= impact.lost_clusters

    def test_multi_unit_failure(self, settop, flagship):
        impact = failure_impact(settop, flagship, {"A1", "D3"})
        assert impact.remaining_flexibility <= 3.0

    def test_degraded_implementation_matches_direct_eval(self, settop, flagship):
        degraded = degraded_implementation(settop, flagship, {"A1"})
        direct = evaluate_allocation(
            settop, set(flagship.units) - {"A1"}
        )
        assert degraded is not None and direct is not None
        assert degraded.flexibility == direct.flexibility


class TestReports:
    def test_single_failure_report_sorted_worst_first(self, settop, flagship):
        report = single_failure_report(settop, flagship)
        assert len(report) == len(flagship.units)
        values = [impact.remaining_flexibility for impact in report]
        assert values == sorted(values)
        assert report[0].failed_units == frozenset({"muP2"})

    def test_critical_units(self, settop, flagship):
        assert critical_units(settop, flagship) == frozenset({"muP2"})

    def test_cheap_box_everything_critical(self, settop):
        cheap = evaluate_allocation(settop, {"muP2"})
        assert critical_units(settop, cheap) == frozenset({"muP2"})

    def test_timing_mode_passthrough(self, settop, flagship):
        impact = failure_impact(
            settop, flagship, {"A1"}, timing_mode="schedule"
        )
        # exact scheduling keeps the game on muP2 alive
        assert impact.remaining_flexibility >= 4.0


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=255),
    )
    def test_failing_more_never_helps(self, seed, mask):
        spec = random_spec(seed)
        full = evaluate_allocation(spec, set(spec.units.names()))
        if full is None:
            return
        units = sorted(full.units)
        failed_small = {
            u for i, u in enumerate(units) if mask >> i & 1
        }
        rng = random.Random(seed)
        extra = set(rng.sample(units, k=min(1, len(units))))
        small = failure_impact(spec, full, failed_small)
        large = failure_impact(spec, full, failed_small | extra)
        assert (
            large.remaining_flexibility <= small.remaining_flexibility
        )
