"""Golden-render smoke tests of the text and SVG report renderers.

The renderers (:mod:`repro.report.plot`, :mod:`repro.report.svg`) are
pure functions of the front, so their output over the paper's Set-Top
front is committed verbatim under ``tests/golden/`` and compared
byte-for-byte.  A deliberate rendering change means regenerating the
fixtures (see the module docstring of ``tests/golden``-adjacent files);
an accidental one fails here first.
"""

import os

from repro.report import front_svg, tradeoff_plot
from repro.report.plot import ascii_scatter, staircase

#: The paper's Set-Top Pareto front (Figure 4 / Table 1) — the
#: canonical rendering input, asserted live in test_golden_paper.py.
SETTOP_FRONT = [
    (100.0, 2.0),
    (120.0, 3.0),
    (230.0, 4.0),
    (290.0, 5.0),
    (360.0, 7.0),
    (430.0, 8.0),
]

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as fh:
        return fh.read()


def test_tradeoff_plot_matches_golden():
    assert tradeoff_plot(SETTOP_FRONT) == golden("settop_tradeoff.txt")


def test_staircase_matches_golden():
    assert staircase(SETTOP_FRONT) == golden("settop_staircase.txt")


def test_front_svg_matches_golden():
    assert front_svg(
        SETTOP_FRONT, title="SetTop_spec: front"
    ) == golden("settop_front.svg")


def test_empty_inputs_render_placeholders():
    assert ascii_scatter([]) == "(no points)\n"
    assert staircase([]) == "(empty front)\n"
    assert front_svg([]).startswith("<svg ")
