"""Tests of the derived boolean connectives and partial evaluation."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.boolexpr import (
    FALSE,
    TRUE,
    Var,
    at_most_one,
    evaluate_over_set,
    exactly_one,
    iff,
    implies,
    substitute,
    xor,
)

a, b, c = Var("a"), Var("b"), Var("c")
NAMES = ("a", "b", "c")


def rows(expr):
    out = []
    for values in itertools.product([False, True], repeat=len(NAMES)):
        out.append(expr.evaluate(dict(zip(NAMES, values))))
    return out


class TestConnectives:
    def test_implies_truth_table(self):
        expr = implies(a, b)
        assert expr.evaluate({"a": False, "b": False})
        assert expr.evaluate({"a": False, "b": True})
        assert not expr.evaluate({"a": True, "b": False})
        assert expr.evaluate({"a": True, "b": True})

    def test_iff_truth_table(self):
        expr = iff(a, b)
        assert expr.evaluate({"a": True, "b": True})
        assert expr.evaluate({"a": False, "b": False})
        assert not expr.evaluate({"a": True, "b": False})

    def test_xor_is_not_iff(self):
        assert rows(xor(a, b)) == [not v for v in rows(iff(a, b))]

    def test_at_most_one(self):
        expr = at_most_one([a, b, c])
        assert evaluate_over_set(expr, set())
        assert evaluate_over_set(expr, {"a"})
        assert not evaluate_over_set(expr, {"a", "b"})

    def test_exactly_one_is_rule_1(self):
        expr = exactly_one([a, b, c])
        assert not evaluate_over_set(expr, set())
        assert evaluate_over_set(expr, {"b"})
        assert not evaluate_over_set(expr, {"a", "c"})

    def test_exactly_one_empty(self):
        assert exactly_one([]) == FALSE or not exactly_one([]).evaluate({})


class TestSubstitute:
    def test_full_substitution_yields_constant(self):
        expr = (a & b) | ~c
        result = substitute(expr, {"a": True, "b": True, "c": True})
        assert result == TRUE

    def test_partial_substitution_keeps_symbols(self):
        expr = (a & b) | c
        result = substitute(expr, {"a": True})
        assert result.variables() == {"b", "c"}
        # equivalent to b | c
        assert result.evaluate({"b": False, "c": True})
        assert not result.evaluate({"b": False, "c": False})

    def test_substitution_prunes_branches(self):
        expr = (a & b) | c
        result = substitute(expr, {"a": False})
        assert result == Var("c")

    @settings(max_examples=100, deadline=None)
    @given(
        st.dictionaries(st.sampled_from(NAMES), st.booleans()),
        st.tuples(st.booleans(), st.booleans(), st.booleans()),
    )
    def test_substitute_agrees_with_direct_evaluation(self, pinned, rest):
        expr = exactly_one([a, b, c]) | (a & implies(b, c))
        partial = substitute(expr, pinned)
        full = dict(zip(NAMES, rest))
        full.update(pinned)
        assert partial.evaluate(full) == expr.evaluate(full)

    def test_what_if_on_possible_equation(self):
        """Pinning the processor simplifies the Fig. 2 equation to TRUE."""
        from repro.casestudies import build_tv_decoder_spec
        from repro.core import possible_allocation_expr

        spec = build_tv_decoder_spec()
        possible = possible_allocation_expr(spec)
        pinned = substitute(possible, {"muP": True})
        assert pinned == TRUE  # muP alone suffices, rest is optional
        without = substitute(possible, {"muP": False})
        # without the processor, P_A/P_C are unbindable
        assert without == FALSE
