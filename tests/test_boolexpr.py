"""Unit and property tests for the boolean expression engine."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolexpr import (
    And,
    BoolExprError,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
    all_of,
    any_of,
    count_models,
    evaluate_over_set,
    expression_size,
    simplify,
    solve_expr,
    tseitin,
)

a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")


class TestEvaluation:
    def test_var(self):
        assert a.evaluate({"a": True}) is True
        assert a.evaluate({"a": False}) is False

    def test_unassigned_raises(self):
        with pytest.raises(BoolExprError):
            a.evaluate({})

    def test_connectives(self):
        expr = (a & b) | ~c
        assert expr.evaluate({"a": True, "b": True, "c": True})
        assert expr.evaluate({"a": False, "b": False, "c": False})
        assert not expr.evaluate({"a": True, "b": False, "c": True})

    def test_constants(self):
        assert TRUE.evaluate({}) and not FALSE.evaluate({})

    def test_empty_and_or(self):
        assert And(()).evaluate({}) is True
        assert Or(()).evaluate({}) is False

    def test_variables(self):
        assert ((a & b) | ~c).variables() == {"a", "b", "c"}

    def test_evaluate_over_set(self):
        expr = a & ~b
        assert evaluate_over_set(expr, {"a"})
        assert not evaluate_over_set(expr, {"a", "b"})
        assert not evaluate_over_set(expr, set())

    def test_coercion_of_bools(self):
        assert (a & True).evaluate({"a": True})
        assert (False | a).evaluate({"a": True})

    def test_bad_coercion(self):
        with pytest.raises(BoolExprError):
            _ = a & 3  # type: ignore[operator]

    def test_helpers(self):
        assert all_of([]) == TRUE
        assert any_of([]) == FALSE
        assert all_of([a]) is a
        assert any_of([a]) is a
        assert isinstance(all_of([a, b]), And)
        assert isinstance(any_of([a, b]), Or)

    def test_equality_and_hash(self):
        assert Var("x") == Var("x")
        assert hash(Var("x")) == hash(Var("x"))
        assert (a & b) == And((a, b))
        assert (a & b) != (a | b)
        assert Not(a) == ~a


# --- hypothesis strategy for random expressions -------------------------

NAMES = ("a", "b", "c", "d")


def exprs(max_depth=4):
    base = st.one_of(
        st.sampled_from([Var(n) for n in NAMES]),
        st.sampled_from([TRUE, FALSE]),
    )

    def extend(children):
        return st.one_of(
            children.map(Not),
            st.lists(children, min_size=0, max_size=3).map(
                lambda ops: And(tuple(ops))
            ),
            st.lists(children, min_size=0, max_size=3).map(
                lambda ops: Or(tuple(ops))
            ),
        )

    return st.recursive(base, extend, max_leaves=12)


def truth_table(expr):
    rows = []
    for values in itertools.product([False, True], repeat=len(NAMES)):
        rows.append(expr.evaluate(dict(zip(NAMES, values))))
    return rows


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(a & FALSE) == FALSE
        assert simplify(a | TRUE) == TRUE
        assert simplify(a & TRUE) == a
        assert simplify(a | FALSE) == a

    def test_double_negation(self):
        assert simplify(~~a) == a

    def test_flattening_and_dedup(self):
        expr = And((a, And((a, b))))
        assert simplify(expr) == And((a, b))

    def test_complementary_literals(self):
        assert simplify(a & ~a) == FALSE
        assert simplify(a | ~a) == TRUE

    def test_expression_size(self):
        assert expression_size(a) == 1
        assert expression_size(a & b) == 3
        assert expression_size(~(a | b)) == 4

    @settings(max_examples=150, deadline=None)
    @given(exprs())
    def test_simplify_preserves_semantics(self, expr):
        assert truth_table(expr) == truth_table(simplify(expr))

    @settings(max_examples=150, deadline=None)
    @given(exprs())
    def test_simplify_never_grows(self, expr):
        assert expression_size(simplify(expr)) <= expression_size(expr)


class TestSat:
    def test_sat_simple(self):
        model = solve_expr(a & ~b)
        assert model == {"a": True, "b": False}

    def test_unsat(self):
        assert solve_expr(a & ~a) is None

    def test_sat_respects_formula(self):
        expr = (a | b) & (~a | c) & (~b | c) & ~c
        assert solve_expr(expr) is None

    def test_tseitin_clause_count_linear(self):
        expr = all_of([Var(f"x{i}") | Var(f"y{i}") for i in range(20)])
        cnf = tseitin(expr)
        assert len(cnf) < 200

    @settings(max_examples=120, deadline=None)
    @given(exprs())
    def test_sat_agrees_with_truth_table(self, expr):
        brute_sat = any(truth_table(expr))
        model = solve_expr(expr)
        assert (model is not None) == brute_sat
        if model is not None:
            full = {n: model.get(n, False) for n in NAMES}
            assert expr.evaluate(full)

    def test_count_models(self):
        assert count_models(a | b) == 3
        assert count_models(a & b) == 1
        assert count_models(TRUE, over=["a", "b"]) == 4

    def test_count_models_refuses_huge(self):
        expr = all_of([Var(f"v{i}") for i in range(30)])
        with pytest.raises(ValueError):
            count_models(expr)
