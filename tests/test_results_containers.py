"""Coverage tests for result containers and reporting edge cases."""

import pytest

from repro.casestudies import build_settop_spec
from repro.core import (
    EcsRecord,
    ExplorationResult,
    ExplorationStats,
    Implementation,
    evaluate_allocation,
    explore,
)
from repro.report import ascii_scatter, staircase


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


class TestEcsRecord:
    def test_clusters_derived_from_selection(self):
        record = EcsRecord({"I": "a", "J": "b"}, {"p": "r"})
        assert record.clusters == frozenset({"a", "b"})
        assert "a" in repr(record)

    def test_binding_copied(self):
        binding = {"p": "r"}
        record = EcsRecord({"I": "a"}, binding)
        binding["p"] = "other"
        assert record.binding["p"] == "r"


class TestImplementation:
    def test_point_and_repr(self, settop):
        impl = evaluate_allocation(settop, {"muP2"})
        assert impl.point == (100.0, 2.0)
        assert "muP2" in repr(impl)

    def test_ecs_for_missing(self, settop):
        impl = evaluate_allocation(settop, {"muP2"})
        assert impl.ecs_for("gamma_G1") is None
        assert impl.ecs_for("gamma_I") is not None


class TestExplorationResult:
    def test_best_and_len(self, settop):
        result = explore(settop)
        assert len(result) == 6
        assert result.best().flexibility == 8.0

    def test_empty_result(self):
        stats = ExplorationStats()
        result = ExplorationResult([], stats, 0.0)
        assert result.best() is None
        assert result.front() == []
        assert len(result) == 0

    def test_stats_as_dict_complete(self):
        stats = ExplorationStats()
        data = stats.as_dict()
        # every slot is a counter exported by as_dict() except the
        # events log (a list) and the cache counters, which are
        # diagnostics outside the deterministic fingerprint
        assert set(data) == (
            set(ExplorationStats.__slots__)
            - {"events"}
            - set(ExplorationStats.CACHE_COUNTERS)
        )
        assert set(stats.cache_dict()) == set(
            ExplorationStats.CACHE_COUNTERS
        )
        assert "solver_invocations" in repr(stats)


class TestPlotsEdgeCases:
    def test_scatter_identical_x(self):
        text = ascii_scatter([(5.0, 1.0), (5.0, 2.0)])
        assert "P" in text

    def test_scatter_identical_points(self):
        text = ascii_scatter([(1.0, 1.0), (1.0, 1.0)])
        assert "P" in text

    def test_staircase_single(self):
        text = staircase([(100.0, 2.0)])
        assert "$100" in text


class TestSolverStatsRepr:
    def test_repr(self, settop):
        from repro.binding import Allocation, BindingSolver

        solver = BindingSolver(settop, Allocation(settop, {"muP2"}))
        assert "invocations=0" in repr(solver.stats)
        assert "Router" in repr(solver.router)


class TestCatalogHelpers:
    def test_closure(self, settop):
        assert settop.units.closure(["D3"]) == ("D3",)

    def test_allocation_require_closed_error(self):
        from repro.binding import allocation_of
        from repro.errors import BindingError
        from repro.hgraph import new_cluster
        from repro.spec import (
            ArchitectureGraph, ProblemGraph, make_specification,
        )

        arch = ArchitectureGraph()
        top = arch.add_interface("Outer")
        outer = new_cluster(top, "outer_c", cost=1)
        outer.add_vertex("outer_leaf")
        inner_if = outer.add_interface("Inner")
        inner = new_cluster(inner_if, "inner_c", cost=1)
        inner.add_vertex("inner_leaf")
        problem = ProblemGraph()
        problem.add_vertex("p")
        spec = make_specification(
            problem, arch, [("p", "inner_leaf", 1.0)]
        )
        with pytest.raises(BindingError):
            allocation_of(spec, {"inner_c"})
        allocation_of(spec, {"inner_c"}, closed=False)  # tolerated

    def test_unit_order_property(self, settop):
        from repro.core import AllocationEnumerator

        order = AllocationEnumerator(settop).unit_order
        costs = [settop.units.unit(n).cost for n in order]
        assert costs == sorted(costs)
