"""Tests of the ROBDD engine."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolexpr import (
    And,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
    count_models,
    expr_to_bdd,
    model_count,
)
from repro.boolexpr.bdd import Bdd, ONE, ZERO

a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")
NAMES = ("a", "b", "c", "d")


def exprs():
    base = st.one_of(
        st.sampled_from([Var(n) for n in NAMES]),
        st.sampled_from([TRUE, FALSE]),
    )

    def extend(children):
        return st.one_of(
            children.map(Not),
            st.lists(children, min_size=0, max_size=3).map(
                lambda ops: And(tuple(ops))
            ),
            st.lists(children, min_size=0, max_size=3).map(
                lambda ops: Or(tuple(ops))
            ),
        )

    return st.recursive(base, extend, max_leaves=12)


class TestBddBasics:
    def test_constants(self):
        manager, root = expr_to_bdd(TRUE)
        assert root == ONE
        manager, root = expr_to_bdd(FALSE)
        assert root == ZERO

    def test_variable(self):
        manager, root = expr_to_bdd(a)
        assert manager.evaluate(root, {"a": True})
        assert not manager.evaluate(root, {"a": False})

    def test_reduction_hash_consing(self):
        """x | x and x collapse to the same node."""
        manager = Bdd(["x"])
        x = manager.var("x")
        assert manager.apply_or(x, x) == x
        assert manager.apply_and(x, ONE) == x
        assert manager.node_count() == 1

    def test_tautology_collapses_to_one(self):
        manager, root = expr_to_bdd(a | ~a)
        assert root == ONE

    def test_contradiction_collapses_to_zero(self):
        manager, root = expr_to_bdd(a & ~a)
        assert root == ZERO

    def test_restrict(self):
        manager, root = expr_to_bdd((a & b) | c)
        pinned = manager.restrict(root, {"a": True})
        # equivalent to b | c
        assert manager.evaluate(pinned, {"a": False, "b": True, "c": False})
        assert not manager.evaluate(
            pinned, {"a": False, "b": False, "c": False}
        )

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            Bdd(["x", "x"])

    def test_unknown_variable_rejected(self):
        manager = Bdd(["x"])
        with pytest.raises(ValueError):
            manager.var("y")


class TestSemantics:
    @settings(max_examples=150, deadline=None)
    @given(exprs())
    def test_bdd_agrees_with_expr_on_all_assignments(self, expr):
        manager, root = expr_to_bdd(expr, NAMES)
        for values in itertools.product([False, True], repeat=len(NAMES)):
            assignment = dict(zip(NAMES, values))
            assert manager.evaluate(root, assignment) == expr.evaluate(
                assignment
            )

    @settings(max_examples=150, deadline=None)
    @given(exprs())
    def test_model_count_matches_enumeration(self, expr):
        assert model_count(expr, over=NAMES) == count_models(
            expr, over=NAMES
        )

    @settings(max_examples=80, deadline=None)
    @given(exprs())
    def test_iter_models_complete_and_sound(self, expr):
        manager, root = expr_to_bdd(expr, NAMES)
        models = list(manager.iter_models(root))
        assert len(models) == model_count(expr, over=NAMES)
        for model in models:
            assert expr.evaluate(model)

    def test_model_count_dont_care_scaling(self):
        assert model_count(a, over=("a", "b", "c")) == 4

    def test_missing_variable_rejected(self):
        with pytest.raises(ValueError):
            model_count(a & b, over=("a",))


class TestScaling:
    def test_large_conjunction_linear(self):
        """128 variables: 2^128-scale counting, impossible by
        enumeration, instant on the BDD."""
        from repro.boolexpr import all_of, any_of

        groups = [
            any_of([Var(f"x{i}_0"), Var(f"x{i}_1")]) for i in range(64)
        ]
        expr = all_of(groups)
        count = model_count(expr)
        assert count == 3 ** 64  # each group: 3 of 4 combinations

    def test_settop_possible_count(self):
        """The Section-5 style statistic on the real architecture."""
        from repro.casestudies import build_settop_spec
        from repro.core import count_possible_allocations

        spec = build_settop_spec()
        count = count_possible_allocations(spec)
        # possible = subsets with at least one processor:
        # 2^17 - 2^15 = 98304
        assert count == 2 ** 17 - 2 ** 15

    def test_tv_decoder_possible_count(self):
        from repro.casestudies import build_tv_decoder_spec
        from repro.core import count_possible_allocations

        spec = build_tv_decoder_spec()
        # all supersets of {muP}: 2^6
        assert count_possible_allocations(spec) == 64
