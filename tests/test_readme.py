"""The README's code blocks must actually run.

Extracts every ```python fenced block from README.md and executes it in
one shared namespace (blocks may build on each other).  Keeps the
public-facing documentation honest.
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"
TUTORIAL = (
    Path(__file__).resolve().parent.parent / "docs" / "tutorial.md"
)

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path):
    return FENCE.findall(path.read_text())


def test_readme_python_blocks_execute():
    blocks = python_blocks(README)
    assert blocks, "README has no python examples"
    namespace = {}
    for block in blocks:
        exec(compile(block, str(README), "exec"), namespace)


def test_readme_front_snippet_is_true():
    """The docstring-style snippet at the top quotes the real front."""
    from repro import build_settop_spec, explore

    text = README.read_text()
    front = explore(build_settop_spec()).front()
    assert repr(front)[1:-1].split(", (")[0] in text.replace("\n", " ")
    assert "(100.0, 2.0)" in text and "(430.0, 8.0)" in text


def test_tutorial_blocks_execute():
    """Tutorial blocks run in order in a shared namespace (bash blocks
    and blocks with REPL output lines are skipped)."""
    namespace = {}
    for block in python_blocks(TUTORIAL):
        exec(compile(block, str(TUTORIAL), "exec"), namespace)
