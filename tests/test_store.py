"""Unit tests of the warm-start store (:mod:`repro.store`).

Covers the three layers separately — content addressing (digest),
segment durability (store) and edit classification (diff) — while
``test_warm_start.py`` proves the end-to-end byte-identity contract.
"""

import json
import os

import pytest

from repro.analysis import with_latency, with_unit_costs
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.io import spec_from_dict, spec_to_dict
from repro.resilience.journal import encode_record
from repro.store import (
    SEGMENT_FORMAT,
    SEGMENT_VERSION,
    WarmStore,
    describe_store,
    diff_specs,
    invalidate,
    namespace_digest,
    open_store,
    touched_keys,
)
from repro.store.store import _reset_stores


@pytest.fixture(autouse=True)
def fresh_intern_table():
    """Every test sees the disk state, not another test's cache."""
    _reset_stores()
    yield
    _reset_stores()


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def tv_spec():
    return build_tv_decoder_spec()


def first_mapping(spec):
    mapping = spec_to_dict(spec)["mappings"][0]
    return mapping["process"], mapping["resource"], mapping["latency"]


class TestNamespaceDigest:
    def test_stable_under_latency_edit(self, settop):
        process, resource, latency = first_mapping(settop)
        patched = with_latency(settop, {(process, resource): latency + 7})
        assert namespace_digest(patched) == namespace_digest(settop)

    def test_stable_under_cost_edit(self, settop):
        unit = sorted(settop.units.names())[0]
        patched = with_unit_costs(settop, {unit: 123.0})
        assert namespace_digest(patched) == namespace_digest(settop)

    def test_changed_by_structural_edit(self, settop):
        document = spec_to_dict(settop)
        document["mappings"] = document["mappings"][1:]
        pruned = spec_from_dict(document)
        assert namespace_digest(pruned) != namespace_digest(settop)

    def test_distinct_specs_distinct_namespaces(self, settop, tv_spec):
        assert namespace_digest(settop) != namespace_digest(tv_spec)

    def test_roundtrip_is_stable(self, settop):
        clone = spec_from_dict(spec_to_dict(settop))
        assert namespace_digest(clone) == namespace_digest(settop)


class TestSegmentStore:
    def test_put_get_and_reload(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("ns1", "k1", {"l": ["p"], "u": ["u"]}, {"v": 1})
        assert store.get("ns1", "k1") == {"v": 1}
        # a fresh process (simulated by dropping the intern table)
        # reads the entry back from disk
        _reset_stores()
        reloaded = open_store(str(tmp_path))
        assert reloaded.get("ns1", "k1") == {"v": 1}
        assert reloaded.counters()["hits"] == 1

    def test_open_store_interns_per_path(self, tmp_path):
        assert open_store(str(tmp_path)) is open_store(str(tmp_path))

    def test_put_ignores_duplicate_keys(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("ns1", "k1", {}, "first")
        store.put("ns1", "k1", {}, "second")
        assert store.get("ns1", "k1") == "first"
        assert store.writes == 1

    def test_drop_tombstone_survives_reload(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("ns1", "k1", {}, 1)
        store.put("ns1", "k2", {}, 2)
        assert store.drop("ns1", ["k1", "missing"]) == 1
        assert store.invalidated == 1
        _reset_stores()
        reloaded = open_store(str(tmp_path))
        assert reloaded.get("ns1", "k1") is None
        assert reloaded.get("ns1", "k2") == 2

    def test_corrupt_record_skipped_and_counted(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("ns1", "k1", {}, 1)
        store.put("ns1", "k2", {}, 2)
        store.close()
        [segment] = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(tmp_path)
            for name in names
        ]
        lines = open(segment, "rb").read().splitlines(keepends=True)
        # flip bits in the first entry record (not the header, not the
        # final line: a torn tail is legitimately benign)
        lines[1] = lines[1][:-10] + b"XXXXXXXX" + lines[1][-2:]
        with open(segment, "wb") as handle:
            handle.writelines(lines)
        _reset_stores()
        reloaded = open_store(str(tmp_path))
        assert reloaded.get("ns1", "k2") == 2
        assert reloaded.corrupt_entries == 1
        report = reloaded.verify()
        assert not report["ok"]
        assert any(p["kind"] == "corrupt_record" for p in report["problems"])

    def test_torn_final_line_is_benign(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("ns1", "k1", {}, 1)
        store.put("ns1", "k2", {}, 2)
        store.close()
        [segment] = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(tmp_path)
            for name in names
        ]
        data = open(segment, "rb").read()
        with open(segment, "wb") as handle:
            handle.write(data[:-9])  # kill -9 mid-append
        _reset_stores()
        reloaded = open_store(str(tmp_path))
        assert reloaded.get("ns1", "k1") == 1
        assert reloaded.get("ns1", "k2") is None
        assert reloaded.corrupt_entries == 0

    def test_version_skewed_segment_ignored_wholesale(self, tmp_path):
        ns_dir = tmp_path / "ns-deadbeef"
        ns_dir.mkdir()
        with open(ns_dir / "seg-1-0.jsonl", "w", encoding="utf-8") as handle:
            handle.write(
                encode_record(
                    "header",
                    {
                        "format": SEGMENT_FORMAT,
                        "version": SEGMENT_VERSION + 1,
                        "namespace": "deadbeef",
                    },
                )
            )
            handle.write(encode_record("entry", {"k": "k1", "v": 1}))
        store = open_store(str(tmp_path))
        assert store.get("deadbeef", "k1") is None
        assert store.skewed_segments == 1

    def test_foreign_namespace_segment_ignored(self, tmp_path):
        ns_dir = tmp_path / "ns-aaaa"
        ns_dir.mkdir()
        with open(ns_dir / "seg-1-0.jsonl", "w", encoding="utf-8") as handle:
            handle.write(
                encode_record(
                    "header",
                    {
                        "format": SEGMENT_FORMAT,
                        "version": SEGMENT_VERSION,
                        "namespace": "bbbb",  # misplaced segment
                    },
                )
            )
            handle.write(encode_record("entry", {"k": "k1", "v": 1}))
        store = open_store(str(tmp_path))
        assert store.get("aaaa", "k1") is None
        assert store.skewed_segments == 1

    def test_headerless_garbage_segment_ignored(self, tmp_path):
        ns_dir = tmp_path / "ns-cccc"
        ns_dir.mkdir()
        (ns_dir / "seg-1-0.jsonl").write_bytes(b"not json at all\n")
        store = open_store(str(tmp_path))
        assert store.get("cccc", "anything") is None
        assert store.skewed_segments == 1
        assert not store.verify()["ok"]

    def test_gc_compacts_segments_and_erases_tombstones(self, tmp_path):
        store = open_store(str(tmp_path))
        for index in range(4):
            store.put("ns1", f"k{index}", {}, index)
        store.drop("ns1", ["k0"])
        report = store.gc()
        assert report["compacted"] == 1
        assert report["evicted"] == []
        # one compacted segment, live entries only
        _reset_stores()
        reloaded = open_store(str(tmp_path))
        stats = reloaded.stats()
        assert stats["entries"] == 3
        assert stats["namespaces"][0]["segments"] == 1
        assert reloaded.get("ns1", "k0") is None
        assert reloaded.get("ns1", "k3") == 3
        assert reloaded.verify()["ok"]

    def test_gc_budget_evicts_oldest_namespace(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("aaaa", "k", {}, "x" * 100)
        store.put("bbbb", "k", {}, "y" * 100)
        total = store.gc()["bytes"]  # compact first so sizes are stable
        # namespaces are compacted in digest order, so "bbbb" ends up
        # with the newest mtime and "aaaa" is the eviction victim
        report = store.gc(max_bytes=total - 1)
        assert report["evicted"] == ["aaaa"]
        assert report["bytes"] <= total - 1
        assert store.get("bbbb", "k") == "y" * 100
        assert not os.path.exists(tmp_path / "ns-aaaa")

    def test_gc_budget_zero_clears_everything(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("ns1", "k", {}, 1)
        store.put("ns2", "k", {}, 2)
        report = store.gc(max_bytes=0)
        assert sorted(report["evicted"]) == ["ns1", "ns2"]
        assert report["bytes"] == 0

    def test_stats_and_describe(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("ns1", "k1", {}, 1)
        document = store.stats()
        assert document["entries"] == 1
        assert document["bytes"] > 0
        text = describe_store(document)
        assert "ns1" in text and "1 entries" in text

    def test_verify_clean_store(self, tmp_path):
        store = open_store(str(tmp_path))
        store.put("ns1", "k1", {}, 1)
        store.close()
        report = store.verify()
        assert report["ok"] and report["problems"] == []
        assert report["segments"] == 1

    def test_write_failure_degrades_to_memory_only(self, tmp_path, monkeypatch):
        store = open_store(str(tmp_path))
        store.put("ns1", "k1", {}, 1)

        ns = store.namespace("ns1")

        def boom(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(ns._writer, "write", boom)
        store.put("ns1", "k2", {}, 2)  # must not raise
        assert store.get("ns1", "k2") == 2  # still served in-process
        assert ns._writer_dead
        store.put("ns1", "k3", {}, 3)  # writer stays dead, still no raise
        _reset_stores()
        assert open_store(str(tmp_path)).get("ns1", "k2") is None


class TestDiff:
    def test_identical(self, settop):
        clone = spec_from_dict(spec_to_dict(settop))
        edit = diff_specs(settop, clone)
        assert edit.kind == "identical"
        assert edit.latency_edits == [] and edit.cost_edits == []

    def test_latency_edit_is_local(self, settop):
        process, resource, latency = first_mapping(settop)
        patched = with_latency(settop, {(process, resource): latency + 1})
        edit = diff_specs(settop, patched)
        assert edit.kind == "local"
        assert edit.latency_edits == [(process, resource)]
        assert edit.cost_edits == []

    def test_cost_edit_is_local(self, settop):
        unit = sorted(settop.units.names())[0]
        patched = with_unit_costs(settop, {unit: 1234.0})
        edit = diff_specs(settop, patched)
        assert edit.kind == "local"
        assert edit.cost_edits == [unit]
        assert edit.latency_edits == []

    def test_structural_edit(self, settop):
        document = spec_to_dict(settop)
        document["mappings"] = document["mappings"][1:]
        edit = diff_specs(settop, spec_from_dict(document))
        assert edit.kind == "structural"
        assert edit.old_namespace != edit.new_namespace

    def test_cost_edit_invalidates_nothing(self, settop, tmp_path):
        store = open_store(str(tmp_path))
        ns = namespace_digest(settop)
        store.put(ns, "k1", {"l": ["p"], "u": ["u"]}, 1)
        unit = sorted(settop.units.names())[0]
        patched = with_unit_costs(settop, {unit: 9.0})
        report = invalidate(store, settop, patched)
        assert report == {"kind": "local", "invalidated": 0, "namespace": ns}
        assert store.get(ns, "k1") == 1

    def test_latency_edit_drops_only_dependent_entries(self, settop, tmp_path):
        process, resource, latency = first_mapping(settop)
        unit = settop.units.unit_of_leaf[resource]
        store = open_store(str(tmp_path))
        ns = namespace_digest(settop)
        store.put(ns, "dependent", {"l": [process], "u": [unit]}, 1)
        store.put(ns, "other-process", {"l": ["nope"], "u": [unit]}, 2)
        store.put(ns, "other-unit", {"l": [process], "u": ["nope"]}, 3)
        patched = with_latency(settop, {(process, resource): latency + 1})
        edit = diff_specs(settop, patched)
        assert touched_keys(store, edit, settop) == ["dependent"]
        report = invalidate(store, settop, patched, edit)
        assert report["invalidated"] == 1
        assert store.get(ns, "dependent") is None
        assert store.get(ns, "other-process") == 2
        assert store.get(ns, "other-unit") == 3

    def test_structural_edit_drops_nothing(self, settop, tmp_path):
        store = open_store(str(tmp_path))
        ns = namespace_digest(settop)
        store.put(ns, "k1", {"l": [], "u": []}, 1)
        document = spec_to_dict(settop)
        document["mappings"] = document["mappings"][1:]
        report = invalidate(store, settop, spec_from_dict(document))
        assert report["kind"] == "structural"
        assert report["invalidated"] == 0
        assert store.get(ns, "k1") == 1  # unreachable, not lost
