"""Property-based tests for the compiled kernel and its satellites.

* The cross-candidate memoization of :class:`CompiledEvaluator` is
  order-independent: evaluating candidates against a warm cache, in any
  shuffled order, yields outcomes identical to a cold evaluator — and
  both match the reference engine (the projection-cache keying
  soundness argument of ``docs/performance.md``, exercised here).
* :func:`repro.core.pareto.final_front` equals the quadratic all-pairs
  ``dominates`` filter on every sequence shaped like EXPLORE's
  incumbent list.
* The hoisted binding-solver preparation (neighbor map + task set per
  flat problem) changes no solver statistics.
* The possible-resource-allocation expression is compiled once per
  frozen specification.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .randspec import random_spec
from repro.activation import flatten
from repro.binding import Allocation, BindingSolver, SolverStats
from repro.casestudies import build_settop_spec
from repro.compiled import compiled_evaluator
from repro.core import final_front, make_evaluator
from repro.core.candidates import (
    AllocationEnumerator,
    possible_allocation_expr,
)
from repro.core.ecs import iter_selections
from repro.spec.reduce import activatable_clusters
from repro.core.pareto import dominates
from repro.core.result import Implementation


def outcome_of(evaluator, units):
    """Every observable of one candidate evaluation, order-sensitively."""
    counter = [0]
    implementation = evaluator.evaluate(units, solver_counter=counter)
    record = {
        "possible": evaluator.possible(units),
        "comm_pruned": evaluator.comm_pruned(units),
        "estimate": evaluator.estimate(units),
        "solver_calls": counter[0],
        "feasible": implementation is not None,
    }
    if implementation is not None:
        record["cost"] = implementation.cost
        record["flexibility"] = implementation.flexibility
        record["clusters"] = sorted(implementation.clusters)
        record["coverage"] = [
            (list(r.selection.items()), list(r.binding.items()))
            for r in implementation.coverage
        ]
    return record


def candidate_sets(spec, limit=40):
    """The first ``limit`` candidates of the canonical enumeration."""
    sets = []
    for _, units in AllocationEnumerator(
        spec, list(spec.units.names()), include_empty=True
    ):
        sets.append(units)
        if len(sets) >= limit:
            break
    return sets


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 11), order_seed=st.integers(0, 10_000))
def test_warm_cache_evaluation_is_order_independent(seed, order_seed):
    """Satellite property: shuffled-order evaluation against a warm
    cache is byte-identical to cold evaluation, and to the reference."""
    spec = random_spec(seed)
    candidates = candidate_sets(spec)
    cold = make_evaluator(spec, "compiled")
    baseline = [outcome_of(cold, units) for units in candidates]
    reference = make_evaluator(spec, "reference")
    assert baseline == [outcome_of(reference, units) for units in candidates]

    order = list(range(len(candidates)))
    random.Random(order_seed).shuffle(order)
    warm = compiled_evaluator(spec)  # interned: caches survive reuse
    shuffled = {pos: outcome_of(warm, candidates[pos]) for pos in order}
    assert [shuffled[pos] for pos in range(len(candidates))] == baseline
    # and once more with everything already cached
    assert [outcome_of(warm, units) for units in candidates] == baseline


def _impl(cost, flexibility, tag=""):
    return Implementation(
        frozenset({f"u{cost}{tag}"}), cost, flexibility, frozenset(), []
    )


@st.composite
def incumbent_lists(draw):
    """Sequences shaped like EXPLORE's discovery-ordered points:
    cost and flexibility non-decreasing; equal flexibility only within
    one cost group; same-cost groups may end with a strict improvement
    (the corner case the final pass exists for)."""
    points = []
    cost, flexibility = 0.0, 0.0
    for index in range(draw(st.integers(0, 12))):
        advance = draw(st.booleans()) or not points
        if advance:
            cost += draw(st.floats(1.0, 50.0, allow_nan=False))
            flexibility += draw(st.floats(0.5, 4.0, allow_nan=False))
        else:
            # keep_ties tie (same cost+flex) or a same-cost improvement
            if draw(st.booleans()):
                flexibility += draw(st.floats(0.5, 2.0, allow_nan=False))
        points.append(_impl(cost, flexibility, f"-{index}"))
    return points


@settings(max_examples=200, deadline=None)
@given(points=incumbent_lists())
def test_final_front_equals_quadratic_filter(points):
    expected = [
        p
        for p in points
        if not any(dominates(q.point, p.point) for q in points)
    ]
    assert final_front(points) == expected


def test_final_front_same_cost_tie_corner():
    """A later same-cost point of strictly greater flexibility must
    evict the earlier tie group — the corner the linear scan targets."""
    tie_a = _impl(230.0, 4.0, "a")
    tie_b = _impl(230.0, 4.0, "b")
    better = _impl(230.0, 5.0, "c")
    assert final_front([tie_a, tie_b, better]) == [better]
    assert final_front([tie_a, tie_b]) == [tie_a, tie_b]
    assert final_front([]) == []
    earlier = _impl(100.0, 2.0)
    assert final_front([earlier, tie_a, better]) == [earlier, better]


def _stats_dict(stats: SolverStats):
    return {name: getattr(stats, name) for name in SolverStats.__slots__}


def test_binding_solver_preparation_is_hoisted_and_stable():
    """Satellite 1: per-flat preparation happens once per flat problem;
    solutions and every solver statistic are unchanged."""
    spec = build_settop_spec()
    allocation = Allocation(
        spec, frozenset({"muP2", "C1", "D3", "G1"})
    )
    index = spec.p_index
    allowed = frozenset(activatable_clusters(spec, allocation.units))
    selections = [
        selection
        for _, selection in zip(
            range(6), iter_selections(spec.problem, index, allowed)
        )
    ]
    flats = [
        flatten(spec.problem, selection, index) for selection in selections
    ]

    hoisted = BindingSolver(spec, allocation)
    fresh = BindingSolver(spec, allocation)
    for flat in flats:
        expected = list(fresh.iter_solutions(flat))
        before = len(hoisted._prepared)
        first = list(hoisted.iter_solutions(flat))
        second = list(hoisted.iter_solutions(flat))
        assert first == expected
        assert second == expected
        # at most one prepared entry per flat (none for un-bindable
        # flats — their domain check returns before preparation) and
        # nothing new on the repeat pass.
        assert len(hoisted._prepared) <= before + 1
    # The hoisted solver ran every flat twice, the fresh one once; every
    # counter — invocations, assignments, backtracks, solutions,
    # util_rejections — must scale exactly, i.e. hoisting changed none.
    assert _stats_dict(hoisted.stats) == {
        name: 2 * value for name, value in _stats_dict(fresh.stats).items()
    }


def test_possible_allocation_expr_cached_on_frozen_spec():
    spec = build_settop_spec()
    first = possible_allocation_expr(spec)
    assert spec._possible_expr is first
    assert possible_allocation_expr(spec) is first


def test_possible_allocation_expr_cache_is_per_spec():
    a, b = build_settop_spec(), build_settop_spec()
    assert possible_allocation_expr(a) is not possible_allocation_expr(b)
