"""CLI parser surface and tooling smoke tests."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cli import build_parser

TOOLS_DIR = Path(__file__).resolve().parent.parent / "tools"


class TestParserSurface:
    def test_help_renders(self):
        text = build_parser().format_help()
        assert "explore" in text and "upgrade" in text

    @pytest.mark.parametrize(
        "command",
        ["demo", "synth", "lint", "table", "dot", "explore",
         "upgrade", "failures"],
    )
    def test_subcommand_help(self, command, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args([command, "--help"])
        assert excinfo.value.code == 0

    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401


class TestTools:
    def test_collect_results_runs(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            with pytest.raises(SystemExit) as excinfo:
                runpy.run_path(
                    str(TOOLS_DIR / "collect_results.py"),
                    run_name="__main__",
                )
            assert excinfo.value.code == 0
        text = buffer.getvalue()
        assert "MATCH" in text
        assert "binding attempted" in text

    def test_api_docs_up_to_date_sections(self):
        """docs/api.md exists and lists every subpackage section."""
        api = (
            Path(__file__).resolve().parent.parent / "docs" / "api.md"
        ).read_text()
        for package in (
            "repro.hgraph", "repro.boolexpr", "repro.spec",
            "repro.activation", "repro.binding", "repro.timing",
            "repro.core", "repro.adaptive", "repro.analysis",
            "repro.casestudies", "repro.io", "repro.report",
        ):
            assert f"## `{package}`" in api, package
