"""Corruption tests of the shard-worker wire protocol.

A wire message is a complete request/response unit, so — unlike the
checkpoint journal, where a torn final line is the expected signature
of a killed writer — *every* framing defect must be rejected loudly
with a typed :class:`~repro.errors.ProtocolError`: truncated frames,
garbled bytes, wrong checksums, unknown types, oversized frames and
incompatible protocol versions.  Nothing is ever silently dropped.
"""

import json
import socket
import threading

import pytest

from repro.errors import ProtocolError
from repro.distributed import (
    MessageStream,
    PROTOCOL_FORMAT,
    PROTOCOL_VERSION,
    check_hello,
    connect,
    decode_message,
    encode_message,
    hello_payload,
    parse_address,
    serve,
)
from repro.resilience.journal import record_crc


class TestDecodeMessage:
    def test_round_trip(self):
        message_type, payload = decode_message(
            encode_message("ping", {"x": 1})
        )
        assert message_type == "ping"
        assert payload == {"x": 1}

    def test_empty_frame_is_loud(self):
        with pytest.raises(ProtocolError, match="closed mid-message"):
            decode_message(b"")

    def test_truncated_frame_is_loud(self):
        frame = encode_message("ping", {})
        with pytest.raises(ProtocolError, match="truncated"):
            decode_message(frame[:-1])  # newline chopped

    def test_garbled_bytes_are_loud(self):
        with pytest.raises(ProtocolError, match="garbled"):
            decode_message(b"\xff\xfe not json\n")

    def test_invalid_json_is_loud(self):
        with pytest.raises(ProtocolError, match="garbled"):
            decode_message(b'{"t": "ping", \n')

    def test_non_object_frame_is_loud(self):
        with pytest.raises(ProtocolError, match="not an object"):
            decode_message(b'[1, 2, 3]\n')

    def test_missing_fields_are_loud(self):
        with pytest.raises(ProtocolError, match="lacks type/payload"):
            decode_message(b'{"t": "ping"}\n')
        with pytest.raises(ProtocolError, match="lacks type/payload"):
            decode_message(b'{"p": {}}\n')

    def test_unknown_type_is_loud(self):
        line = json.dumps(
            {"t": "exfiltrate", "p": {},
             "c": record_crc("exfiltrate", {})}
        ).encode() + b"\n"
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message(line)

    def test_checksum_mismatch_is_loud(self):
        """A flipped payload byte cannot sneak past the CRC."""
        frame = encode_message("run", {"job": "s0"})
        tampered = frame.replace(b'"s0"', b'"s1"')
        assert tampered != frame
        with pytest.raises(ProtocolError, match="checksum mismatch"):
            decode_message(tampered)

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            encode_message("gossip", {})


class TestHello:
    def test_valid_hello_accepted(self):
        check_hello(hello_payload())

    def test_wrong_format_rejected(self):
        with pytest.raises(ProtocolError, match="speaks"):
            check_hello({"format": "repro/other", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            check_hello(
                {"format": PROTOCOL_FORMAT,
                 "version": PROTOCOL_VERSION + 1}
            )

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="not an object"):
            check_hello("hi")


class TestParseAddress:
    def test_parses_host_port(self):
        assert parse_address("worker9:4321") == ("worker9", 4321)

    def test_missing_port_rejected(self):
        with pytest.raises(ProtocolError, match="host:port"):
            parse_address("worker9")

    def test_non_numeric_port_rejected(self):
        with pytest.raises(ProtocolError, match="non-numeric"):
            parse_address("worker9:http")


def one_shot_server(behaviour):
    """A TCP server that runs ``behaviour(connection)`` once."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def run():
        connection, _ = listener.accept()
        try:
            behaviour(connection)
        finally:
            connection.close()
            listener.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return port, thread


class TestSocketLevel:
    def test_garbage_from_peer_is_loud(self):
        def behaviour(connection):
            connection.recv(65536)  # swallow the client hello
            connection.sendall(b"HTTP/1.1 200 OK\r\n\r\n")

        port, thread = one_shot_server(behaviour)
        with pytest.raises(ProtocolError, match="garbled|unknown"):
            connect(("127.0.0.1", port))
        thread.join(timeout=10)

    def test_connection_cut_mid_message_is_loud(self):
        def behaviour(connection):
            connection.recv(65536)
            frame = encode_message("hello", hello_payload())
            connection.sendall(frame[: len(frame) // 2])  # then close

        port, thread = one_shot_server(behaviour)
        with pytest.raises(ProtocolError, match="truncated|closed"):
            connect(("127.0.0.1", port))
        thread.join(timeout=10)

    def test_wrong_version_peer_rejected(self):
        def behaviour(connection):
            connection.recv(65536)
            connection.sendall(encode_message(
                "hello",
                {"format": PROTOCOL_FORMAT,
                 "version": PROTOCOL_VERSION + 7},
            ))

        port, thread = one_shot_server(behaviour)
        with pytest.raises(ProtocolError, match="version"):
            connect(("127.0.0.1", port))
        thread.join(timeout=10)


def worker_in_thread(tmp_path):
    """A real serve() loop in a daemon thread; returns its port."""
    bound = {}
    ready_event = threading.Event()

    def ready(address):
        bound["port"] = address[1]
        ready_event.set()

    thread = threading.Thread(
        target=serve,
        args=(str(tmp_path),),
        kwargs={"max_requests": 1, "ready": ready},
        daemon=True,
    )
    thread.start()
    assert ready_event.wait(timeout=10)
    return bound["port"], thread


class TestWorkerRejections:
    def test_worker_rejects_wrong_version_hello(self, tmp_path):
        """An incompatible coordinator gets a typed error reply and
        the worker survives to say so."""
        port, thread = worker_in_thread(tmp_path)
        sock = socket.create_connection(("127.0.0.1", port))
        stream = MessageStream(sock)
        try:
            stream.send("hello", {"format": PROTOCOL_FORMAT,
                                  "version": 999})
            message_type, payload = stream.receive()
        finally:
            stream.close()
        assert message_type == "error"
        assert payload["kind"] == "ProtocolError"
        assert "version" in payload["message"]
        thread.join(timeout=10)

    def test_worker_rejects_unknown_run_options(self, tmp_path):
        port, thread = worker_in_thread(tmp_path)
        stream = connect(("127.0.0.1", port))
        try:
            stream.send("run", {
                "job": "s0", "spec": {}, "shard": {},
                "options": {"sudo": True},
            })
            message_type, payload = stream.receive()
        finally:
            stream.close()
        assert message_type == "error"
        assert payload["kind"] == "ProtocolError"
        assert "sudo" in payload["message"]
        thread.join(timeout=10)

    def test_worker_rejects_path_traversal_job_id(self, tmp_path):
        port, thread = worker_in_thread(tmp_path)
        stream = connect(("127.0.0.1", port))
        try:
            stream.send("run", {
                "job": "../../etc/passwd", "spec": {}, "shard": {},
            })
            message_type, payload = stream.receive()
        finally:
            stream.close()
        assert message_type == "error"
        assert payload["kind"] == "ProtocolError"
        assert "job id" in payload["message"]
        thread.join(timeout=10)

    def test_worker_rejects_incomplete_run_payload(self, tmp_path):
        port, thread = worker_in_thread(tmp_path)
        stream = connect(("127.0.0.1", port))
        try:
            stream.send("run", {"job": "s0"})
            message_type, payload = stream.receive()
        finally:
            stream.close()
        assert message_type == "error"
        assert payload["kind"] == "ProtocolError"
        thread.join(timeout=10)

    def test_ping_pong_and_shutdown(self, tmp_path):
        port, thread = worker_in_thread(tmp_path)
        stream = connect(("127.0.0.1", port))
        try:
            stream.send("ping", {})
            assert stream.receive() == ("pong", {})
            stream.send("shutdown", {})
            assert stream.receive() == ("bye", {})
        finally:
            stream.close()
        thread.join(timeout=10)
