"""Unit tests for the hierarchical-graph primitives."""

import pytest

from repro.errors import ModelError
from repro.hgraph import Cluster, Edge, Interface, Port, Vertex, new_cluster


class TestVertex:
    def test_name_and_attrs(self):
        v = Vertex("P_A", {"negligible": True})
        assert v.name == "P_A"
        assert v.get("negligible") is True

    def test_get_default(self):
        assert Vertex("x").get("missing", 7) == 7

    def test_set(self):
        v = Vertex("x")
        v.set("cost", 10)
        assert v.attrs["cost"] == 10

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Vertex("")

    def test_repr(self):
        assert "P_A" in repr(Vertex("P_A"))


class TestPort:
    def test_defaults(self):
        p = Port("in0")
        assert p.direction == "inout"

    def test_directions(self):
        for d in ("in", "out", "inout"):
            assert Port("p", d).direction == d

    def test_bad_direction(self):
        with pytest.raises(ModelError):
            Port("p", "sideways")

    def test_empty_name(self):
        with pytest.raises(ModelError):
            Port("")


class TestEdge:
    def test_pair(self):
        e = Edge("a", "b")
        assert e.pair == ("a", "b")

    def test_ports_default_none(self):
        e = Edge("a", "b")
        assert e.src_port is None and e.dst_port is None

    def test_attrs(self):
        e = Edge("a", "b", attrs={"latency": 3})
        assert e.get("latency") == 3

    def test_empty_endpoint(self):
        with pytest.raises(ModelError):
            Edge("", "b")


class TestInterface:
    def test_ports_unique(self):
        i = Interface("I_D")
        i.add_port("p0")
        with pytest.raises(ModelError):
            i.add_port("p0")

    def test_add_cluster_unique(self):
        i = Interface("I_D")
        new_cluster(i, "g1")
        with pytest.raises(ModelError):
            new_cluster(i, "g1")

    def test_cluster_names_order(self):
        i = Interface("I_D")
        new_cluster(i, "g1")
        new_cluster(i, "g2")
        assert i.cluster_names() == ("g1", "g2")


class TestCluster:
    def test_attach_twice_same_interface_ok(self):
        i = Interface("I")
        c = new_cluster(i, "g")
        assert c.attach(i) is c

    def test_attach_other_interface_rejected(self):
        i1, i2 = Interface("I1"), Interface("I2")
        c = new_cluster(i1, "g")
        with pytest.raises(ModelError):
            c.attach(i2)

    def test_map_port_requires_attachment(self):
        c = Cluster("g")
        c.add_vertex("v")
        with pytest.raises(ModelError):
            c.map_port("p", "v")

    def test_map_port_checks_port_and_node(self):
        i = Interface("I")
        i.add_port("p")
        c = new_cluster(i, "g")
        c.add_vertex("v")
        c.map_port("p", "v")
        assert c.port_target("p") == "v"
        with pytest.raises(ModelError):
            c.map_port("q", "v")
        with pytest.raises(ModelError):
            c.map_port("p", "w")

    def test_weight_default_and_custom(self):
        i = Interface("I")
        assert new_cluster(i, "g").weight == 1.0
        assert new_cluster(i, "h", weight=2.5).weight == 2.5

    def test_weight_invalid(self):
        i = Interface("I")
        c = new_cluster(i, "g", weight="heavy")
        with pytest.raises(ModelError):
            _ = c.weight
        c2 = new_cluster(i, "h", weight=-1)
        with pytest.raises(ModelError):
            _ = c2.weight
