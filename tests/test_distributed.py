"""Differential tests: sharded EXPLORE is exactly the single-host EXPLORE.

The distributed subsystem's deliverable is *exactness*: partition the
possible-allocation space any legal way, explore every shard
independently, replay-merge the journals — and the result (front,
statistics minus wall-clock, progress events, logical trace) is
byte-identical to ``explore(spec, engine="compiled")`` on one host.
These tests prove it over the seeded random-spec corpus plus both case
studies, across 1/2/4/8 shards and both partition strategies, and
verify the degraded paths: a truncated or lost shard yields
``completed=False`` with an optimality gap that ``verify_gap``
accepts against the full run.
"""

import json
import os

import pytest

from .randspec import random_spec
from .test_parallel_explore import SEEDS, fingerprint
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import explore
from repro.errors import (
    CheckpointError,
    ExplorationError,
    SerializationError,
)
from repro.io import (
    dump_manifest,
    load_manifest,
    manifest_to_dict,
)
from repro.io.result_io import result_to_dict
from repro.parallel import EvaluationCache, explore_batched
from repro.distributed import (
    SHARD_GAP_REASON,
    Shard,
    ShardRun,
    combine_gaps,
    cost_bands,
    explore_sharded,
    make_partition,
    merge_fronts,
    merge_shard_checkpoints,
    merge_shard_runs,
    owner_index,
    prefix_shards,
    validate_partition,
)
from repro.resilience.anytime import verify_gap
from repro.trace import Tracer, trace_fingerprint


def result_doc(result):
    """Canonical JSON of a result, minus wall-clock."""
    document = result_to_dict(result)
    document.get("stats", {}).pop("elapsed_seconds", None)
    document.pop("cache", None)
    return json.dumps(document, sort_keys=True)


def run_shards_in_memory(spec, shards, **options):
    """Execute every shard (serial, compiled) into in-memory runs."""
    runs = []
    for shard in shards:
        cache = EvaluationCache()
        explore_batched(
            spec, shard=shard, cache=cache, parallel="serial",
            engine="compiled", **options,
        )
        runs.append(ShardRun(shard, cache, None, True))
    return runs


def merged_in_memory(spec, count, strategy, tracer=None, **options):
    shards = make_partition(spec, count, strategy)
    runs = run_shards_in_memory(spec, shards, **options)
    return merge_shard_runs(
        spec, runs, engine="compiled", tracer=tracer, **options
    )


class TestPartition:
    def test_band_partition_tiles_the_cost_axis(self):
        shards = cost_bands(build_settop_spec(), 4)
        assert len(shards) == 4
        assert shards[0].cost_lo == 0.0
        assert shards[-1].cost_hi is None
        for left, right in zip(shards, shards[1:]):
            assert left.cost_hi == right.cost_lo

    def test_prefix_partition_covers_every_pattern(self):
        shards = prefix_shards(build_settop_spec(), 4)
        assert sorted(s.pattern for s in shards) == [0, 1, 2, 3]
        assert len({s.prefix_units for s in shards}) == 1

    def test_every_candidate_has_exactly_one_owner(self):
        """Disjoint + exhaustive, checked against the real enumeration."""
        from repro.core.candidates import AllocationEnumerator
        from repro.core.explorer import prepare_exploration

        spec = build_settop_spec()
        setup = prepare_exploration(
            spec, None, None, max_cost=0.0, weighted=False
        )
        stream = list(AllocationEnumerator(
            spec, setup.extra_names, include_empty=bool(setup.required)
        ))
        for strategy in ("band", "prefix"):
            shards = make_partition(spec, 4, strategy)
            for cost, extras in stream:
                total = cost + setup.required_cost
                owners = [
                    s.index for s in shards if s.accepts(total, extras)
                ]
                assert len(owners) == 1, (strategy, total, extras, owners)
                assert owners[0] == owner_index(shards, total, extras)

    def test_empty_shards_are_legal(self):
        """A band above the dearest allocation matches nothing."""
        spec = build_tv_decoder_spec()
        shards = validate_partition([
            Shard("band", 0, 2, cost_lo=0.0, cost_hi=10**9),
            Shard("band", 1, 2, cost_lo=10**9, cost_hi=None),
        ])
        runs = run_shards_in_memory(spec, shards)
        merged = merge_shard_runs(spec, runs, engine="compiled")
        assert result_doc(merged) == result_doc(
            explore(spec, engine="compiled")
        )

    def test_overlapping_bands_rejected(self):
        with pytest.raises(ExplorationError, match="do not tile"):
            validate_partition([
                Shard("band", 0, 2, cost_lo=0.0, cost_hi=200.0),
                Shard("band", 1, 2, cost_lo=100.0, cost_hi=None),
            ])

    def test_gapped_bands_rejected(self):
        with pytest.raises(ExplorationError, match="do not tile"):
            validate_partition([
                Shard("band", 0, 2, cost_lo=0.0, cost_hi=100.0),
                Shard("band", 1, 2, cost_lo=200.0, cost_hi=None),
            ])

    def test_shard_dict_round_trip(self):
        for shard in make_partition(build_settop_spec(), 4, "prefix"):
            assert Shard.from_dict(shard.to_dict()) == shard

    def test_malformed_shard_dict_rejected(self):
        with pytest.raises(ExplorationError):
            Shard.from_dict({"strategy": "band"})

    def test_prefix_wider_than_free_units_rejected(self):
        spec = random_spec(4)  # one freely allocatable unit
        with pytest.raises(ExplorationError, match="cannot fix"):
            make_partition(spec, 4, "prefix")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ExplorationError, match="unknown shard strategy"):
            make_partition(build_tv_decoder_spec(), 2, "roundrobin")

    def test_max_candidates_incompatible_with_shard(self):
        spec = build_tv_decoder_spec()
        shard = make_partition(spec, 2, "band")[0]
        with pytest.raises(ExplorationError, match="max_candidates"):
            explore_batched(spec, shard=shard, max_candidates=5)


class TestByteIdentity:
    """The headline acceptance: merged == single-host, byte for byte."""

    @pytest.fixture(scope="class")
    def solo_case_studies(self):
        runs = {}
        for name, build in (
            ("settop", build_settop_spec),
            ("tv", build_tv_decoder_spec),
        ):
            tracer = Tracer(level="audit")
            result = explore(build(), engine="compiled", tracer=tracer)
            runs[name] = (
                result_doc(result),
                trace_fingerprint(tracer.all_records()),
            )
        return runs

    @pytest.mark.parametrize("count", [1, 2, 4, 8])
    @pytest.mark.parametrize("strategy", ["band", "prefix"])
    def test_case_studies_all_partitions(
        self, solo_case_studies, count, strategy
    ):
        for name, build in (
            ("settop", build_settop_spec),
            ("tv", build_tv_decoder_spec),
        ):
            spec = build()
            tracer = Tracer(level="audit")
            merged = merged_in_memory(spec, count, strategy, tracer=tracer)
            solo_doc, solo_trace = solo_case_studies[name]
            assert result_doc(merged) == solo_doc, (name, count, strategy)
            assert trace_fingerprint(tracer.all_records()) == solo_trace, (
                f"{name} trace diverged at {count}x{strategy}"
            )

    def test_random_corpus_all_partitions(self):
        """30 seeds x (1,2,4,8) shards x both strategies.

        Prefix partitions wider than a spec's free-unit count are
        impossible and must be rejected loudly — those combos assert
        the loud error instead of silently passing.
        """
        checked = 0
        for seed in SEEDS:
            spec = random_spec(seed)
            solo_tracer = Tracer(level="audit")
            solo = explore(spec, engine="compiled", tracer=solo_tracer)
            solo_doc = result_doc(solo)
            solo_trace = trace_fingerprint(solo_tracer.all_records())
            for count in (1, 2, 4, 8):
                for strategy in ("band", "prefix"):
                    tracer = Tracer(level="audit")
                    try:
                        merged = merged_in_memory(
                            spec, count, strategy, tracer=tracer
                        )
                    except ExplorationError as error:
                        assert "cannot fix" in str(error), (
                            seed, count, strategy, error,
                        )
                        continue
                    checked += 1
                    assert result_doc(merged) == solo_doc, (
                        f"seed {seed} diverged at {count}x{strategy}"
                    )
                    observed = trace_fingerprint(tracer.all_records())
                    assert observed == solo_trace, (
                        f"seed {seed} trace diverged at {count}x{strategy}"
                    )
        assert checked >= 200

    @pytest.mark.parametrize("keep_ties", [False, True])
    def test_option_matrix_survives_sharding(self, keep_ties):
        spec = build_settop_spec()
        options = dict(keep_ties=keep_ties, util_bound=0.5, prune_comm=False)
        solo = explore(spec, engine="compiled", **options)
        merged = merged_in_memory(spec, 4, "band", **options)
        assert result_doc(merged) == result_doc(solo)

    def test_max_cost_survives_sharding(self):
        spec = build_settop_spec()
        solo = explore(spec, engine="compiled", max_cost=300.0)
        merged = merged_in_memory(spec, 4, "band", max_cost=300.0)
        assert result_doc(merged) == result_doc(solo)


class TestCheckpointMerge:
    def run_shards_to_disk(self, spec, shards, tmp_path, **options):
        paths = []
        for shard in shards:
            path = os.path.join(str(tmp_path), f"s{shard.index}.ckpt")
            explore_batched(
                spec, shard=shard, checkpoint=path, parallel="serial",
                engine="compiled", **options,
            )
            paths.append(path)
        return paths

    def test_journal_merge_matches_solo(self, tmp_path):
        spec = build_settop_spec()
        shards = make_partition(spec, 4, "band")
        paths = self.run_shards_to_disk(spec, shards, tmp_path)
        merged = merge_shard_checkpoints(paths, engine="compiled")
        assert result_doc(merged) == result_doc(
            explore(spec, engine="compiled")
        )

    def test_truncated_shard_degrades_to_sound_gap(self, tmp_path):
        spec = build_settop_spec()
        solo = explore(spec, engine="compiled")
        shards = make_partition(spec, 4, "band")
        paths = []
        for shard in shards:
            path = os.path.join(str(tmp_path), f"s{shard.index}.ckpt")
            budget = {"max_evaluations": 2} if shard.index == 2 else {}
            explore_batched(
                spec, shard=shard, checkpoint=path, checkpoint_every=1,
                parallel="serial", engine="compiled", **budget,
            )
            paths.append(path)
        merged = merge_shard_checkpoints(paths, engine="compiled")
        assert not merged.completed
        assert merged.gap is not None
        assert merged.gap.reason == SHARD_GAP_REASON
        assert verify_gap(merged, solo) == []

    def test_lost_shard_degrades_to_sound_gap(self, tmp_path):
        spec = build_settop_spec()
        solo = explore(spec, engine="compiled")
        shards = make_partition(spec, 4, "band")
        paths = self.run_shards_to_disk(
            spec, [s for s in shards if s.index != 2], tmp_path
        )
        merged = merge_shard_checkpoints(
            paths, lost_shards=[shards[2]], engine="compiled"
        )
        assert not merged.completed
        assert merged.gap is not None
        assert merged.gap.reason == SHARD_GAP_REASON
        assert verify_gap(merged, solo) == []

    def test_every_shard_lost_is_loud(self):
        shards = make_partition(build_tv_decoder_spec(), 2, "band")
        with pytest.raises(CheckpointError, match="lost"):
            merge_shard_checkpoints([], lost_shards=shards)

    def test_foreign_journal_rejected(self, tmp_path):
        """Journals from a different spec cannot be cross-wired in."""
        settop = build_settop_spec()
        tv = build_tv_decoder_spec()
        settop_paths = self.run_shards_to_disk(
            settop, make_partition(settop, 2, "band"), tmp_path
        )
        tv_path = os.path.join(str(tmp_path), "tv.ckpt")
        explore_batched(
            tv, shard=make_partition(tv, 2, "band")[1],
            checkpoint=tv_path, engine="compiled",
        )
        with pytest.raises(CheckpointError, match="different"):
            merge_shard_checkpoints(
                [settop_paths[0], tv_path], engine="compiled"
            )

    def test_parameter_drift_rejected(self, tmp_path):
        """Shards run with different options cannot be merged."""
        spec = build_tv_decoder_spec()
        shards = make_partition(spec, 2, "band")
        a = os.path.join(str(tmp_path), "a.ckpt")
        b = os.path.join(str(tmp_path), "b.ckpt")
        explore_batched(spec, shard=shards[0], checkpoint=a,
                        engine="compiled", util_bound=0.69)
        explore_batched(spec, shard=shards[1], checkpoint=b,
                        engine="compiled", util_bound=0.5)
        with pytest.raises(CheckpointError, match="util_bound"):
            merge_shard_checkpoints([a, b], engine="compiled")

    def test_non_shard_checkpoint_rejected(self, tmp_path):
        spec = build_tv_decoder_spec()
        path = os.path.join(str(tmp_path), "whole.ckpt")
        explore_batched(spec, checkpoint=path, engine="compiled")
        with pytest.raises(CheckpointError, match="not a shard run"):
            merge_shard_checkpoints([path], engine="compiled")


class TestCoordinator:
    @pytest.mark.parametrize("mode", ["inline", "service"])
    @pytest.mark.parametrize("strategy", ["band", "prefix"])
    def test_modes_byte_identical(self, tmp_path, mode, strategy):
        spec = build_settop_spec()
        sharded = explore_sharded(
            spec, shards=4, strategy=strategy, mode=mode,
            workdir=str(tmp_path), engine="compiled",
        )
        assert result_doc(sharded.result) == result_doc(
            explore(spec, engine="compiled")
        )
        assert sharded.result.completed
        assert len(sharded.outcomes) == 4
        assert all(o.completed and not o.lost for o in sharded.outcomes)
        assert os.path.exists(sharded.manifest_path)

    def test_resume_reuses_finished_shards(self, tmp_path):
        spec = build_tv_decoder_spec()
        first = explore_sharded(
            spec, shards=2, mode="inline", workdir=str(tmp_path),
            engine="compiled",
        )
        second = explore_sharded(
            spec, shards=2, mode="inline", workdir=str(tmp_path),
            engine="compiled",
        )
        assert all(o.resumed for o in second.outcomes)
        assert result_doc(second.result) == result_doc(first.result)

    def test_manifest_pins_the_partition(self, tmp_path):
        spec = build_tv_decoder_spec()
        explore_sharded(
            spec, shards=2, mode="inline", workdir=str(tmp_path),
            engine="compiled",
        )
        with pytest.raises(CheckpointError, match="partition"):
            explore_sharded(
                spec, shards=4, mode="inline", workdir=str(tmp_path),
                engine="compiled",
            )

    def test_manifest_pins_the_specification(self, tmp_path):
        explore_sharded(
            build_tv_decoder_spec(), shards=2, mode="inline",
            workdir=str(tmp_path), engine="compiled",
        )
        with pytest.raises(CheckpointError, match="different"):
            explore_sharded(
                build_settop_spec(), shards=2, mode="inline",
                workdir=str(tmp_path), engine="compiled",
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExplorationError, match="dispatch mode"):
            explore_sharded(build_tv_decoder_spec(), mode="carrier-pigeon")

    def test_workers_only_for_remote(self):
        with pytest.raises(ExplorationError, match="remote"):
            explore_sharded(
                build_tv_decoder_spec(), mode="inline",
                workers=["127.0.0.1:1"],
            )

    def test_max_candidates_rejected(self):
        with pytest.raises(ExplorationError, match="max_candidates"):
            explore_sharded(build_tv_decoder_spec(), max_candidates=5)


class TestManifestIO:
    def test_round_trip(self, tmp_path):
        spec = build_settop_spec()
        shards = make_partition(spec, 4, "band")
        path = os.path.join(str(tmp_path), "shards.json")
        dump_manifest(path, manifest_to_dict(spec, shards, {"engine": None}))
        loaded, document = load_manifest(path)
        assert loaded == shards
        assert document["count"] == 4
        assert document["strategy"] == "band"

    def test_malformed_manifest_rejected(self):
        from repro.io import manifest_from_dict

        with pytest.raises(SerializationError, match="not a shard manifest"):
            manifest_from_dict({"format": "something-else"})
        with pytest.raises(SerializationError, match="no shards"):
            manifest_from_dict(
                {"format": "repro/shard-manifest", "version": 1,
                 "shards": []}
            )


class TestServiceShardJobs:
    def test_shard_option_accepted_and_journaled(self, tmp_path):
        from repro.service import ExplorationService

        spec = build_tv_decoder_spec()
        shards = make_partition(spec, 2, "band")
        service = ExplorationService(str(tmp_path), progress_every=None)
        try:
            jobs = [
                service.submit(
                    spec, name=f"s{shard.index}",
                    options={"shard": shard.to_dict(), "engine": "compiled"},
                )
                for shard in shards
            ]
            service.run()
            assert all(service.job(j.job_id).state == "completed"
                       for j in jobs)
        finally:
            service.close()

    def test_shard_with_max_candidates_rejected(self):
        from repro.service import ServiceError, validate_options

        shard = make_partition(build_tv_decoder_spec(), 2, "band")[0]
        with pytest.raises(ServiceError, match="max_candidates"):
            validate_options(
                {"shard": shard.to_dict(), "max_candidates": 3}
            )

    def test_shard_option_must_be_a_descriptor(self):
        from repro.service import ServiceError, validate_options

        with pytest.raises(ServiceError, match="shard"):
            validate_options({"shard": 3})


class TestGapCombination:
    def test_combine_gaps_takes_the_sound_extremes(self):
        from repro.core.result import OptimalityGap

        combined = combine_gaps([
            OptimalityGap(300.0, 6.0, 4.0, "budget"),
            OptimalityGap(250.0, 8.0, 5.0, SHARD_GAP_REASON),
        ])
        assert combined.next_cost_bound == 250.0
        assert combined.flexibility_bound == 8.0
        assert combined.achieved_flexibility == 5.0

    def test_merge_fronts_is_sound_at_point_level(self):
        """The lossy union keeps every nondominated (cost, flex) point."""
        spec = build_settop_spec()
        solo = explore(spec, engine="compiled")
        shards = make_partition(spec, 4, "band")
        partials = []
        for shard in shards:
            cache = EvaluationCache()
            partials.append(explore_batched(
                spec, shard=shard, cache=cache, parallel="serial",
                engine="compiled",
            ))
        union = merge_fronts(partials)
        assert {(p.cost, p.flexibility) for p in union.points} >= {
            (p.cost, p.flexibility) for p in solo.points
        }


class TestShardCLI:
    def run_cli(self, argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    @pytest.fixture()
    def settop_json(self, tmp_path):
        path = str(tmp_path / "settop.json")
        code, _ = self.run_cli(["demo", "settop", "--save", path])
        assert code == 0
        return path

    def test_sharded_explore_output_matches_plain(
        self, tmp_path, settop_json
    ):
        code, plain = self.run_cli(["explore", settop_json])
        assert code == 0
        code, sharded = self.run_cli([
            "explore", settop_json, "--shards", "4",
            "--shard-dir", str(tmp_path / "shards"),
        ])
        assert code == 0
        body = "\n".join(
            line for line in sharded.splitlines()
            if not line.startswith("sharded explore:")
        )
        assert body.strip() == plain.strip()

    def test_service_mode_output_matches_plain(
        self, tmp_path, settop_json
    ):
        """The CLI's unset (None) options must not leak into service
        job validation — regression for --shard-mode service."""
        code, plain = self.run_cli(["explore", settop_json])
        assert code == 0
        code, sharded = self.run_cli([
            "explore", settop_json, "--shards", "4",
            "--shard-mode", "service",
            "--shard-dir", str(tmp_path / "shards"),
        ])
        assert code == 0
        body = "\n".join(
            line for line in sharded.splitlines()
            if not line.startswith("sharded explore:")
        )
        assert body.strip() == plain.strip()

    def test_shards_with_checkpoint_rejected(self, settop_json):
        code, _ = self.run_cli([
            "explore", settop_json, "--shards", "2",
            "--checkpoint", "x.ckpt",
        ])
        assert code == 1

    def test_shard_workers_without_shards_rejected(self, settop_json):
        code, _ = self.run_cli([
            "explore", settop_json, "--shard-workers", "h:1",
        ])
        assert code == 1
