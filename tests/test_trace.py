"""Differential tests of the deterministic tracing layer.

The tracer (:mod:`repro.trace`) extends the PR-1/PR-3 determinism
contract to full search introspection: every logical record is emitted
at replay positions from outcome-derivable data only, so a serial run,
any batched/pooled run, and a preempted service job produce
byte-identical logical traces.  The audit trail must also be complete
enough to *reconstruct* the paper's search statistics from the trace
alone, and attaching a tracer must not change the exploration at all.
"""

import json

import pytest

from .randspec import random_spec
from repro.casestudies import build_settop_spec
from repro.core import explore
from repro.errors import TraceError
from repro.service.metrics import MetricsRegistry
from repro.trace import (
    PRUNE_REASONS,
    Tracer,
    bound_tightness,
    bridge_trace_metrics,
    chrome_trace,
    compute_trace_id,
    explain_text,
    read_trace,
    recompute_stats,
    strip_wall_fields,
    trace_fingerprint,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace,
)

#: Subset of the differential corpus (audit traces are verbose; a
#: dozen seeds cover feasible/infeasible/truncation variety).
SEEDS = list(range(12))


def collect(spec, level="audit", **kwargs):
    tracer = Tracer(level=level, trace_id=compute_trace_id(spec))
    result = explore(spec, tracer=tracer, **kwargs)
    return tracer, result


# ---------------------------------------------------------------------------
# Determinism: serial == batched == service
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_differential_logical_traces(mode):
    """Serial and batched runs leave byte-identical logical traces."""
    for seed in SEEDS:
        spec = random_spec(seed)
        reference, _ = collect(spec)
        observed, _ = collect(spec, parallel=mode, batch_size=4)
        assert observed.logical_records() == reference.logical_records(), (
            f"seed {seed} diverged under {mode}"
        )
        assert observed.fingerprint() == reference.fingerprint()


def test_differential_logical_traces_options():
    """Option combinations keep the traces identical too."""
    for options in (
        dict(keep_ties=True),
        dict(timing_mode="none"),
        dict(weighted=True),
        dict(use_estimation=False),
    ):
        spec = random_spec(5)
        reference, _ = collect(spec, **options)
        observed, _ = collect(
            spec, parallel="thread", batch_size=3, **options
        )
        assert observed.fingerprint() == reference.fingerprint(), (
            f"diverged with {options}"
        )


def test_service_trace_matches_solo(tmp_path):
    """A job preempted over many service slices accumulates exactly
    the trace of one uninterrupted solo run."""
    from repro.io import job_io
    from repro.service import ExplorationService, ManualClock

    spec = build_settop_spec()
    with ExplorationService(
        str(tmp_path),
        pool_kind="serial",
        slice_evaluations=8,
        clock=ManualClock(),
    ) as service:
        job = service.submit(spec, options={"trace": "audit"})
        service.run()
        assert job.state == "completed"
        assert job.preemptions > 0  # the run really was sliced
        records = read_trace(job_io.trace_path(str(tmp_path), job.job_id))
    solo, _ = collect(spec)
    assert trace_fingerprint(records) == solo.fingerprint()


def test_service_events_carry_trace_id(tmp_path):
    """Every job event is stamped with the job's deterministic trace
    id so events and spans can be joined."""
    from repro.io import job_io
    from repro.service import ExplorationService, ManualClock

    spec = random_spec(3)
    with ExplorationService(
        str(tmp_path), pool_kind="serial", clock=ManualClock()
    ) as service:
        job = service.submit(spec)
        service.run()
        assert job.trace_id == compute_trace_id(spec)
        with open(job_io.events_path(str(tmp_path), job.job_id)) as handle:
            events = [json.loads(line) for line in handle if line.strip()]
    assert events
    assert all(event["trace"] == job.trace_id for event in events)


def test_service_rejects_bad_trace_option(tmp_path):
    from repro.service import ExplorationService, ManualClock
    from repro.service.job import ServiceError

    with ExplorationService(
        str(tmp_path), pool_kind="serial", clock=ManualClock()
    ) as service:
        with pytest.raises(ServiceError):
            service.submit(random_spec(0), options={"trace": "verbose"})


# ---------------------------------------------------------------------------
# Zero-change contract
# ---------------------------------------------------------------------------


def test_tracing_changes_nothing():
    """Tracing on/off: identical fronts, stats and progress events."""
    spec = build_settop_spec()
    plain_events = []
    plain = explore(spec, progress=plain_events.append, progress_every=50)
    traced_events = []
    tracer = Tracer(level="audit")
    traced = explore(
        spec,
        progress=traced_events.append,
        progress_every=50,
        tracer=tracer,
    )
    assert traced.front() == plain.front()
    assert traced_events == plain_events
    assert (
        traced.stats.candidates_enumerated
        == plain.stats.candidates_enumerated
    )
    assert traced.stats.estimate_exceeded == plain.stats.estimate_exceeded


def test_wall_clock_stays_out_of_the_logical_trace():
    """Clock readings land only in the wall channel, never in the
    fingerprint: two runs at different speeds fingerprint-identically."""

    class FastClock:
        def __init__(self, step):
            self.step = step
            self.value = 0.0

        def now(self):
            self.value += self.step
            return self.value

    spec = random_spec(7)
    slow = Tracer(level="audit", clock=FastClock(1000.0))
    fast = Tracer(level="audit", clock=FastClock(0.001))
    explore(spec, tracer=slow)
    explore(spec, tracer=fast)
    assert slow.fingerprint() == fast.fingerprint()
    for record in slow.logical_records():
        assert "t" not in record and "t0" not in record, record


# ---------------------------------------------------------------------------
# Audit completeness: the trace explains the whole search
# ---------------------------------------------------------------------------


def test_every_candidate_is_accounted_for():
    """candidates = pruned-before-evaluation + evaluated, per trace."""
    for seed in SEEDS[:6]:
        tracer, result = collect(random_spec(seed))
        recomputed = recompute_stats(tracer.all_records())
        assert (
            recomputed["candidates_enumerated"]
            == result.stats.candidates_enumerated
        )


def test_recompute_stats_reproduces_table1():
    """The settop search statistics are reconstructible from the
    audit trail alone (the acceptance criterion of this PR)."""
    tracer, result = collect(build_settop_spec())
    recomputed = recompute_stats(tracer.all_records())
    stats = result.stats
    assert recomputed["candidates_enumerated"] == stats.candidates_enumerated
    assert recomputed["possible_allocations"] == stats.possible_allocations
    assert recomputed["pruned_comm"] == stats.pruned_comm
    assert recomputed["estimates_computed"] == stats.estimates_computed
    assert recomputed["estimate_exceeded"] == stats.estimate_exceeded
    assert (
        recomputed["feasible_implementations"]
        == stats.feasible_implementations
    )
    assert recomputed["solver_invocations"] == stats.solver_invocations
    assert recomputed["points"] == len(result.points)
    end = tracer.all_records()[-2]  # explore_end (phase_totals trails)
    assert end["type"] == "explore_end"
    assert end["front"] == [[p.cost, p.flexibility] for p in result.points]


def test_prune_records_carry_the_numbers():
    """Every audited prune names a documented rule, and bound prunes
    carry the numbers involved (estimate vs. incumbent)."""
    tracer, _ = collect(build_settop_spec())
    prunes = [r for r in tracer.records if r["type"] == "prune"]
    assert prunes
    for record in prunes:
        assert record["reason"] in PRUNE_REASONS, record
        assert isinstance(record["units"], list)
        if record["reason"] == "estimate_below_incumbent":
            assert record["estimate"] <= record["incumbent"], record
        if record["reason"] == "not_improving":
            assert record["achieved"] <= record["incumbent"], record


def test_spans_level_skips_the_audit():
    """level="spans" records the lifecycle but no per-prune audit."""
    spans, _ = collect(build_settop_spec(), level="spans")
    kinds = {record["type"] for record in spans.records}
    assert "prune" not in kinds
    assert {"explore_start", "evaluate", "incumbent", "explore_end"} <= kinds


def test_bound_tightness_is_sound():
    """The estimate is an upper bound on every achieved flexibility."""
    tracer, _ = collect(build_settop_spec())
    bands, violations = bound_tightness(tracer.all_records())
    assert bands and not violations


def test_truncation_records():
    """An anytime-truncated run records the budget stop + partial end."""
    tracer, result = collect(build_settop_spec(), max_evaluations=5)
    assert not result.completed
    stops = [r for r in tracer.records if r["type"] == "stop"]
    assert stops and stops[-1]["reason"] == "budget"
    end = tracer.records[-1]
    assert end["type"] == "explore_end" and end["completed"] is False


def test_record_truncation_off_suppresses_the_seam():
    """record_truncation=False (the service setting): a budget stop
    leaves no logical mark, so slices concatenate cleanly."""
    spec = build_settop_spec()
    tracer = Tracer(level="audit")
    tracer.record_truncation = False
    explore(spec, tracer=tracer, max_evaluations=5)
    kinds = [record["type"] for record in tracer.records]
    assert "stop" not in kinds and "explore_end" not in kinds


def test_validation():
    with pytest.raises(TraceError):
        Tracer(level="everything")
    assert compute_trace_id(build_settop_spec()) == compute_trace_id(
        build_settop_spec()
    )


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def test_jsonl_roundtrip(tmp_path):
    tracer, _ = collect(random_spec(2))
    path = str(tmp_path / "trace.jsonl")
    write_trace(tracer, path)
    records = read_trace(path)
    assert trace_fingerprint(records) == tracer.fingerprint()
    assert strip_wall_fields(records) == tracer.logical_records()


def test_read_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(TraceError):
        read_trace(str(bad))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(TraceError):
        read_trace(str(empty))
    wrong = tmp_path / "wrong.jsonl"
    wrong.write_text('{"format": "repro/other", "version": 1}\n')
    with pytest.raises(TraceError):
        read_trace(str(wrong))


def test_chrome_export_is_valid(tmp_path):
    tracer, result = collect(build_settop_spec())
    document = chrome_trace(tracer)
    assert validate_chrome_trace(document) == []
    names = [e["name"] for e in document["traceEvents"]]
    assert "explore" in names
    assert names.count("evaluate") == result.stats.estimate_exceeded
    assert document["otherData"]["trace_id"] == tracer.trace_id
    path = str(tmp_path / "trace.chrome.json")
    write_chrome_trace(tracer, path)
    with open(path) as handle:
        assert validate_chrome_trace(json.load(handle)) == []


def test_chrome_validator_catches_breakage():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
    broken = {
        "traceEvents": [
            {"name": "x", "ph": "X", "ts": -1, "pid": 1, "tid": 1}
        ]
    }
    assert validate_chrome_trace(broken) != []


def test_bridge_metrics():
    tracer, result = collect(build_settop_spec())
    registry = MetricsRegistry()
    bridge_trace_metrics(tracer, registry)
    snapshot = registry.as_dict()
    assert (
        snapshot["repro_trace_evaluations_total"]["value"]
        == result.stats.estimate_exceeded
    )
    assert (
        snapshot["repro_trace_solver_calls_total"]["value"]
        == result.stats.solver_invocations
    )
    assert snapshot["repro_trace_incumbents_total"]["value"] == len(
        result.points
    )


def test_explain_text_smoke():
    tracer, _ = collect(build_settop_spec())
    report = explain_text(tracer.all_records(), tree=True, limit=3)
    for heading in (
        "# Run",
        "# Pareto front",
        "# Search statistics",
        "# Pruning audit",
        "# Per-phase time breakdown",
        "# Search tree",
    ):
        assert heading in report, heading
