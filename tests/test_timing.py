"""Unit tests for the timing substrate."""

import math

import pytest

from repro.activation import flatten
from repro.casestudies import build_settop_spec
from repro.errors import BindingError, TimingError
from repro.timing import (
    PAPER_UTILIZATION_BOUND,
    Task,
    list_schedule,
    liu_layland_bound,
    loaded_tasks,
    makespan_of,
    meets_utilization_bound,
    rm_schedulable,
    schedule_meets_periods,
    task_set,
    utilization_by_resource,
    utilization_violations,
)

GAME = {"I_App": "gamma_G", "I_G": "gamma_G1"}
TV = {"I_App": "gamma_D", "I_D": "gamma_D1", "I_U": "gamma_U1"}


@pytest.fixture(scope="module")
def spec():
    return build_settop_spec()


class TestLiuLayland:
    def test_bound_n1(self):
        assert liu_layland_bound(1) == 1.0

    def test_bound_n2(self):
        assert liu_layland_bound(2) == pytest.approx(2 * (2 ** 0.5 - 1))

    def test_bound_monotone_to_ln2(self):
        values = [liu_layland_bound(n) for n in range(1, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(math.log(2), abs=5e-3)
        assert liu_layland_bound(10_000) == pytest.approx(math.log(2), abs=1e-4)

    def test_bound_zero_and_negative(self):
        assert liu_layland_bound(0) == 1.0
        with pytest.raises(ValueError):
            liu_layland_bound(-1)

    def test_rm_schedulable_paper_mode(self):
        assert rm_schedulable(0.69, 10)
        assert not rm_schedulable(0.70, 10)

    def test_rm_schedulable_exact_mode(self):
        # two tasks: bound ~0.828
        assert rm_schedulable(0.8, 2, exact=True)
        assert not rm_schedulable(0.9, 2, exact=True)


class TestTasks:
    def test_game_tasks(self, spec):
        flat = flatten(spec.problem, GAME)
        tasks = task_set(spec, flat)
        assert tasks["P_G1"].period == 240.0
        assert tasks["P_D"].period == 240.0
        assert tasks["P_C_G"].negligible
        assert not tasks["P_C_G"].loaded
        assert tasks["P_G1"].loaded

    def test_browser_unconstrained(self, spec):
        flat = flatten(spec.problem, {"I_App": "gamma_I"})
        assert loaded_tasks(spec, flat) == []

    def test_utilization_contribution(self):
        t = Task("p", 100.0, False)
        assert t.utilization(50.0) == 0.5
        assert Task("p", None, False).utilization(50.0) == 0.0
        assert Task("p", 100.0, True).utilization(50.0) == 0.0


class TestUtilization:
    def test_paper_rejects_game_on_muP2(self, spec):
        """(95 + 90) / 240 > 0.69 — Section 5's rejected implementation."""
        flat = flatten(spec.problem, GAME)
        binding = {"P_C_G": "muP2", "P_G1": "muP2", "P_D": "muP2"}
        util = utilization_by_resource(spec, flat, binding)
        assert util["muP2"] == pytest.approx((95 + 90) / 240)
        assert not meets_utilization_bound(spec, flat, binding)
        assert utilization_violations(spec, flat, binding)

    def test_paper_accepts_game_on_muP1(self, spec):
        """(75 + 70) / 240 <= 0.69 — the muP1 implementation is kept."""
        flat = flatten(spec.problem, GAME)
        binding = {"P_C_G": "muP1", "P_G1": "muP1", "P_D": "muP1"}
        assert meets_utilization_bound(spec, flat, binding)

    def test_paper_accepts_tv_on_muP2(self, spec):
        """95 + 45 < 0.69 * 300 — Section 5's accepted TV implementation."""
        flat = flatten(spec.problem, TV)
        binding = {
            "P_A": "muP2", "P_C_D": "muP2", "P_D1": "muP2", "P_U1": "muP2",
        }
        util = utilization_by_resource(spec, flat, binding)
        assert util["muP2"] == pytest.approx((95 + 45) / 300)
        assert meets_utilization_bound(spec, flat, binding)

    def test_negligible_processes_excluded(self, spec):
        """P_A and P_C_D add 70 ns; they must not count."""
        flat = flatten(spec.problem, TV)
        binding = {
            "P_A": "muP2", "P_C_D": "muP2", "P_D1": "muP2", "P_U1": "muP2",
        }
        util = utilization_by_resource(spec, flat, binding)
        assert util["muP2"] < (95 + 45 + 60 + 10) / 300

    def test_unbound_process_raises(self, spec):
        flat = flatten(spec.problem, TV)
        with pytest.raises(BindingError):
            utilization_by_resource(spec, flat, {"P_A": "muP2"})

    def test_custom_bound(self, spec):
        flat = flatten(spec.problem, GAME)
        binding = {"P_C_G": "muP2", "P_G1": "muP2", "P_D": "muP2"}
        assert meets_utilization_bound(spec, flat, binding, bound=0.95)


class TestListScheduler:
    def test_chain_schedule(self, spec):
        flat = flatten(spec.problem, TV)
        binding = {
            "P_A": "muP2", "P_C_D": "muP2", "P_D1": "muP2", "P_U1": "muP2",
        }
        schedule = list_schedule(spec, flat, binding)
        assert len(schedule) == 4
        # dependencies respected
        assert schedule.entry("P_C_D").finish <= schedule.entry("P_D1").start
        assert schedule.entry("P_D1").finish <= schedule.entry("P_U1").start
        # single resource: makespan = sum of latencies
        assert schedule.makespan == pytest.approx(60 + 10 + 95 + 45)

    def test_parallel_resources_overlap(self, spec):
        flat = flatten(spec.problem, TV)
        binding = {
            "P_A": "muP1", "P_C_D": "muP2", "P_D1": "muP2", "P_U1": "muP2",
        }
        schedule = list_schedule(spec, flat, binding)
        # P_A (55 on muP1) runs concurrently with the muP2 chain
        assert schedule.makespan < 55 + 10 + 95 + 45

    def test_no_resource_conflicts(self, spec):
        flat = flatten(spec.problem, TV)
        binding = {
            "P_A": "muP2", "P_C_D": "muP2", "P_D1": "muP2", "P_U1": "muP2",
        }
        for entries in list_schedule(spec, flat, binding).by_resource().values():
            for first, second in zip(entries, entries[1:]):
                assert first.finish <= second.start + 1e-9

    def test_comm_delay_applied(self, spec):
        flat = flatten(spec.problem, GAME)
        binding = {"P_C_G": "muP1", "P_G1": "muP1", "P_D": "muP1"}
        base = makespan_of(spec, flat, binding)
        split = {"P_C_G": "muP1", "P_G1": "muP1", "P_D": "muP2"}
        delayed = makespan_of(spec, flat, split, comm_delay=100.0)
        assert delayed >= base  # delay pushes the cross-resource hop

    def test_schedule_meets_periods(self, spec):
        flat = flatten(spec.problem, GAME)
        ok = {"P_C_G": "muP1", "P_G1": "muP1", "P_D": "muP1"}
        assert schedule_meets_periods(spec, flat, ok)

    def test_unbound_raises(self, spec):
        flat = flatten(spec.problem, GAME)
        with pytest.raises(BindingError):
            list_schedule(spec, flat, {"P_C_G": "muP1"})

    def test_drop_negligible_preserves_order(self, spec):
        """Dependencies through negligible nodes are bridged, so the
        loaded chain keeps its ordering."""
        flat = flatten(spec.problem, TV)
        binding = {
            "P_A": "muP2", "P_C_D": "muP2", "P_D1": "muP2", "P_U1": "muP2",
        }
        assert schedule_meets_periods(spec, flat, binding)
        # the negligible processes (P_A 60 + P_C_D 10) are excluded, so
        # the loaded makespan is 95 + 45 <= 300 even though the full
        # schedule (210) plus them would still fit; with them included
        # the check also passes here:
        assert schedule_meets_periods(
            spec, flat, binding, include_negligible=True
        )

    def test_negligible_exclusion_changes_acceptance(self, spec):
        """A case where counting start-up work wrongly rejects: inflate
        the controller so the full schedule misses the period."""
        from repro.spec import ProblemGraph, ArchitectureGraph, make_specification

        p = ProblemGraph()
        p.attrs["period"] = 100.0
        p.add_vertex("boot", negligible=True)
        p.add_vertex("work")
        p.add_edge("boot", "work")
        a = ArchitectureGraph()
        a.add_resource("cpu", cost=1)
        s = make_specification(
            p, a, [("boot", "cpu", 90.0), ("work", "cpu", 40.0)]
        )
        flat = flatten(s.problem, {})
        binding = {"boot": "cpu", "work": "cpu"}
        assert schedule_meets_periods(s, flat, binding)
        assert not schedule_meets_periods(
            s, flat, binding, include_negligible=True
        )

    def test_cycle_detected(self):
        from repro.activation.flatten import FlatProblem
        from repro.activation import Activation
        from repro.spec import (
            ArchitectureGraph, ProblemGraph, make_specification,
        )

        p = ProblemGraph()
        p.add_vertex("a")
        p.add_vertex("b")
        p.add_edge("a", "b")
        p.add_edge("b", "a")
        a = ArchitectureGraph()
        a.add_resource("r")
        spec = make_specification(p, a, [("a", "r", 1.0), ("b", "r", 1.0)])
        act = Activation(frozenset({"a", "b"}), frozenset(), frozenset())
        flat = FlatProblem(("a", "b"), (("a", "b"), ("b", "a")), {}, act)
        with pytest.raises(TimingError):
            list_schedule(spec, flat, {"a": "r", "b": "r"})
