"""The chaos matrix: every net/disk fault lands in the trichotomy.

Each scenario injects one deterministic fault plan — network faults at
the shard wire protocol's send seam (delay, stall, mid-frame
truncation, duplicate delivery, connection reset) or disk faults at
the journal/manifest write seam (torn write, ENOSPC, fsync failure) —
into an end-to-end exploration of a real case study, and asserts the
run ends in **exactly one** of three states:

1. *byte-identical recovery* — the run (after the typed failure, a
   retry, a failover, or a resume) produces the same front as the
   undisturbed run;
2. *sound degradation* — ``completed=False`` with an
   :class:`OptimalityGap` that ``verify_gap`` accepts against the full
   run;
3. *typed loud error* — a :class:`ReproError` subclass (or the
   harness's :class:`SimulatedCrash`) naming the fault.

Never a hang — every scenario runs inside the supervision plane's own
:func:`~repro.supervision.run_bounded` budget — and never a silently
wrong front.
"""

import pytest

from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import explore
from repro.distributed import explore_sharded
from repro.errors import CheckpointError, SerializationError
from repro.resilience import resume_explore, verify_gap
from repro.resilience.faults import FaultPlan, SimulatedCrash, inject
from repro.supervision import run_bounded
from .test_distributed_faults import start_worker

#: Wall-clock budget per scenario.  A scenario that exceeds it *is* a
#: hang, and the matrix fails with a typed HangError rather than
#: wedging the suite.
CHAOS_BUDGET_SECONDS = 180.0

SPECS = {
    "settop": build_settop_spec,
    "tv": build_tv_decoder_spec,
}

#: The matrix.  ``kind`` selects the runner; ``expect`` the trichotomy
#: branch a scenario must land in (``recover`` = typed failure then
#: byte-identical recovery; ``complete`` = the fault is absorbed and
#: the run completes identically; ``gap`` = sound degraded result).
SCENARIOS = [
    # --- disk: checkpoint journal (torn / ENOSPC / fsync) ----------------
    ("journal-torn-mid-settop", "journal", "settop",
     {"disk": {6: "torn"}}, {}, "recover"),
    ("journal-torn-mid-tv", "journal", "tv",
     {"disk": {6: "torn"}}, {}, "recover"),
    ("journal-torn-header-settop", "journal", "settop",
     {"disk": {1: "torn"}}, {}, "recover"),
    ("journal-torn-header-tv", "journal", "tv",
     {"disk": {1: "torn"}}, {}, "recover"),
    ("journal-enospc-settop", "journal", "settop",
     {"disk": {6: "enospc"}}, {}, "recover"),
    ("journal-enospc-tv", "journal", "tv",
     {"disk": {6: "enospc"}}, {}, "recover"),
    ("journal-enospc-header-settop", "journal", "settop",
     {"disk": {1: "enospc"}}, {}, "recover"),
    ("journal-fsync-settop", "journal", "settop",
     {"disk": {1: "fsync_fail"}}, {}, "recover"),
    ("journal-fsync-tv", "journal", "tv",
     {"disk": {1: "fsync_fail"}}, {}, "recover"),
    # --- disk: shard manifest --------------------------------------------
    ("manifest-torn-settop", "manifest", "settop",
     {"disk": {1: "torn"}}, {}, "recover"),
    ("manifest-torn-tv", "manifest", "tv",
     {"disk": {1: "torn"}}, {}, "recover"),
    ("manifest-enospc-settop", "manifest", "settop",
     {"disk": {1: "enospc"}}, {}, "recover"),
    ("manifest-fsync-settop", "manifest", "settop",
     {"disk": {1: "fsync_fail"}}, {}, "recover"),
    # --- net: shard wire protocol ----------------------------------------
    # Coordinator-side send order: shard 0 hello=#1 run=#2, then the
    # next attempt / shard continues the per-site call count.
    ("net-delay-hello-settop", "net", "settop",
     {"net": {1: "delay"}}, {"delay_seconds": 0.2}, "complete"),
    ("net-delay-run-settop", "net", "settop",
     {"net": {2: "delay"}}, {"delay_seconds": 0.2}, "complete"),
    ("net-stall-run-settop", "net", "settop",
     {"net": {2: "stall"}}, {"stall_seconds": 0.4}, "complete"),
    ("net-truncate-hello-settop", "net", "settop",
     {"net": {1: "truncate"}}, {}, "complete"),
    ("net-truncate-run-settop", "net", "settop",
     {"net": {2: "truncate"}}, {}, "complete"),
    ("net-truncate-run-tv", "net", "tv",
     {"net": {2: "truncate"}}, {}, "complete"),
    ("net-reset-run-settop", "net", "settop",
     {"net": {2: "reset"}}, {}, "complete"),
    ("net-duplicate-run-settop", "net", "settop",
     {"net": {2: "duplicate"}}, {}, "complete"),
    ("net-reset-no-retry-settop", "net", "settop",
     {"net": {1: "reset"}}, {"retry_attempts": 1}, "gap"),
]

_SOLO_CACHE = {}


def solo(name):
    if name not in _SOLO_CACHE:
        _SOLO_CACHE[name] = explore(SPECS[name]())
    return _SOLO_CACHE[name]


def fingerprint(result):
    points = [
        (sorted(p.units), p.cost, p.flexibility, sorted(p.clusters))
        for p in result.points
    ]
    return points, result.max_flexibility_bound


def assert_identical(result, name):
    __tracebackhint__ = True
    assert result.completed, "recovery must complete the run"
    assert fingerprint(result) == fingerprint(solo(name)), (
        "the recovered front diverged from the undisturbed run"
    )


def assert_sound_gap(result, name):
    assert not result.completed
    assert result.gap is not None
    assert verify_gap(result, solo(name)) == [], (
        "the degraded result's optimality gap is unsound"
    )


def run_journal_scenario(name, schedule, extra, expect, tmp_path):
    """Inject at the checkpoint-journal seam of a solo explore."""
    spec = SPECS[name]()
    path = str(tmp_path / "run.ckpt")
    plan = FaultPlan(schedule=schedule, **extra)
    with pytest.raises((SimulatedCrash, CheckpointError)):
        with inject(plan):
            explore(spec, checkpoint=path, checkpoint_every=8)
    assert plan.log, "the scheduled fault never fired"
    # Fault-free recovery: resume the surviving journal prefix, or —
    # when the journal never got far enough to resume — start fresh.
    try:
        result = resume_explore(path)
    except CheckpointError:
        result = explore(
            spec, checkpoint=str(tmp_path / "fresh.ckpt"),
            checkpoint_every=8,
        )
    assert_identical(result, name)


def run_manifest_scenario(name, schedule, extra, expect, tmp_path):
    """Inject at the shard-manifest seam of a sharded explore."""
    spec = SPECS[name]()
    workdir = str(tmp_path / "coord")
    plan = FaultPlan(schedule=schedule, **extra)
    with pytest.raises((SimulatedCrash, SerializationError)):
        with inject(plan):
            explore_sharded(
                spec, shards=2, mode="inline", workdir=workdir,
                engine="compiled",
            )
    assert plan.log, "the scheduled fault never fired"
    # A half-written or undurable manifest must never anchor a resume;
    # the clean rerun repartitions from scratch.
    sharded = explore_sharded(
        spec, shards=2, mode="inline", workdir=workdir, resume=False,
        engine="compiled",
    )
    assert_identical(sharded.result, name)


def run_net_scenario(name, schedule, extra, expect, tmp_path):
    """Inject at the wire seam of a remote sharded explore."""
    extra = dict(extra)
    retry_attempts = extra.pop("retry_attempts", 3)
    spec = SPECS[name]()
    plan = FaultPlan(schedule=schedule, **extra)
    process, port = start_worker(str(tmp_path / "worker"))
    try:
        with inject(plan):
            sharded = explore_sharded(
                spec,
                shards=2,
                strategy="band",
                mode="remote",
                workers=[f"127.0.0.1:{port}"],
                workdir=str(tmp_path / "coord"),
                engine="compiled",
                retry_attempts=retry_attempts,
                retry_delay=0.05,
            )
    finally:
        process.kill()
        process.wait(timeout=30)
    assert plan.log, "the scheduled fault never fired"
    if expect == "complete":
        assert_identical(sharded.result, name)
    else:
        assert_sound_gap(sharded.result, name)
        assert len(sharded.lost_shards) == 1
        lost = [o for o in sharded.outcomes if o.lost]
        assert lost[0].failures[0]["kind"] == "dead"


RUNNERS = {
    "journal": run_journal_scenario,
    "manifest": run_manifest_scenario,
    "net": run_net_scenario,
}


def test_matrix_is_large_enough():
    """The acceptance bar: at least twenty distinct chaos scenarios."""
    assert len(SCENARIOS) >= 20
    assert len({s[0] for s in SCENARIOS}) == len(SCENARIOS)


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_chaos_trichotomy(scenario, tmp_path):
    scenario_id, kind, name, schedule, extra, expect = scenario
    run_bounded(
        lambda: RUNNERS[kind](name, schedule, extra, expect, tmp_path),
        CHAOS_BUDGET_SECONDS,
        name=f"chaos scenario {scenario_id}",
    )
