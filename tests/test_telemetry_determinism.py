"""Differential proof: telemetry never touches the logical channel.

The telemetry plane (resource sampler + phase profiler + metric
registry) lives strictly on the wall-clock side of the determinism
seam, so attaching it must change *nothing* observable: the result
document, the progress-event stream and the logical trace fingerprint
are byte-identical with telemetry on vs off — across the serial loop,
the batched pool, the exploration service and sharded dispatch, over a
12-seed random corpus plus the settop case study.
"""

import json
import tempfile
import threading

import pytest

from .randspec import random_spec
from repro.casestudies import build_settop_spec
from repro.core import explore
from repro.distributed import explore_sharded
from repro.distributed.worker import serve
from repro.io.result_io import result_to_dict
from repro.service import ExplorationService
from repro.telemetry import FleetTelemetry, PhaseProfiler, Telemetry
from repro.trace import Tracer, trace_fingerprint

#: The differential corpus (satellite requirement: 12 seeds).
SEEDS = list(range(12))


def result_doc(result):
    """The full result document minus wall-clock diagnostics."""
    document = result_to_dict(result)
    document.get("stats", {}).pop("elapsed_seconds", None)
    # Cache diagnostics legitimately vary with memo temperature.
    document.pop("cache", None)
    return json.dumps(document, sort_keys=True)


def strip_events(events):
    """Progress events minus the wall-clock fields."""
    stripped = []
    for event in events:
        clean = {
            k: v for k, v in event.items()
            if k not in ("t", "elapsed_seconds")
        }
        clean.get("stats", {}).pop("elapsed_seconds", None)
        stripped.append(json.dumps(clean, sort_keys=True))
    return stripped


def observed_run(spec, telemetry, **kwargs):
    """One run's (result doc, stripped events, trace fingerprint)."""
    events = []
    tracer = Tracer(level="audit", trace_id="differential")
    result = explore(
        spec,
        progress=events.append,
        progress_every=3,
        tracer=tracer,
        telemetry=telemetry,
        **kwargs,
    )
    return (
        result_doc(result),
        strip_events(events),
        trace_fingerprint(tracer.all_records()),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_serial_differential(seed):
    spec = random_spec(seed)
    off = observed_run(spec, None)
    on = observed_run(spec, Telemetry())
    assert on == off, f"seed {seed}: telemetry changed the serial run"


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_differential(seed):
    spec = random_spec(seed)
    off = observed_run(spec, None, parallel="thread", workers=2,
                       batch_size=4)
    on = observed_run(spec, Telemetry(), parallel="thread", workers=2,
                      batch_size=4)
    assert on == off, f"seed {seed}: telemetry changed the batched run"


def test_bare_profiler_satisfies_the_seam():
    """A PhaseProfiler alone (no registry/sampler) is also accepted."""
    spec = build_settop_spec()
    profiler = PhaseProfiler()
    off = observed_run(spec, None)
    on = observed_run(spec, profiler)
    assert on == off
    assert profiler.totals()["evaluate"]["calls"] > 0


def test_settop_phase_charges_do_not_leak_into_trace():
    """The profiler observes real phases while the tracer's own
    phase_totals and fingerprint stay exactly what they were."""
    spec = build_settop_spec()
    baseline_tracer = Tracer(level="audit", trace_id="t")
    explore(spec, tracer=baseline_tracer)

    telemetry = Telemetry()
    observed_tracer = Tracer(level="audit", trace_id="t")
    explore(spec, tracer=observed_tracer, telemetry=telemetry)

    assert trace_fingerprint(
        observed_tracer.all_records()
    ) == trace_fingerprint(baseline_tracer.all_records())
    phases = telemetry.phase_totals()
    assert phases["evaluate"]["calls"] > 0
    assert phases["estimate"]["calls"] > 0
    assert phases["binding"]["calls"] > 0


def service_doc(result):
    """Like :func:`result_doc`, minus checkpoint accounting — the
    service always journals its slices (the repo's service tests
    document that slicing legitimately changes checkpoint statistics,
    never the outcome)."""
    document = result_to_dict(result)
    document.get("stats", {}).pop("elapsed_seconds", None)
    document.get("stats", {}).pop("checkpoints_written", None)
    document.pop("cache", None)
    return json.dumps(document, sort_keys=True)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_service_differential(seed, tmp_path):
    """A service slice (always telemetry-instrumented now) reproduces
    the bare, uninstrumented explore byte-for-byte."""
    spec = random_spec(seed)
    service = ExplorationService(
        str(tmp_path), slice_evaluations=10**6
    )
    try:
        job = service.submit(spec)
        service.run()
        observed = service_doc(service.result(job.job_id))
    finally:
        service.close()
    assert observed == service_doc(explore(spec)), (
        f"seed {seed}: service telemetry changed the result"
    )


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_sharded_inline_differential(seed, tmp_path):
    spec = random_spec(seed)
    telemetry = FleetTelemetry()
    off = explore_sharded(
        spec, shards=2, mode="inline",
        workdir=str(tmp_path / "off"),
    )
    on = explore_sharded(
        spec, shards=2, mode="inline",
        workdir=str(tmp_path / "on"), telemetry=telemetry,
    )
    assert result_doc(on.result) == result_doc(off.result), (
        f"seed {seed}: fleet telemetry changed the sharded result"
    )
    view = telemetry.as_dict()
    assert view["fleet"]["shards"] == 2
    assert view["fleet"]["shards_completed"] == 2


def worker_in_thread(directory, max_requests):
    bound = {}
    ready_event = threading.Event()

    def ready(address):
        bound["port"] = address[1]
        ready_event.set()

    thread = threading.Thread(
        target=serve,
        args=(directory,),
        kwargs={"max_requests": max_requests, "ready": ready},
        daemon=True,
    )
    thread.start()
    assert ready_event.wait(timeout=10)
    return bound["port"], thread


def test_remote_differential_with_worker_resources(tmp_path):
    """A real wire run: the worker's resource snapshots ride the
    existing frames into FleetTelemetry, and the merged result still
    matches the solo run exactly."""
    spec = build_settop_spec()
    solo = result_doc(explore(spec))
    port, thread = worker_in_thread(str(tmp_path / "worker"), 2)
    telemetry = FleetTelemetry()
    sharded = explore_sharded(
        spec, shards=2, mode="remote",
        workers=[f"127.0.0.1:{port}"],
        workdir=str(tmp_path / "coord"),
        heartbeat_seconds=0.05,
        telemetry=telemetry,
    )
    thread.join(timeout=10)
    assert result_doc(sharded.result) == solo
    view = telemetry.as_dict()
    assert view["fleet"]["shards_completed"] == 2
    # The result frame always carries a final snapshot, so every shard
    # row has worker resources even if no heartbeat fired in time.
    for state in view["shards"].values():
        assert state["resources"].get("rss_max_bytes", 0) > 0
    assert view["fleet"]["rss_max_bytes"] > 0
    registry = telemetry.registry
    assert registry.validate(strict=True) == []
    assert registry.as_dict()["repro_fleet_shards_completed"][
        "value"
    ] == 2
