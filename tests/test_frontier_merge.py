"""Tests of front diffing and specification merging."""

import pytest

from repro.analysis import (
    diff_fronts,
    diff_table,
    merge_specifications,
    shared_platform_saving,
    summarize_diff,
    with_unit_costs,
)
from repro.casestudies import build_settop_spec
from repro.core import explore, max_flexibility
from repro.errors import ModelError
from repro.hgraph import new_cluster
from repro.spec import ArchitectureGraph, ProblemGraph, SpecificationGraph


def small_product(tag, proc_cost=100.0, extra_alt=False):
    """A tiny single-product spec with unique, tagged names."""
    problem = ProblemGraph(f"P_{tag}")
    interface = problem.add_interface(f"I_{tag}")
    alternatives = [f"g_{tag}_0", f"g_{tag}_1"]
    if extra_alt:
        alternatives.append(f"g_{tag}_2")
    for i, name in enumerate(alternatives):
        alt = new_cluster(interface, name)
        alt.add_vertex(f"p_{tag}_{i}")
    arch = ArchitectureGraph(f"A_{tag}")
    arch.add_resource(f"cpu_{tag}", cost=proc_cost)
    spec = SpecificationGraph(problem, arch, name=f"S_{tag}")
    for i in range(len(alternatives)):
        spec.map(f"p_{tag}_{i}", f"cpu_{tag}", 10.0 + i)
    return spec.freeze()


class TestDiffFronts:
    def test_cheaper_and_dearer(self):
        baseline = [(100.0, 2.0), (200.0, 5.0)]
        variant = [(80.0, 2.0), (250.0, 5.0)]
        changes = {c.flexibility: c for c in diff_fronts(baseline, variant)}
        assert changes[2.0].verdict == "cheaper"
        assert changes[2.0].delta == -20.0
        assert changes[5.0].verdict == "dearer"

    def test_appeared_disappeared(self):
        baseline = [(100.0, 2.0)]
        variant = [(100.0, 2.0), (300.0, 7.0)]
        changes = {c.flexibility: c for c in diff_fronts(baseline, variant)}
        assert changes[7.0].verdict == "appeared"
        back = {c.flexibility: c for c in diff_fronts(variant, baseline)}
        assert back[7.0].verdict == "disappeared"

    def test_same(self):
        front = [(100.0, 2.0)]
        assert all(
            c.verdict == "same" for c in diff_fronts(front, front)
        )

    def test_diff_on_real_scenario(self):
        """FPGA price hike: the D3-dependent levels get dearer."""
        spec = build_settop_spec()
        variant = with_unit_costs(spec, {"D3": 120.0})
        changes = diff_fronts(
            explore(spec).front(), explore(variant).front()
        )
        by_level = {c.flexibility: c for c in changes}
        assert by_level[8.0].verdict == "dearer"
        assert by_level[8.0].delta == 60.0
        assert by_level[2.0].verdict == "same"
        histogram = summarize_diff(changes)
        assert histogram["dearer"] >= 2

    def test_diff_table_renders(self):
        text = diff_table(
            diff_fronts([(100.0, 2.0)], [(90.0, 2.0), (200.0, 4.0)])
        )
        assert "cheaper" in text and "appeared" in text


class TestMerge:
    def test_merged_structure(self):
        merged = merge_specifications(
            small_product("a"), small_product("b"), name="family"
        )
        assert merged.name == "family"
        assert {"I_a", "I_b"} <= set(merged.p_index.interfaces)
        assert {"cpu_a", "cpu_b"} <= set(merged.units.names())
        assert len(merged.mappings) == 4

    def test_flexibility_additive_minus_one(self):
        a = small_product("a")
        b = small_product("b", extra_alt=True)
        merged = merge_specifications(a, b)
        assert max_flexibility(merged.problem) == (
            max_flexibility(a.problem) + max_flexibility(b.problem) - 1
        )

    def test_rule4_requires_both_products(self):
        from repro.spec import supports_problem

        merged = merge_specifications(small_product("a"), small_product("b"))
        assert not supports_problem(merged, {"cpu_a"})
        assert supports_problem(merged, {"cpu_a", "cpu_b"})

    def test_name_collision_rejected(self):
        with pytest.raises(ModelError):
            merge_specifications(small_product("a"), small_product("a"))

    def test_merged_front(self):
        merged = merge_specifications(
            small_product("a", proc_cost=100.0),
            small_product("b", proc_cost=60.0),
        )
        result = explore(merged)
        # both processors are mandatory -> single point at 160
        assert result.front() == [(160.0, 3.0)]

    def test_shared_platform_saving_zero_without_sharing(self):
        """Disjoint resources: the merge saves nothing."""
        separate, merged_cost, saving = shared_platform_saving(
            small_product("a"), small_product("b")
        )
        assert separate == merged_cost
        assert saving == 0.0

    def test_shared_platform_saving_positive_with_sharing(self):
        """Both products can share one processor when the second
        product's processes also map onto it."""
        a = small_product("a")
        # product b's processes can ALSO run on cpu_a
        problem = ProblemGraph("P_b")
        interface = problem.add_interface("I_b")
        for i in range(2):
            alt = new_cluster(interface, f"g_b_{i}")
            alt.add_vertex(f"p_b_{i}")
        arch = ArchitectureGraph("A_b")
        arch.add_resource("cpu_b", cost=60.0)
        b = SpecificationGraph(problem, arch, name="S_b")
        for i in range(2):
            b.map(f"p_b_{i}", "cpu_b", 10.0)
        b.freeze()
        merged = merge_specifications(a, b)
        # add cross-mappings by rebuilding at document level
        from repro.io import spec_from_dict, spec_to_dict

        doc = spec_to_dict(merged)
        doc["mappings"].extend(
            {"process": f"p_b_{i}", "resource": "cpu_a",
             "latency": 12.0, "attrs": {}}
            for i in range(2)
        )
        shared = spec_from_dict(doc)
        result = explore(shared)
        # cpu_a alone now hosts everything: cheaper than 160
        assert result.front()[0] == (100.0, 3.0)


# --- property-based shard-merge tests --------------------------------
#
# The distributed subsystem (repro.distributed) claims that *any*
# disjoint, exhaustive partition of the allocation space — including
# adversarially skewed ones with empty shards — replay-merges to the
# byte-identical single-host result.  Hypothesis searches that claim
# over the seeded random-spec corpus and randomly drawn partitions.

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from .randspec import random_spec
from repro.distributed import (
    Shard,
    ShardRun,
    make_partition,
    merge_shard_runs,
    validate_partition,
)
from repro.core.explorer import prepare_exploration
from repro.errors import ExplorationError
from repro.io.result_io import result_to_dict
from repro.parallel import EvaluationCache, explore_batched


def _result_doc(result):
    document = result_to_dict(result)
    document.get("stats", {}).pop("elapsed_seconds", None)
    document.pop("cache", None)
    return json.dumps(document, sort_keys=True)


def _merge_partition(spec, shards, **options):
    runs = []
    for shard in shards:
        cache = EvaluationCache()
        explore_batched(
            spec, shard=shard, cache=cache, parallel="serial",
            engine="compiled", **options,
        )
        runs.append(ShardRun(shard, cache, None, True))
    return merge_shard_runs(spec, runs, engine="compiled", **options)


_SOLO_DOCS = {}


def _solo_doc(seed, **options):
    key = (seed, tuple(sorted(options.items())))
    if key not in _SOLO_DOCS:
        _SOLO_DOCS[key] = _result_doc(
            explore(random_spec(seed), engine="compiled", **options)
        )
    return _SOLO_DOCS[key]


class TestShardMergeProperties:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 29),
        boundaries=st.lists(
            st.floats(0.0, 2500.0, allow_nan=False), max_size=6
        ),
    )
    def test_random_band_partitions(self, seed, boundaries):
        """Arbitrary cost boundaries — skewed, duplicated (empty
        bands), beyond the dearest allocation — all merge exactly."""
        spec = random_spec(seed)
        edges = sorted(boundaries)
        count = len(edges) + 1
        shards, lo = [], 0.0
        for i, edge in enumerate(edges):
            hi = max(lo, edge)
            shards.append(Shard("band", i, count, cost_lo=lo, cost_hi=hi))
            lo = hi
        shards.append(
            Shard("band", count - 1, count, cost_lo=lo, cost_hi=None)
        )
        shards = validate_partition(shards)
        merged = _merge_partition(spec, shards)
        assert _result_doc(merged) == _solo_doc(seed)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 29), data=st.data())
    def test_random_prefix_partitions(self, seed, data):
        """Prefix partitions over a randomly chosen unit subset."""
        spec = random_spec(seed)
        setup = prepare_exploration(
            spec, None, None, max_cost=0.0, weighted=False
        )
        extras = sorted(setup.extra_names)
        if not extras:
            return
        width = data.draw(
            st.integers(1, min(2, len(extras))), label="width"
        )
        units = tuple(
            data.draw(
                st.permutations(extras), label="units"
            )[:width]
        )
        count = 1 << width
        shards = validate_partition([
            Shard("prefix", pattern, count,
                  prefix_units=units, pattern=pattern)
            for pattern in range(count)
        ])
        merged = _merge_partition(spec, shards)
        assert _result_doc(merged) == _solo_doc(seed)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 29),
        count=st.sampled_from([1, 2, 4, 8]),
        strategy=st.sampled_from(["band", "prefix"]),
        keep_ties=st.booleans(),
    )
    def test_builtin_partitions_with_options(
        self, seed, count, strategy, keep_ties
    ):
        """The built-in partitioner across the option that most
        perturbs incumbent-dependent control flow."""
        spec = random_spec(seed)
        try:
            shards = make_partition(spec, count, strategy)
        except ExplorationError as error:
            assert "cannot fix" in str(error)
            return
        merged = _merge_partition(spec, shards, keep_ties=keep_ties)
        assert _result_doc(merged) == _solo_doc(seed, keep_ties=keep_ties)
