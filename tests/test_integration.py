"""End-to-end integration tests across subsystem boundaries.

Each test exercises a realistic multi-step workflow: file round-trips
feeding exploration, exploration feeding the adaptive runtime, upgrades
feeding failure analysis, and the CLI gluing it together.
"""

import io

import pytest

from repro import (
    AdaptiveSimulator,
    build_settop_spec,
    dump_result,
    dump_spec,
    explore,
    explore_upgrades,
    load_result,
    load_spec,
    single_failure_report,
    upgrade_preserves_base,
)
from repro.cli import main as cli_main
from repro.core import evaluate_allocation


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


class TestFileDrivenWorkflow:
    def test_save_explore_reload_simulate(self, settop, tmp_path):
        """spec JSON -> explore -> result JSON -> adaptive simulation."""
        spec_path = tmp_path / "spec.json"
        result_path = tmp_path / "result.json"
        dump_spec(settop, str(spec_path))
        reloaded_spec = load_spec(str(spec_path))
        result = explore(reloaded_spec)
        dump_result(result, str(result_path))
        reloaded_result = load_result(str(result_path))
        # drive the runtime purely from reloaded artifacts
        flagship = reloaded_result.points[-1]
        simulator = AdaptiveSimulator(reloaded_spec, flagship)
        assert simulator.request(0.0, {"gamma_D3"}).accepted
        assert simulator.request(10.0, {"gamma_G"}).accepted

    def test_cli_pipeline(self, settop, tmp_path):
        """demo -> explore --json -> load_result in-process."""
        spec_path = tmp_path / "s.json"
        result_path = tmp_path / "r.json"
        out = io.StringIO()
        assert cli_main(
            ["demo", "settop", "--save", str(spec_path)], out=out
        ) == 0
        assert cli_main(
            [
                "explore", str(spec_path), "--json", str(result_path),
            ],
            out=out,
        ) == 0
        result = load_result(str(result_path))
        assert result.front()[-1] == (430.0, 8.0)


class TestDesignLifecycle:
    def test_ship_upgrade_fail_over(self, settop):
        """Ship the cheap box, upgrade it, then lose a unit."""
        upgrades = explore_upgrades(settop, {"muP2"})
        base = upgrades.base
        flagship = upgrades.points[-1]
        assert upgrade_preserves_base(
            settop, base, frozenset(flagship.units)
        )
        report = single_failure_report(settop, flagship)
        survivable = [i for i in report if not i.total_outage]
        # after any survivable failure the shipped clusters still run
        for impact in survivable:
            assert impact.survivor is not None
            if base.clusters <= impact.survivor.clusters:
                # the shipped modes survived this failure entirely
                simulator = AdaptiveSimulator(settop, impact.survivor)
                assert simulator.request(0.0, {"gamma_I"}).accepted

    def test_minimal_mode_table_drives_runtime(self, settop):
        """Minimal coverage is enough for every implemented request."""
        implementation = evaluate_allocation(
            settop, {"muP2", "C1", "D3", "G1", "U2"}
        )
        minimal = implementation.minimal_coverage()
        from repro.core.result import Implementation

        slim = Implementation(
            implementation.units,
            implementation.cost,
            implementation.flexibility,
            implementation.clusters,
            minimal,
        )
        simulator = AdaptiveSimulator(settop, slim)
        when = 0.0
        for cluster in sorted(implementation.clusters):
            change = simulator.request(when, {cluster})
            assert change.accepted, cluster
            when += 10.0

    def test_weighted_and_plain_agree_on_allocations(self, settop):
        """Unit weights: identical fronts, identical allocations."""
        plain = explore(settop)
        weighted = explore(settop, weighted=True)
        assert [frozenset(p.units) for p in plain.points] == [
            frozenset(p.units) for p in weighted.points
        ]
