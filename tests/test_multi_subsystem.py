"""Concurrent subsystems: multiple top-level interfaces.

The Set-Top case study hides everything behind one top-level interface
(one application at a time), but the paper's model — like Figure 1 —
allows several top-level interfaces that are all active simultaneously
(activation rule 4).  These tests build a gateway with two always-on
subsystems sharing resources, which exercises utilisation summing
across *different* periods on the same processor (true rate-monotonic
load) and cluster selection in independent subtrees.
"""

import pytest

from repro.activation import flatten
from repro.core import (
    evaluate_allocation,
    exhaustive_front,
    explore,
    max_flexibility,
)
from repro.hgraph import new_cluster
from repro.spec import ArchitectureGraph, ProblemGraph, SpecificationGraph
from repro.timing import utilization_by_resource


def build_gateway():
    """A smart gateway: routing (always on) + metering (always on)."""
    problem = ProblemGraph("Gateway")
    # subsystem 1: packet routing, 100 us period
    routing = problem.add_interface("I_Route", period=100.0)
    for name, proc in (
        ("gamma_basic", "P_route_basic"),
        ("gamma_qos", "P_route_qos"),
    ):
        alt = new_cluster(routing, name, period=100.0)
        alt.add_vertex(proc)
    # subsystem 2: metering, 400 us period
    metering = problem.add_interface("I_Meter", period=400.0)
    for name, proc in (
        ("gamma_sum", "P_meter_sum"),
        ("gamma_hist", "P_meter_hist"),
    ):
        alt = new_cluster(metering, name, period=400.0)
        alt.add_vertex(proc)

    arch = ArchitectureGraph("Gateway_arch")
    arch.add_resource("cpu", cost=100.0)
    arch.add_resource("npu", cost=60.0)
    arch.add_bus("link", 10.0, "cpu", "npu")

    spec = SpecificationGraph(problem, arch, name="Gateway_spec")
    spec.map_row("P_route_basic", {"cpu": 40.0, "npu": 15.0})
    spec.map_row("P_route_qos", {"cpu": 65.0, "npu": 25.0})
    spec.map_row("P_meter_sum", {"cpu": 80.0})
    spec.map_row("P_meter_hist", {"cpu": 180.0})
    return spec.freeze()


@pytest.fixture(scope="module")
def gateway():
    return build_gateway()


class TestModel:
    def test_both_interfaces_always_active(self, gateway):
        flat = flatten(
            gateway.problem,
            {"I_Route": "gamma_basic", "I_Meter": "gamma_sum"},
        )
        assert set(flat.leaves) == {"P_route_basic", "P_meter_sum"}

    def test_max_flexibility_multi_interface(self, gateway):
        # two interfaces at top level: 2 + 2 - (2 - 1) = 3
        assert max_flexibility(gateway.problem) == 3.0

    def test_cross_period_utilization_sums(self, gateway):
        """Different periods on one CPU: true RM-style load."""
        flat = flatten(
            gateway.problem,
            {"I_Route": "gamma_basic", "I_Meter": "gamma_sum"},
        )
        binding = {"P_route_basic": "cpu", "P_meter_sum": "cpu"}
        util = utilization_by_resource(gateway, flat, binding)
        assert util["cpu"] == pytest.approx(40 / 100 + 80 / 400)


class TestExploration:
    def test_cpu_alone_cannot_host_everything(self, gateway):
        impl = evaluate_allocation(gateway, {"cpu"})
        assert impl is not None
        # qos routing + histogram metering both on the CPU blow 69%:
        # 65/100 + 180/400 = 1.1
        assert impl.flexibility < 3.0
        # but basic + sum fits: 0.4 + 0.2 = 0.6
        assert {"gamma_basic", "gamma_sum"} <= impl.clusters

    def test_npu_offload_unlocks_full_flexibility(self, gateway):
        impl = evaluate_allocation(gateway, {"cpu", "npu", "link"})
        assert impl is not None
        assert impl.flexibility == 3.0

    def test_front_matches_exhaustive(self, gateway):
        result = explore(gateway)
        assert result.front() == [
            impl.point for impl in exhaustive_front(gateway)
        ]

    def test_every_ecs_selects_both_subsystems(self, gateway):
        impl = evaluate_allocation(gateway, {"cpu", "npu", "link"})
        for record in impl.coverage:
            assert "I_Route" in record.selection
            assert "I_Meter" in record.selection

    def test_rule4_demands_both_subsystems_supportable(self, gateway):
        """An allocation hosting only one subsystem is impossible."""
        from repro.spec import supports_problem

        assert not supports_problem(gateway, {"npu"})  # no metering host
        assert supports_problem(gateway, {"cpu"})
