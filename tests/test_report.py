"""Tests of table rendering and ASCII plotting."""

import pytest

from repro.casestudies import (
    TABLE1,
    TABLE1_PROCESS_ORDER,
    TABLE1_RESOURCE_ORDER,
    build_settop_spec,
)
from repro.core import explore
from repro.report import (
    ascii_scatter,
    format_table,
    mapping_table,
    pareto_table,
    staircase,
    stats_table,
    tradeoff_plot,
)


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def result(settop):
    return explore(settop)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", "1"], ["yyyy", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_numbers_right_aligned(self):
        text = format_table(["name", "v"], [["a", "5"], ["b", "55"]])
        lines = text.splitlines()
        assert lines[2].endswith(" 5")
        assert lines[3].endswith("55")


class TestMappingTable:
    def test_regenerates_table1(self, settop):
        text = mapping_table(
            settop, TABLE1_PROCESS_ORDER, TABLE1_RESOURCE_ORDER
        )
        lines = text.splitlines()
        assert len(lines) == 2 + len(TABLE1_PROCESS_ORDER)
        # spot-check cells quoted in the paper
        row_pu1 = next(l for l in lines if l.startswith("P_U1"))
        cells = row_pu1.split()
        assert cells[1:] == ["40", "45", "15", "12", "10", "-", "-", "-"]
        row_pd3 = next(l for l in lines if l.startswith("P_D3"))
        assert row_pd3.split()[1:] == ["-", "-", "-", "-", "-", "63", "-", "-"]

    def test_every_cell_matches_model(self, settop):
        text = mapping_table(
            settop, TABLE1_PROCESS_ORDER, TABLE1_RESOURCE_ORDER
        )
        lines = text.splitlines()[2:]
        for process, line in zip(TABLE1_PROCESS_ORDER, lines):
            cells = line.split()[1:]
            for resource, cell in zip(TABLE1_RESOURCE_ORDER, cells):
                expected = TABLE1[process].get(resource)
                if expected is None:
                    assert cell == "-"
                else:
                    assert float(cell) == expected


class TestParetoTable:
    def test_contains_all_points(self, result):
        text = pareto_table(result)
        for cost, flexibility in result.front():
            assert f"${cost:g}" in text
        assert text.count("\n") == 2 + len(result.points)

    def test_stats_table(self, result):
        text = stats_table(result)
        assert "solver invocations" in text
        assert "design space size" in text


class TestPlots:
    def test_scatter_marks_front(self):
        text = ascii_scatter([(1.0, 1.0), (2.0, 2.0), (3.0, 0.5)])
        assert "P" in text  # Pareto markers present
        assert text.count("\n") >= 20

    def test_scatter_empty(self):
        assert "no points" in ascii_scatter([])

    def test_scatter_single_point(self):
        text = ascii_scatter([(1.0, 1.0)])
        assert "P" in text

    def test_tradeoff_plot_skips_zero_flexibility(self, result):
        text = tradeoff_plot(result.front(), [(100.0, 0.0)])
        assert "1/flexibility" in text

    def test_staircase(self, result):
        text = staircase(result.front())
        lines = text.splitlines()
        assert len(lines) == len(result.points)
        assert all("#" in line for line in lines)
        assert staircase([]) == "(empty front)\n"
