"""Tests of the command-line interface."""

import io
import json

import pytest

from repro.cli import EXIT_LINT, EXIT_OK, EXIT_TRUNCATED, main
from repro.io import load_result


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def settop_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "settop.json"
    code, _ = run(["demo", "settop", "--save", str(path)])
    assert code == EXIT_OK
    return str(path)


@pytest.fixture(scope="module")
def tv_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tv.json"
    run(["demo", "tv", "--save", str(path)])
    return str(path)


class TestDemoSynth:
    def test_demo_summary(self):
        code, text = run(["demo", "settop"])
        assert code == EXIT_OK
        assert "max flexibility 8" in text

    def test_demo_save_roundtrip(self, settop_json):
        with open(settop_json) as handle:
            document = json.load(handle)
        assert document["format"] == "repro/specification-graph"

    def test_synth(self, tmp_path):
        path = tmp_path / "synth.json"
        code, text = run(
            ["synth", "--apps", "2", "--accels", "2", "--save", str(path)]
        )
        assert code == EXIT_OK
        assert "design space 2^" in text
        assert path.exists()


class TestLint:
    def test_clean_spec(self, settop_json):
        code, text = run(["lint", settop_json])
        assert code == EXIT_OK

    def test_error_spec_exit_code(self, tmp_path):
        from repro.io import dump_spec
        from repro.spec import (
            ArchitectureGraph, ProblemGraph, make_specification,
        )

        p = ProblemGraph()
        p.add_vertex("a")
        p.add_vertex("b")
        arch = ArchitectureGraph()
        arch.add_resource("r", cost=1)
        spec = make_specification(p, arch, [("a", "r", 1.0)])
        path = tmp_path / "bad.json"
        dump_spec(spec, str(path))
        code, text = run(["lint", str(path)])
        assert code == EXIT_LINT
        assert "unsupportable-problem" in text


class TestTableDot:
    def test_table_settop_order(self, settop_json):
        code, text = run(["table", settop_json])
        assert code == EXIT_OK
        assert text.splitlines()[2].startswith("P_C_I")

    def test_table_generic(self, tv_json):
        code, text = run(["table", tv_json])
        assert code == EXIT_OK
        assert "P_U1" in text

    def test_dot(self, tv_json):
        code, text = run(["dot", tv_json])
        assert code == EXIT_OK
        assert text.startswith("digraph")


class TestExplore:
    def test_explore_prints_front(self, settop_json):
        code, text = run(["explore", settop_json])
        assert code == EXIT_OK
        assert "$430" in text and "$100" in text

    def test_explore_outputs(self, settop_json, tmp_path):
        json_path = tmp_path / "result.json"
        csv_path = tmp_path / "front.csv"
        code, text = run(
            [
                "explore", settop_json,
                "--plot", "--stats",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == EXIT_OK
        assert "1/flexibility" in text
        assert "solver invocations" in text
        result = load_result(str(json_path))
        assert len(result.points) == 6
        csv_text = csv_path.read_text()
        assert csv_text.splitlines()[0] == "cost,flexibility,units,clusters"
        assert len(csv_text.splitlines()) == 7

    def test_explore_svg(self, settop_json, tmp_path):
        svg_path = tmp_path / "front.svg"
        code, _ = run(["explore", settop_json, "--svg", str(svg_path)])
        assert code == EXIT_OK
        assert svg_path.read_text().startswith("<svg")

    def test_explore_keep_ties(self, settop_json):
        code, text = run(["explore", settop_json, "--keep-ties"])
        assert code == EXIT_OK
        assert text.count("$230") >= 3

    def test_explore_max_cost(self, settop_json):
        code, text = run(["explore", settop_json, "--max-cost", "150"])
        assert code == EXIT_OK
        assert "$430" not in text

    def test_explore_no_timing(self, settop_json):
        code, text = run(["explore", settop_json, "--no-timing"])
        assert code == EXIT_OK

    def test_explore_schedule_mode(self, settop_json):
        code, text = run(
            ["explore", settop_json, "--timing-mode", "schedule"]
        )
        assert code == EXIT_OK
        assert "$170" in text  # the schedule-mode f=4 point

    def test_missing_file_error(self):
        code, _ = run(["explore", "/nonexistent/spec.json"])
        assert code == 1


class TestUpgrade:
    def test_upgrade_from_muP2(self, settop_json):
        code, text = run(["upgrade", settop_json, "--base", "muP2"])
        assert code == EXIT_OK
        assert "base: ['muP2']" in text
        assert "upgrade costs:" in text
        assert "+$0" in text

    def test_upgrade_with_budget(self, settop_json):
        code, text = run(
            ["upgrade", settop_json, "--base", "muP2",
             "--max-extra-cost", "130"]
        )
        assert code == EXIT_OK
        assert "$430" not in text

    def test_upgrade_bad_base(self, settop_json):
        code, _ = run(["upgrade", settop_json, "--base", "A1"])
        assert code == 1


class TestFailures:
    def test_failure_report(self, settop_json):
        code, text = run(
            ["failures", settop_json,
             "--allocation", "muP2,A1,C1,C2,D3"]
        )
        assert code == EXIT_OK
        assert "TOTAL OUTAGE" in text  # muP2 failure
        assert "baseline: cost=$430 flexibility=8" in text

    def test_failure_infeasible_allocation(self, settop_json):
        code, _ = run(["failures", settop_json, "--allocation", "A1"])
        assert code == 1


class TestExploreResilience:
    def test_truncated_run_exits_3_with_gap_line(self, settop_json):
        code, text = run(
            ["explore", settop_json, "--max-evaluations", "3"]
        )
        assert code == EXIT_TRUNCATED
        assert "TRUNCATED (max_evaluations)" in text
        assert "costs >= $160" in text
        assert "$430" not in text  # best points not reached yet

    def test_deadline_zero_exits_3(self, settop_json):
        code, text = run(["explore", settop_json, "--deadline", "0"])
        assert code == EXIT_TRUNCATED
        assert "TRUNCATED (deadline)" in text

    def test_complete_run_exits_0(self, settop_json):
        code, text = run(
            ["explore", settop_json, "--max-evaluations", "100000"]
        )
        assert code == EXIT_OK
        assert "TRUNCATED" not in text
        assert "$430" in text

    def test_truncated_json_document_carries_the_gap(
        self, settop_json, tmp_path
    ):
        json_path = tmp_path / "truncated.json"
        code, _ = run(
            ["explore", settop_json, "--max-evaluations", "3",
             "--json", str(json_path)]
        )
        assert code == EXIT_TRUNCATED
        result = load_result(str(json_path))
        assert not result.completed
        assert result.gap.reason == "max_evaluations"

    def test_checkpoint_then_resume(self, settop_json, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        code, text = run(
            ["explore", settop_json, "--checkpoint", str(ckpt),
             "--checkpoint-every", "512"]
        )
        assert code == EXIT_OK
        assert ckpt.exists()
        code, resumed_text = run(["explore", "--resume", str(ckpt)])
        assert code == EXIT_OK
        assert "$430" in resumed_text

    def test_resume_of_truncated_run_finishes_it(
        self, settop_json, tmp_path
    ):
        ckpt = tmp_path / "run.ckpt"
        code, text = run(
            ["explore", settop_json, "--checkpoint", str(ckpt),
             "--checkpoint-every", "64", "--max-evaluations", "3"]
        )
        assert code == EXIT_TRUNCATED
        assert "$430" not in text
        # --resume with a fresh (unlimited) budget completes the front
        code, text = run(
            ["explore", "--resume", str(ckpt),
             "--max-evaluations", "100000"]
        )
        assert code == EXIT_OK
        assert "$430" in text

    def test_resume_with_spec_is_an_error(self, settop_json, tmp_path):
        code, _ = run(
            ["explore", settop_json, "--resume",
             str(tmp_path / "x.ckpt")]
        )
        assert code == 1

    def test_explore_without_spec_or_resume_is_an_error(self):
        code, _ = run(["explore"])
        assert code == 1

    def test_resume_missing_checkpoint_is_an_error(self, tmp_path):
        code, _ = run(["explore", "--resume", str(tmp_path / "no.ckpt")])
        assert code == 1


class TestCacheCommand:
    @pytest.fixture()
    def warm_dir(self, settop_json, tmp_path):
        from repro.store.store import _reset_stores

        _reset_stores()
        store = str(tmp_path / "ws")
        code, _ = run(
            ["explore", settop_json, "--warm-store", store]
        )
        assert code == EXIT_OK
        _reset_stores()
        return store

    def test_explore_warm_store_round_trip(
        self, settop_json, warm_dir, tmp_path
    ):
        from repro.store.store import _reset_stores

        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        code, _ = run(["explore", settop_json, "--json", str(cold_json)])
        assert code == EXIT_OK
        _reset_stores()
        code, _ = run(
            ["explore", settop_json, "--warm-store", warm_dir,
             "--json", str(warm_json)]
        )
        assert code == EXIT_OK
        cold = json.load(open(cold_json))
        warm = json.load(open(warm_json))
        assert warm["cache"]["warm_hits"] > 0
        for document in (cold, warm):
            document["stats"].pop("elapsed_seconds")
            document.pop("cache")
        assert cold == warm

    def test_stats(self, warm_dir):
        code, text = run(["cache", "stats", warm_dir])
        assert code == EXIT_OK
        assert "entries" in text

    def test_stats_json(self, warm_dir):
        code, text = run(["cache", "stats", warm_dir, "--json"])
        assert code == EXIT_OK
        document = json.loads(text)
        assert document["entries"] > 0
        assert len(document["namespaces"]) == 1

    def test_verify_clean(self, warm_dir):
        code, text = run(["cache", "verify", warm_dir])
        assert code == EXIT_OK
        assert "ok" in text

    def test_verify_corrupt_is_loud(self, warm_dir):
        import os

        from repro.store.store import _reset_stores

        [segment] = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(warm_dir)
            for name in names
        ]
        with open(segment, "ab") as handle:
            handle.write(b'{"t": "entry", "p": {}, "c": 1}\njunk\n')
        _reset_stores()
        code, text = run(["cache", "verify", warm_dir])
        assert code == 1
        assert "problem" in text

    def test_gc(self, warm_dir):
        code, text = run(["cache", "gc", warm_dir])
        assert code == EXIT_OK
        assert "compacted 1 namespace" in text
        code, text = run(["cache", "gc", warm_dir, "--max-bytes", "0"])
        assert code == EXIT_OK
        assert "evicted 1" in text

    def test_missing_store_is_an_error(self, tmp_path):
        code, _ = run(["cache", "stats", str(tmp_path / "absent")])
        assert code == 1
