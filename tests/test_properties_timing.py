"""Property-based tests of the timing substrate on random models."""

import random

from hypothesis import given, settings, strategies as st

from repro.activation import flatten
from repro.binding import Allocation, solve_binding
from repro.core import iter_selections
from repro.spec import activatable_clusters, supports_problem
from repro.timing import (
    list_schedule,
    task_set,
    utilization_by_resource,
)

from .randspec import random_spec

seeds = st.integers(min_value=0, max_value=10_000)


def feasible_case(seed, pick):
    """A (spec, flat, binding) triple from the random family, or None."""
    spec = random_spec(seed)
    units = frozenset(spec.units.names())
    if not supports_problem(spec, units):
        return None
    allowed = frozenset(activatable_clusters(spec, units))
    selections = list(iter_selections(spec.problem, spec.p_index, allowed))
    if not selections:
        return None
    selection = selections[pick % len(selections)]
    flat = flatten(spec.problem, selection, spec.p_index)
    binding = solve_binding(
        spec, Allocation(spec, units), flat, check_utilization=False
    )
    if binding is None:
        return None
    return spec, flat, binding.as_dict()


class TestUtilizationProperties:
    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=10**6))
    def test_utilization_is_additive(self, seed, pick):
        case = feasible_case(seed, pick)
        if case is None:
            return
        spec, flat, binding = case
        util = utilization_by_resource(spec, flat, binding)
        tasks = task_set(spec, flat)
        recomputed = {}
        for process, resource in binding.items():
            task = tasks[process]
            if not task.loaded:
                continue
            latency = spec.mappings.latency(process, resource)
            recomputed[resource] = (
                recomputed.get(resource, 0.0) + latency / task.period
            )
        assert set(util) == set(recomputed)
        for resource in util:
            assert abs(util[resource] - recomputed[resource]) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=10**6))
    def test_negligible_and_unconstrained_never_contribute(self, seed, pick):
        case = feasible_case(seed, pick)
        if case is None:
            return
        spec, flat, binding = case
        tasks = task_set(spec, flat)
        loaded_resources = {
            binding[p] for p, t in tasks.items() if t.loaded
        }
        util = utilization_by_resource(spec, flat, binding)
        assert set(util) <= loaded_resources


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=10**6))
    def test_makespan_bounds(self, seed, pick):
        """critical-path length <= makespan <= total work."""
        case = feasible_case(seed, pick)
        if case is None:
            return
        spec, flat, binding = case
        schedule = list_schedule(spec, flat, binding)
        latency = {
            leaf: spec.mappings.latency(leaf, binding[leaf])
            for leaf in flat.leaves
        }
        total = sum(latency.values())
        longest = max(latency.values(), default=0.0)
        assert longest - 1e-9 <= schedule.makespan <= total + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=10**6))
    def test_schedule_respects_dependences(self, seed, pick):
        case = feasible_case(seed, pick)
        if case is None:
            return
        spec, flat, binding = case
        schedule = list_schedule(spec, flat, binding)
        for src, dst in flat.edges:
            assert (
                schedule.entry(src).finish
                <= schedule.entry(dst).start + 1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=10**6))
    def test_schedule_no_resource_overlap(self, seed, pick):
        case = feasible_case(seed, pick)
        if case is None:
            return
        spec, flat, binding = case
        schedule = list_schedule(spec, flat, binding)
        for entries in schedule.by_resource().values():
            for first, second in zip(entries, entries[1:]):
                assert first.finish <= second.start + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=10**6))
    def test_single_resource_makespan_is_total_work(self, seed, pick):
        case = feasible_case(seed, pick)
        if case is None:
            return
        spec, flat, binding = case
        resources = set(binding[leaf] for leaf in flat.leaves)
        if len(resources) != 1:
            return
        schedule = list_schedule(spec, flat, binding)
        total = sum(
            spec.mappings.latency(leaf, binding[leaf])
            for leaf in flat.leaves
        )
        assert abs(schedule.makespan - total) < 1e-9
