"""Differential tests: parallel EXPLORE is exactly the serial EXPLORE.

The headline deliverable of the parallel subsystem is not speed but
*exactness*: ``explore(parallel="thread")`` and ``explore(parallel=
"process")`` must return the same Pareto front, the same allocations,
the same achieved flexibilities, the same statistics (minus wall-clock)
and the same tie-breaking as the serial loop — on every input.  These
tests prove it differentially over a corpus of seeded random
specifications plus the paper's case studies, across batch sizes and
option combinations.
"""

import pytest

from .randspec import random_spec
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import explore
from repro.errors import ExplorationError
from repro.parallel import (
    BATCH_SIZE_DEFAULT,
    EvaluationCache,
    explore_batched,
)

#: The differential corpus: deterministic random specifications.
SEEDS = list(range(30))


def fingerprint(result):
    """Everything observable about an exploration, minus wall-clock."""
    stats = {
        k: v
        for k, v in result.stats.as_dict().items()
        if k != "elapsed_seconds"
    }
    points = [
        (sorted(p.units), p.cost, p.flexibility, sorted(p.clusters))
        for p in result.points
    ]
    return points, stats, result.max_flexibility_bound


@pytest.fixture(scope="module")
def serial_runs():
    """Serial reference runs, one per corpus seed (computed once)."""
    return {seed: explore(random_spec(seed)) for seed in SEEDS}


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_differential_random_corpus(serial_runs, mode):
    """Fronts, flexibility values and stats equal on ~30 random specs."""
    for seed in SEEDS:
        spec = random_spec(seed)
        reference = fingerprint(serial_runs[seed])
        observed = fingerprint(explore(spec, parallel=mode, batch_size=4))
        assert observed == reference, f"seed {seed} diverged under {mode}"


@pytest.mark.parametrize("batch_size", [1, 2, 7, 64])
def test_differential_batch_sizes(serial_runs, batch_size):
    """Batch geometry never leaks into the result."""
    for seed in SEEDS[::5]:
        spec = random_spec(seed)
        observed = fingerprint(
            explore(spec, parallel="thread", batch_size=batch_size)
        )
        assert observed == fingerprint(serial_runs[seed]), (
            f"seed {seed} diverged at batch_size={batch_size}"
        )


@pytest.mark.parametrize("mode", ["thread", "process"])
@pytest.mark.parametrize(
    "options",
    [
        dict(keep_ties=True),
        dict(timing_mode="none"),
        dict(timing_mode="schedule"),
        dict(weighted=True),
        dict(use_estimation=False, max_candidates=300),
        dict(use_possible_filter=False, max_candidates=400),
        dict(prune_comm=False, max_candidates=400),
        dict(max_cost=300.0),
        dict(require_units=["muP2"], forbid_units=["A1"]),
        dict(backend="sat", max_candidates=150),
    ],
    ids=lambda d: "-".join(f"{k}" for k in d),
)
def test_differential_settop_options(mode, options):
    """Every explore() option combination survives parallelisation."""
    spec = build_settop_spec()
    reference = fingerprint(explore(spec, **options))
    observed = fingerprint(
        explore(spec, parallel=mode, batch_size=5, **options)
    )
    assert observed == reference


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_differential_tv_decoder(mode):
    spec = build_tv_decoder_spec()
    assert fingerprint(explore(spec, parallel=mode)) == fingerprint(
        explore(spec)
    )


def test_settop_front_is_the_paper_front():
    """Both pools reproduce the published six-point front."""
    expected = [
        (100.0, 2.0),
        (120.0, 3.0),
        (230.0, 4.0),
        (290.0, 5.0),
        (360.0, 7.0),
        (430.0, 8.0),
    ]
    spec = build_settop_spec()
    for mode in ("serial", "thread", "process"):
        assert explore(spec, parallel=mode).front() == expected


def test_explore_batched_serial_mode_runs_inline():
    """explore_batched(parallel="serial") uses no pool, same results."""
    spec = build_tv_decoder_spec()
    assert fingerprint(explore_batched(spec, parallel="serial")) == (
        fingerprint(explore(spec))
    )


def test_memo_cache_reuse_across_runs():
    """A shared cache accelerates repeat runs without changing results."""
    spec = build_settop_spec()
    cache = EvaluationCache()
    first = explore_batched(spec, parallel="serial", cache=cache)
    assert cache.misses > 0
    hits_before, misses_before = cache.hits, cache.misses
    second = explore_batched(spec, parallel="serial", cache=cache)
    assert fingerprint(first) == fingerprint(second)
    # the second run answered every candidate from the memo: hits grew,
    # no new signature was ever computed
    assert cache.hits > hits_before
    assert cache.misses == misses_before


def test_memo_cache_bounded():
    spec = build_tv_decoder_spec()
    cache = EvaluationCache(max_entries=5)
    explore_batched(spec, parallel="serial", cache=cache)
    assert len(cache) <= 5


def test_default_batch_size_is_sane():
    assert isinstance(BATCH_SIZE_DEFAULT, int) and BATCH_SIZE_DEFAULT >= 1


def test_unknown_parallel_mode_raises():
    spec = build_tv_decoder_spec()
    with pytest.raises(ExplorationError, match="parallel"):
        explore(spec, parallel="gpu")


def test_bad_batch_size_raises():
    spec = build_tv_decoder_spec()
    with pytest.raises(ExplorationError, match="batch_size"):
        explore(spec, parallel="thread", batch_size=0)


def test_workers_argument_respected():
    """Any worker count produces the same result (determinism)."""
    spec = build_tv_decoder_spec()
    reference = fingerprint(explore(spec))
    for workers in (1, 2, 5):
        observed = fingerprint(
            explore(spec, parallel="thread", workers=workers, batch_size=3)
        )
        assert observed == reference
