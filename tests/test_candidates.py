"""Tests for candidate enumeration and the possible-allocation equation."""

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolexpr import evaluate_over_set
from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import (
    AllocationEnumerator,
    has_useless_comm,
    iter_possible_allocations,
    possible_allocation_expr,
)
from repro.spec import supports_problem


@pytest.fixture(scope="module")
def tv_spec():
    return build_tv_decoder_spec()


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


class TestAllocationEnumerator:
    def test_costs_non_decreasing(self, tv_spec):
        costs = [c for c, _ in AllocationEnumerator(tv_spec)]
        assert costs == sorted(costs)

    def test_enumerates_all_subsets_once(self, tv_spec):
        subsets = [u for _, u in AllocationEnumerator(tv_spec)]
        n = len(tv_spec.units)
        assert len(subsets) == 2 ** n - 1  # every non-empty subset
        assert len(set(subsets)) == len(subsets)

    def test_costs_match_catalog(self, tv_spec):
        for cost, units in AllocationEnumerator(tv_spec):
            assert cost == pytest.approx(tv_spec.units.total_cost(units))

    def test_deterministic_tie_break(self, settop):
        first = [u for _, u in zip(range(200), AllocationEnumerator(settop))]
        second = [u for _, u in zip(range(200), AllocationEnumerator(settop))]
        assert [u for _, u in first] == [u for _, u in second]


class TestPossibleExpr:
    def test_agrees_with_set_predicate_exhaustively(self, tv_spec):
        """The boolean equation equals supports_problem on all subsets."""
        expr = possible_allocation_expr(tv_spec)
        names = list(tv_spec.units.names())
        for size in range(len(names) + 1):
            for subset in combinations(names, size):
                assert evaluate_over_set(expr, subset) == supports_problem(
                    tv_spec, set(subset)
                ), subset

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_agrees_on_random_settop_subsets(self, settop, data):
        names = sorted(settop.units.names())
        subset = data.draw(st.sets(st.sampled_from(names)))
        expr = possible_allocation_expr(settop)
        assert evaluate_over_set(expr, subset) == supports_problem(
            settop, subset
        )

    def test_fig2_allocation_set_shape(self, tv_spec):
        """Section 4 lists A = {muP, muP C1, muP C2, ...}: every superset
        of {muP} is possible, and nothing without a processor is."""
        expr = possible_allocation_expr(tv_spec)
        assert evaluate_over_set(expr, {"muP"})
        assert evaluate_over_set(expr, {"muP", "C1"})
        assert evaluate_over_set(expr, {"muP", "C2"})
        assert evaluate_over_set(expr, {"muP", "C1", "C2"})
        assert evaluate_over_set(expr, {"muP", "D3"})
        assert evaluate_over_set(expr, {"muP", "U2"})
        assert evaluate_over_set(expr, set(tv_spec.units.names()))
        assert not evaluate_over_set(expr, {"A", "C1", "C2", "D3"})
        assert not evaluate_over_set(expr, set())

    def test_iter_possible_allocations_ordered_and_filtered(self, tv_spec):
        allocations = list(iter_possible_allocations(tv_spec, max_cost=150))
        costs = [c for c, _ in allocations]
        assert costs == sorted(costs)
        assert all(supports_problem(tv_spec, u) for _, u in allocations)
        assert allocations[0][1] == frozenset({"muP"})

    def test_settop_cheapest_possible_is_muP2(self, settop):
        cost, units = next(iter(iter_possible_allocations(settop)))
        assert units == frozenset({"muP2"})
        assert cost == 100.0


class TestCommPruning:
    def test_single_functional_plus_comm_pruned(self, tv_spec):
        """The paper's case study drops 'a single functional component
        and an arbitrary number of communication resources'."""
        assert has_useless_comm(tv_spec, {"muP", "C1"})
        assert has_useless_comm(tv_spec, {"muP", "C1", "C2"})

    def test_connected_pair_not_pruned(self, tv_spec):
        assert not has_useless_comm(tv_spec, {"muP", "A", "C2"})
        assert not has_useless_comm(tv_spec, {"muP", "D3", "C1"})

    def test_partially_useless_pruned(self, tv_spec):
        # C2 connects muP and the (unallocated) ASIC -> useless
        assert has_useless_comm(tv_spec, {"muP", "D3", "C1", "C2"})

    def test_no_comm_never_pruned(self, tv_spec):
        assert not has_useless_comm(tv_spec, {"muP", "A", "D3"})

    def test_pruning_never_drops_front_points(self, settop):
        """Sanity: pruning must not change the explored front."""
        from repro.core import explore

        with_pruning = explore(settop, prune_comm=True)
        without_pruning = explore(settop, prune_comm=False)
        assert with_pruning.front() == without_pruning.front()
