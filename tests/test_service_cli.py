"""Tests of the service CLI group (serve/submit/jobs/watch) and --version.

The kill test is the real thing: a ``python -m repro serve`` subprocess
is SIGKILL'd mid-run and a restarted serve must resume every job from
its journal to the golden fronts.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.cli import EXIT_ERROR, EXIT_OK, main
from repro.io import job_io


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def settop_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("svc") / "settop.json"
    code, _ = run(["demo", "settop", "--save", str(path)])
    assert code == EXIT_OK
    return str(path)


@pytest.fixture(scope="module")
def tv_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("svc") / "tv.json"
    run(["demo", "tv", "--save", str(path)])
    return str(path)


def golden_front(name):
    path = os.path.join(
        os.path.dirname(__file__), "golden", f"{name}.json"
    )
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return (
        [(p["cost"], p["flexibility"]) for p in document["points"]],
        document["max_flexibility_bound"],
    )


def result_front(directory, job_id):
    path = job_io.result_path(directory, job_id)
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return (
        [(p["cost"], p["flexibility"]) for p in document["points"]],
        document["max_flexibility_bound"],
    )


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {repro.__version__}"

    def test_module_invocation(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            env=_child_env(),
        )
        assert completed.returncode == 0
        assert completed.stdout.strip().endswith(repro.__version__)


def _child_env():
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestSubmitServeJobs:
    def test_full_flow(self, tmp_path, settop_json, tv_json):
        directory = str(tmp_path / "svc")
        code, text = run(
            ["submit", directory, settop_json, "--name", "settop"]
        )
        assert code == EXIT_OK and "spooled" in text
        code, _ = run(
            [
                "submit", directory, tv_json, "--name", "tv",
                "--priority", "2",
            ]
        )
        assert code == EXIT_OK

        code, text = run(["jobs", directory])
        assert code == EXIT_OK
        assert text.count("spooled") >= 2

        code, text = run(
            ["serve", directory, "--workers", "2",
             "--slice-evaluations", "8"]
        )
        assert code == EXIT_OK
        assert "2 completed" in text

        code, text = run(["jobs", directory, "--json"])
        assert code == EXIT_OK
        listed = {row["name"]: row for row in json.loads(text)}
        assert listed["settop"]["state"] == "completed"
        assert listed["tv"]["state"] == "completed"

        settop_id = listed["settop"]["id"]
        assert result_front(directory, settop_id) == golden_front(
            "settop_front"
        )

    def test_watch_replays_events(self, tmp_path, settop_json):
        directory = str(tmp_path / "svc")
        run(["submit", directory, settop_json])
        run(["serve", directory, "--slice-evaluations", "16"])
        code, text = run(["jobs", directory, "--json"])
        job_id = json.loads(text)[0]["id"]
        code, text = run(["watch", directory, job_id])
        assert code == EXIT_OK
        events = [json.loads(line) for line in text.splitlines()]
        assert events[0]["kind"] == "submitted"
        assert events[-1]["kind"] == "completed"
        assert events[-1]["front"]

    def test_watch_unknown_job(self, tmp_path):
        code, _ = run(["watch", str(tmp_path), "j9999"])
        assert code == EXIT_ERROR

    def test_jobs_empty(self, tmp_path):
        code, text = run(["jobs", str(tmp_path)])
        assert code == EXIT_OK
        assert "no jobs" in text

    def test_serve_reports_failures(self, tmp_path, settop_json):
        directory = str(tmp_path / "svc")
        # Spool a submission with an unknown backend: the slice fails.
        from repro.io import load_spec

        job_io.write_submission(
            directory,
            load_spec(settop_json),
            "doomed",
            options={"backend": "nope"},
        )
        code, text = run(["serve", directory])
        assert code == EXIT_ERROR
        assert "1 failed" in text


class TestKillResume:
    def test_sigkill_then_resume_matches_golden(
        self, tmp_path, settop_json, tv_json
    ):
        """SIGKILL a serving process; a restart resumes to goldens."""
        directory = str(tmp_path / "svc")
        run(["submit", directory, settop_json, "--name", "settop"])
        run(["submit", directory, tv_json, "--name", "tv"])
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", directory,
                "--workers", "2", "--slice-evaluations", "2",
            ],
            env=_child_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Let it make some progress, then kill it hard mid-run.
        deadline = time.monotonic() + 30.0
        ledger = job_io.ledger_path(directory)
        while time.monotonic() < deadline:
            if os.path.exists(ledger) and process.poll() is None:
                time.sleep(0.4)
                break
            if process.poll() is not None:
                break
            time.sleep(0.05)
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)

        code, _ = run(
            ["serve", directory, "--workers", "2",
             "--slice-evaluations", "64"]
        )
        assert code == EXIT_OK
        code, text = run(["jobs", directory, "--json"])
        listed = {row["name"]: row for row in json.loads(text)}
        assert listed["settop"]["state"] == "completed"
        assert listed["tv"]["state"] == "completed"
        assert result_front(
            directory, listed["settop"]["id"]
        ) == golden_front("settop_front")
        assert result_front(
            directory, listed["tv"]["id"]
        ) == golden_front("tv_decoder_front")
