"""Option-handling tests for explore(): timing modes, overrides, errors.

The ``explore()`` docstring promises that ``timing_mode`` *overrides*
the legacy ``check_utilization`` flag, and that unknown modes/backends
fail fast with :class:`ExplorationError` instead of silently falling
through — both promises are pinned down here, for the serial loop and
for the parallel backends.
"""

import pytest

from repro.casestudies import build_settop_spec
from repro.core import (
    BINDING_BACKENDS,
    PARALLEL_MODES,
    TIMING_MODES,
    evaluate_allocation,
    explore,
    validate_explore_options,
)
from repro.errors import ExplorationError, ReproError


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


class TestTimingModes:
    """All three documented modes, on all exploration backends."""

    @pytest.mark.parametrize("mode", TIMING_MODES)
    @pytest.mark.parametrize("parallel", PARALLEL_MODES)
    def test_every_mode_runs(self, settop, mode, parallel):
        result = explore(
            settop, timing_mode=mode, parallel=parallel, batch_size=16
        )
        assert result.points

    def test_utilization_is_the_default(self, settop):
        explicit = explore(settop, timing_mode="utilization")
        implicit = explore(settop)
        assert explicit.front() == implicit.front()

    def test_none_equals_disabled_utilization(self, settop):
        assert (
            explore(settop, timing_mode="none").front()
            == explore(settop, check_utilization=False).front()
        )

    def test_schedule_less_pessimistic_than_utilization(self, settop):
        """The exact schedule accepts everything the 69% estimate does
        (it is a relaxation on this case study: same or better points)."""
        util = explore(settop, timing_mode="utilization")
        schedule = explore(settop, timing_mode="schedule")
        best_util = {cost: f for cost, f in util.front()}
        best_schedule = {cost: f for cost, f in schedule.front()}
        for cost, flexibility in best_util.items():
            covering = [
                f for c, f in best_schedule.items() if c <= cost
            ]
            assert covering and max(covering) >= flexibility


class TestOverride:
    """timing_mode wins over check_utilization, in every combination."""

    @pytest.mark.parametrize("check", [True, False])
    @pytest.mark.parametrize("mode", TIMING_MODES)
    def test_explicit_mode_overrides_flag(self, settop, mode, check):
        overridden = explore(
            settop, timing_mode=mode, check_utilization=check
        )
        canonical = explore(settop, timing_mode=mode)
        assert overridden.front() == canonical.front()
        stats = {
            k: v
            for k, v in overridden.stats.as_dict().items()
            if k != "elapsed_seconds"
        }
        canonical_stats = {
            k: v
            for k, v in canonical.stats.as_dict().items()
            if k != "elapsed_seconds"
        }
        assert stats == canonical_stats

    @pytest.mark.parametrize("check", [True, False])
    def test_flag_still_works_without_mode(self, settop, check):
        expected_mode = "utilization" if check else "none"
        assert (
            explore(settop, check_utilization=check).front()
            == explore(settop, timing_mode=expected_mode).front()
        )


class TestUnknownOptionErrors:
    """Unknown modes/backends raise ExplorationError, never fall through."""

    def test_unknown_timing_mode(self, settop):
        with pytest.raises(ExplorationError, match="timing_mode"):
            explore(settop, timing_mode="wcet")

    def test_unknown_backend(self, settop):
        with pytest.raises(ExplorationError, match="backend"):
            explore(settop, backend="smt")

    def test_unknown_parallel_mode(self, settop):
        with pytest.raises(ExplorationError, match="parallel"):
            explore(settop, parallel="cluster")

    def test_unknown_options_raise_before_any_work(self, settop):
        """Validation fires even when the spec itself would be rejected
        later (fail fast: no partial exploration happens)."""
        with pytest.raises(ExplorationError, match="timing_mode"):
            explore(settop, timing_mode="bogus", max_candidates=0)

    def test_errors_are_repro_errors(self, settop):
        with pytest.raises(ReproError):
            explore(settop, backend="smt")

    def test_validate_helper_accepts_known_values(self):
        for backend in BINDING_BACKENDS:
            for mode in (None,) + TIMING_MODES:
                for parallel in PARALLEL_MODES:
                    validate_explore_options(backend, mode, parallel)

    def test_validate_helper_rejects_bad_batch_size(self):
        with pytest.raises(ExplorationError, match="batch_size"):
            validate_explore_options("csp", None, "thread", batch_size=-3)

    def test_evaluate_allocation_rejects_unknown_backend(self, settop):
        """The silent CSP fallthrough for unknown backends is gone at
        the evaluation layer too."""
        with pytest.raises(ValueError, match="backend"):
            evaluate_allocation(settop, ["muP2"], backend="smt")

    def test_evaluate_allocation_rejects_unknown_timing_mode(self, settop):
        with pytest.raises(ValueError, match="timing_mode"):
            evaluate_allocation(settop, ["muP2"], timing_mode="wcet")
