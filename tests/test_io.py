"""Tests of JSON round-trip and DOT export."""

import json

import pytest

from repro.casestudies import (
    build_settop_spec,
    build_tv_decoder_spec,
    synthetic_spec,
)
from repro.core import explore
from repro.errors import SerializationError
from repro.io import (
    dump_spec,
    dumps_spec,
    hierarchy_to_dot,
    load_spec,
    loads_spec,
    spec_from_dict,
    spec_to_dict,
    spec_to_dot,
)
from repro.spec import bindable_leaves


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [build_tv_decoder_spec, build_settop_spec, synthetic_spec],
        ids=["tv", "settop", "synthetic"],
    )
    def test_roundtrip_preserves_structure(self, builder):
        original = builder()
        restored = loads_spec(dumps_spec(original))
        assert restored.name == original.name
        assert set(restored.units.names()) == set(original.units.names())
        assert len(restored.mappings) == len(original.mappings)
        assert sorted(restored.p_index.clusters) == sorted(
            original.p_index.clusters
        )
        for unit in original.units:
            assert restored.units.unit(unit.name).cost == unit.cost

    def test_roundtrip_preserves_semantics(self):
        """The restored spec explores to the identical Pareto front."""
        original = build_settop_spec()
        restored = loads_spec(dumps_spec(original))
        assert explore(restored).front() == explore(original).front()

    def test_roundtrip_preserves_reduction(self):
        original = build_tv_decoder_spec()
        restored = loads_spec(dumps_spec(original))
        assert bindable_leaves(restored, {"muP"}) == bindable_leaves(
            original, {"muP"}
        )

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        dump_spec(build_tv_decoder_spec(), str(path))
        restored = load_spec(str(path))
        assert restored.frozen
        assert set(restored.units.names()) == {
            "muP", "A", "C1", "C2", "D3", "U1", "U2",
        }

    def test_document_is_stable_json(self):
        doc1 = dumps_spec(build_tv_decoder_spec())
        doc2 = dumps_spec(build_tv_decoder_spec())
        assert doc1 == doc2
        json.loads(doc1)  # valid JSON

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError):
            spec_from_dict({"format": "something-else", "version": 1})

    def test_bad_version_rejected(self):
        doc = spec_to_dict(build_tv_decoder_spec())
        doc["version"] = 99
        with pytest.raises(SerializationError):
            spec_from_dict(doc)

    def test_missing_key_reported(self):
        doc = spec_to_dict(build_tv_decoder_spec())
        del doc["problem"]["name"]
        with pytest.raises(SerializationError):
            spec_from_dict(doc)

    def test_invalid_json_text(self):
        with pytest.raises(SerializationError):
            loads_spec("{not json")

    def test_port_maps_roundtrip(self):
        original = build_settop_spec()
        restored = loads_spec(dumps_spec(original))
        cluster = restored.p_index.cluster("gamma_D1")
        assert cluster.port_map == {"din": "P_D1", "dout": "P_D1"}


class TestDot:
    def test_hierarchy_dot_contains_clusters(self):
        spec = build_tv_decoder_spec()
        dot = hierarchy_to_dot(spec.problem)
        assert dot.startswith("digraph")
        assert '"cluster_I_D"' in dot
        assert '"gamma_D1"' not in dot or "cluster_gamma_D1" in dot
        assert '"P_D1"' in dot

    def test_spec_dot_contains_both_sides_and_mappings(self):
        spec = build_tv_decoder_spec()
        dot = spec_to_dot(spec)
        assert '"cluster_problem"' in dot
        assert '"cluster_architecture"' in dot
        assert '"p::P_U1" -> "a::muP"' in dot
        assert "style=dashed" in dot
        assert dot.count("->") >= len(spec.mappings)

    def test_dot_quotes_special_names(self):
        from repro.hgraph import HierarchicalGraph

        g = HierarchicalGraph('Weird"Name')
        g.add_vertex("a b")
        dot = hierarchy_to_dot(g, name='Weird"Name')
        assert '\\"' in dot
