"""Differential tests of the fault-injection harness.

Every test runs the exploration under injected disturbances — transient
and permanent worker errors, worker crashes (including real
``os._exit`` in process-pool children), delayed batches, corrupted
cache entries, lost pools — and checks two things: the Pareto front is
*identical* to the undisturbed run, and the degradation is *visible*
(counters, events, warnings).  Robust and honest, never silently wrong.
"""

import pickle
import warnings

import pytest

from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import explore
from repro.errors import PermanentWorkerError, TransientWorkerError
from repro.parallel import EvaluationCache, explore_batched
from repro.resilience import (
    FaultPlan,
    RetryPolicy,
    SimulatedCrash,
    corrupt_cache_entry,
    inject,
)
from repro.resilience.faults import active_plan


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def baseline(settop):
    return explore(settop)


#: A fast retry policy so fault tests do not sleep through real backoff.
FAST = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002)


class TestFaultPlan:
    def test_schedule_is_deterministic(self):
        plan = FaultPlan(schedule={"worker": {2: "transient"}})
        plan.fire("worker")  # call 1: quiet
        with pytest.raises(TransientWorkerError):
            plan.fire("worker")  # call 2: scheduled fault
        plan.fire("worker")  # call 3: quiet again
        assert plan.log == [("worker", 2, "transient")]

    def test_rates_are_seeded(self):
        def injected_calls(seed):
            plan = FaultPlan(seed=seed, transient_rate=0.5)
            calls = []
            for i in range(50):
                try:
                    plan.fire("worker")
                except TransientWorkerError:
                    calls.append(i)
            return calls

        assert injected_calls(1) == injected_calls(1)
        assert injected_calls(1) != injected_calls(2)

    def test_max_faults_caps_a_storm(self):
        plan = FaultPlan(transient_rate=1.0, max_faults=2)
        raised = 0
        for _ in range(10):
            try:
                plan.fire("worker")
            except TransientWorkerError:
                raised += 1
        assert raised == 2

    def test_permanent_action(self):
        plan = FaultPlan(schedule={"worker": {1: "permanent"}})
        with pytest.raises(PermanentWorkerError):
            plan.fire("worker")

    def test_abort_action(self):
        plan = FaultPlan(schedule={"checkpoint": {1: "abort"}})
        with pytest.raises(SimulatedCrash):
            plan.fire("checkpoint")

    def test_unknown_site_and_action_rejected(self):
        with pytest.raises(ValueError, match="site"):
            FaultPlan(schedule={"nowhere": {1: "transient"}})
        with pytest.raises(ValueError, match="action"):
            FaultPlan(schedule={"worker": {1: "explode"}})

    def test_pickling_ships_config_not_counters(self):
        plan = FaultPlan(seed=5, schedule={"worker": {1: "transient"}},
                         transient_rate=0.25, max_faults=7)
        with pytest.raises(TransientWorkerError):
            plan.fire("worker")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 5
        assert clone.schedule == {"worker": {1: "transient"}}
        assert clone.max_faults == 7
        assert clone.log == []  # fresh counters in the child process
        with pytest.raises(TransientWorkerError):
            clone.fire("worker")  # counts restart at 1

    def test_install_is_scoped_by_inject(self):
        assert active_plan() is None
        with inject(FaultPlan()) as plan:
            assert active_plan() is plan
        assert active_plan() is None


class TestWorkerFaults:
    def test_transient_faults_retry_to_identical_front(
        self, settop, baseline
    ):
        plan = FaultPlan(
            schedule={"worker": {5: "transient", 11: "transient"}}
        )
        with inject(plan):
            result = explore(
                settop, parallel="thread", workers=2, retry=FAST
            )
        assert result.front() == baseline.front()
        assert result.stats.pool_retries >= 2
        assert result.stats.pool_fallbacks == 0
        kinds = {event["kind"] for event in result.stats.events}
        assert "pool_retry" in kinds

    def test_transient_storm_with_rate(self, settop, baseline):
        plan = FaultPlan(seed=7, transient_rate=0.15, max_faults=25)
        with inject(plan):
            result = explore(
                settop, parallel="thread", workers=2, retry=FAST
            )
        assert result.front() == baseline.front()
        assert result.stats.pool_retries > 0

    def test_permanent_fault_quarantines_and_rescues(
        self, settop, baseline
    ):
        plan = FaultPlan(schedule={"worker": {5: "permanent"}})
        with inject(plan):
            result = explore(
                settop, parallel="thread", workers=2, retry=FAST
            )
        # the candidate is recorded as quarantined, not dropped: the
        # front is still complete and identical
        assert result.front() == baseline.front()
        assert result.stats.quarantined == 1
        events = [e for e in result.stats.events if e["kind"] == "quarantine"]
        assert len(events) == 1
        assert "units" in events[0] and "error" in events[0]

    def test_repeated_transients_exhaust_retries_into_quarantine(
        self, settop, baseline
    ):
        # fail one candidate's every attempt: initial + both retries
        plan = FaultPlan(
            schedule={"worker": {5: "transient", 6: "transient",
                                 7: "transient"}}
        )
        with inject(plan):
            result = explore(
                settop, parallel="thread", workers=1, retry=FAST
            )
        assert result.front() == baseline.front()
        assert result.stats.pool_retries >= 1

    def test_thread_crash_is_modelled_as_transient(self, settop, baseline):
        plan = FaultPlan(schedule={"worker": {4: "crash"}})
        with inject(plan):
            result = explore(
                settop, parallel="thread", workers=2, retry=FAST
            )
        assert result.front() == baseline.front()

    def test_inline_faults_quarantine_and_rescue(self, settop, baseline):
        plan = FaultPlan(schedule={"worker": {3: "permanent"}})
        with inject(plan):
            result = explore_batched(
                settop, parallel="serial", retry=FAST
            )
        assert result.front() == baseline.front()
        assert result.stats.quarantined == 1

    def test_faults_without_parallel_are_reachable_from_explore(
        self, settop, baseline
    ):
        # explore() routes to the resilient batched loop whenever a
        # resilience option is set, even with parallel="serial"
        plan = FaultPlan(schedule={"worker": {3: "transient"}})
        with inject(plan):
            result = explore(settop, retry=FAST)
        assert result.front() == baseline.front()
        assert result.stats.quarantined == 1  # inline: no pool to retry on


class TestProcessPoolFaults:
    def test_child_os_exit_falls_back_loudly(self, settop, baseline):
        """A worker killed with os._exit breaks the pool; exploration
        must warn, record the fallback, and still finish correctly."""
        plan = FaultPlan(schedule={"worker": {3: "crash"}})
        with pytest.warns(RuntimeWarning, match="worker pool lost"):
            with inject(plan):
                result = explore(
                    settop, parallel="process", workers=2, retry=FAST
                )
        assert result.front() == baseline.front()
        assert result.stats.pool_fallbacks == 1
        kinds = [e["kind"] for e in result.stats.events]
        assert "pool_fallback" in kinds

    def test_fallback_statistics_match_the_healthy_run(
        self, settop, baseline
    ):
        plan = FaultPlan(schedule={"worker": {3: "crash"}})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with inject(plan):
                result = explore(
                    settop, parallel="process", workers=2, retry=FAST
                )
        resilience_only = {
            "pool_retries", "pool_fallbacks", "batch_timeouts",
            "quarantined", "cache_corruptions", "checkpoints_written",
        }
        healthy = {
            k: v
            for k, v in baseline.stats.as_dict().items()
            if k != "elapsed_seconds" and k not in resilience_only
        }
        degraded = {
            k: v
            for k, v in result.stats.as_dict().items()
            if k != "elapsed_seconds" and k not in resilience_only
        }
        assert healthy == degraded


class TestBatchTimeouts:
    def test_slow_batch_is_abandoned_and_finished_inline(
        self, settop, baseline
    ):
        plan = FaultPlan(
            schedule={"worker": {4: "delay"}}, delay_seconds=5.0
        )
        with inject(plan):
            result = explore(
                settop,
                parallel="thread",
                workers=2,
                batch_timeout=0.2,
                retry=FAST,
            )
        assert result.front() == baseline.front()
        assert result.stats.batch_timeouts >= 1
        events = [
            e for e in result.stats.events if e["kind"] == "batch_timeout"
        ]
        assert events and events[0]["timeout"] == 0.2

    def test_batch_timeout_validation(self, settop):
        from repro.errors import ExplorationError

        with pytest.raises(ExplorationError, match="batch_timeout"):
            explore(settop, batch_timeout=0.0)


class TestCacheCorruption:
    def test_corruption_is_detected_and_reevaluated(self, baseline):
        settop = build_settop_spec()
        cache = EvaluationCache()
        explore_batched(settop, parallel="serial", cache=cache)
        corrupted = corrupt_cache_entry(cache, index=0,
                                        flexibility_delta=100.0)
        assert corrupted is not None
        result = explore_batched(settop, parallel="serial", cache=cache)
        # the poisoned flexibility (f + 100) never reaches the front
        assert result.front() == baseline.front()
        assert result.stats.cache_corruptions == 1
        assert cache.corruptions == 1
        assert cache.corrupted_signatures == [corrupted[0]]
        events = [
            e for e in result.stats.events if e["kind"] == "cache_corruption"
        ]
        assert events and events[0]["count"] == 1

    def test_many_corruptions(self, baseline):
        settop = build_settop_spec()
        cache = EvaluationCache()
        explore_batched(settop, parallel="serial", cache=cache)
        for index in range(5):
            corrupt_cache_entry(cache, index=index, flexibility_delta=3.0)
        result = explore_batched(settop, parallel="serial", cache=cache)
        assert result.front() == baseline.front()
        assert result.stats.cache_corruptions == 5

    def test_corrupt_index_out_of_range(self):
        cache = EvaluationCache()
        assert corrupt_cache_entry(cache, index=3) is None


class TestKillResume:
    def test_abort_at_checkpoint_then_resume(self, settop, tmp_path):
        from repro.resilience import resume_explore

        reference_path = str(tmp_path / "ref.ckpt")
        reference = explore(
            settop, checkpoint=reference_path, checkpoint_every=64
        )
        killed_path = str(tmp_path / "killed.ckpt")
        with pytest.raises(SimulatedCrash):
            with inject(FaultPlan(schedule={"checkpoint": {3: "abort"}})):
                explore(
                    settop, checkpoint=killed_path, checkpoint_every=64
                )
        resumed = resume_explore(killed_path)
        from .test_resilience import fingerprint

        assert fingerprint(resumed) == fingerprint(reference)

    def test_tv_decoder_abort_resume(self, tmp_path):
        from repro.resilience import resume_explore
        from .test_resilience import fingerprint

        spec = build_tv_decoder_spec()
        reference = explore(
            spec, checkpoint=str(tmp_path / "ref.ckpt"), checkpoint_every=16
        )
        killed = str(tmp_path / "killed.ckpt")
        with pytest.raises(SimulatedCrash):
            with inject(FaultPlan(schedule={"checkpoint": {1: "abort"}})):
                explore(spec, checkpoint=killed, checkpoint_every=16)
        resumed = resume_explore(killed)
        assert fingerprint(resumed) == fingerprint(reference)
