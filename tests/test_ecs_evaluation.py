"""Tests for elementary cluster-activations and allocation evaluation."""

import pytest

from repro.casestudies import build_settop_spec, build_tv_decoder_spec
from repro.core import (
    ecs_of_selection,
    evaluate_allocation,
    force_chain,
    iter_selections,
    minimal_coverage_size,
)
from repro.spec import activatable_clusters


@pytest.fixture(scope="module")
def settop():
    return build_settop_spec()


@pytest.fixture(scope="module")
def tv_spec():
    return build_tv_decoder_spec()


class TestIterSelections:
    def test_all_selections_counted(self, settop):
        allowed = frozenset(settop.p_index.clusters)
        selections = list(
            iter_selections(settop.problem, settop.p_index, allowed)
        )
        # browser (1) + game (3 classes) + tv (3 decrypt * 2 uncompress)
        assert len(selections) == 1 + 3 + 6

    def test_selection_shapes(self, settop):
        allowed = frozenset(settop.p_index.clusters)
        for selection in iter_selections(
            settop.problem, settop.p_index, allowed
        ):
            assert "I_App" in selection
            if selection["I_App"] == "gamma_G":
                assert set(selection) == {"I_App", "I_G"}
            elif selection["I_App"] == "gamma_D":
                assert set(selection) == {"I_App", "I_D", "I_U"}
            else:
                assert set(selection) == {"I_App"}

    def test_allowed_restricts(self, settop):
        allowed = frozenset({"gamma_I", "gamma_D", "gamma_D1", "gamma_U1"})
        selections = list(
            iter_selections(settop.problem, settop.p_index, allowed)
        )
        assert len(selections) == 2  # browser + one tv variant

    def test_forced_pins_cluster(self, settop):
        allowed = frozenset(settop.p_index.clusters)
        forced = force_chain(settop, "gamma_U2")
        selections = list(
            iter_selections(settop.problem, settop.p_index, allowed, forced)
        )
        assert selections  # 3 decryptions x forced U2
        assert all(s["I_U"] == "gamma_U2" for s in selections)
        assert all(s["I_App"] == "gamma_D" for s in selections)
        assert len(selections) == 3

    def test_force_unallowed_yields_nothing(self, settop):
        allowed = frozenset({"gamma_I"})
        forced = force_chain(settop, "gamma_U2")
        assert (
            list(
                iter_selections(
                    settop.problem, settop.p_index, allowed, forced
                )
            )
            == []
        )

    def test_force_chain_nested(self, settop):
        assert force_chain(settop, "gamma_G2") == {
            "I_G": "gamma_G2",
            "I_App": "gamma_G",
        }
        assert force_chain(settop, "gamma_I") == {"I_App": "gamma_I"}

    def test_ecs_of_selection(self):
        assert ecs_of_selection({"I": "a", "J": "b"}) == frozenset({"a", "b"})

    def test_minimal_coverage_size(self, settop):
        clusters = frozenset(
            {"gamma_D", "gamma_D1", "gamma_D2", "gamma_D3", "gamma_U1"}
        )
        assert minimal_coverage_size(settop, clusters) == 3
        assert minimal_coverage_size(settop, frozenset()) == 0


class TestEvaluateAllocation:
    def test_paper_muP2(self, settop):
        """Section 5: estimate 3, implemented flexibility 2 on muP2."""
        impl = evaluate_allocation(settop, {"muP2"})
        assert impl is not None
        assert impl.cost == 100.0
        assert impl.flexibility == 2.0
        assert impl.clusters == {
            "gamma_I", "gamma_D", "gamma_D1", "gamma_U1",
        }

    def test_paper_muP1(self, settop):
        impl = evaluate_allocation(settop, {"muP1"})
        assert impl is not None
        assert impl.flexibility == 3.0
        assert "gamma_G1" in impl.clusters

    def test_impossible_allocation_returns_none(self, settop):
        assert evaluate_allocation(settop, {"A1"}) is None
        assert evaluate_allocation(settop, set()) is None

    def test_coverage_pairs_fpga_designs_apart(self, settop):
        """$290 allocation: gamma_D3 and gamma_U2 must live in different
        elementary cluster-activations (one FPGA design at a time)."""
        impl = evaluate_allocation(
            settop, {"muP2", "C1", "D3", "G1", "U2"}
        )
        assert impl is not None
        assert impl.flexibility == 5.0
        assert {"gamma_D3", "gamma_U2"} <= impl.clusters
        for record in impl.coverage:
            assert not (
                "gamma_D3" in record.clusters
                and "gamma_U2" in record.clusters
            )

    def test_coverage_records_have_bindings(self, settop):
        impl = evaluate_allocation(settop, {"muP1"})
        assert impl is not None
        game = impl.ecs_for("gamma_G1")
        assert game is not None
        assert game.binding["P_G1"] == "muP1"
        assert impl.ecs_for("gamma_G2") is None

    def test_achieved_le_activatable_estimate(self, settop):
        from repro.core import estimate_flexibility

        for units in ({"muP2"}, {"muP2", "D3"}, {"muP2", "A1"},
                      {"muP1", "D3", "U2"}):
            impl = evaluate_allocation(settop, units)
            if impl is not None:
                assert impl.flexibility <= estimate_flexibility(settop, units)

    def test_comm_failure_reduces_flexibility(self, settop):
        """muP2+A1 without bus C2: the ASIC adds nothing implementable."""
        with_bus = evaluate_allocation(settop, {"muP2", "A1", "C2"})
        without_bus = evaluate_allocation(settop, {"muP2", "A1"})
        assert with_bus is not None and without_bus is not None
        assert with_bus.flexibility == 7.0
        assert without_bus.flexibility < with_bus.flexibility

    def test_sat_backend_agrees(self, settop):
        for units in ({"muP2"}, {"muP1"}, {"muP2", "C1", "D3", "G1"}):
            csp = evaluate_allocation(settop, units, backend="csp")
            sat = evaluate_allocation(settop, units, backend="sat")
            assert (csp is None) == (sat is None)
            if csp is not None:
                assert csp.flexibility == sat.flexibility
                assert csp.clusters == sat.clusters

    def test_solver_counter(self, settop):
        counter = [0]
        evaluate_allocation(settop, {"muP2"}, solver_counter=counter)
        assert counter[0] >= 3  # browser + game try + tv

    def test_activatable_superset_of_covered(self, settop):
        units = {"muP2", "C1", "D3", "G1"}
        impl = evaluate_allocation(settop, units)
        assert impl is not None
        assert impl.clusters <= activatable_clusters(settop, units) | {
            "gamma_I", "gamma_G", "gamma_D"
        }

    def test_tv_decoder_small_allocations(self, tv_spec):
        impl = evaluate_allocation(tv_spec, {"muP"})
        assert impl is not None
        assert impl.flexibility == 1.0
        impl2 = evaluate_allocation(tv_spec, {"muP", "A", "C2"})
        assert impl2 is not None
        assert impl2.flexibility == 3.0
