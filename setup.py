"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists only so that the package can be installed editable on machines
without the ``wheel`` package (legacy ``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
