"""Allocatable resource units.

The exploration algorithm allocates *units*: "only leaves ``v in
G_A.V`` of the top-level architecture graph or whole clusters of the
architecture graph are considered" (Section 4).  A unit is therefore
either a top-level architecture leaf (processor, ASIC, bus) or an
architecture cluster (e.g. an FPGA design).  This module derives the
unit catalog of an architecture graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ModelError
from ..hgraph import Cluster, HierarchyIndex
from .architecture import ArchitectureGraph
from .attributes import cost_of, is_comm

#: Unit kinds.
KIND_LEAF = "leaf"
KIND_CLUSTER = "cluster"


class ResourceUnit:
    """One allocatable unit of the architecture.

    Attributes
    ----------
    name:
        Unit name — the leaf name for top-level leaves, the cluster name
        for architecture clusters.
    kind:
        ``"leaf"`` or ``"cluster"``.
    cost:
        Allocation cost contributed to ``c_impl`` when allocated.
    comm:
        True for pure communication units (buses); never binding targets.
    top_node:
        Name of the top-level architecture node this unit lives under —
        the leaf itself, or the topmost interface enclosing the cluster.
        Used by the router: a cluster communicates through the edges of
        its top-level interface.
    resource_leaves:
        Architecture leaf names provided by this unit (targets of
        mapping edges).
    ancestors:
        Cluster units that must also be allocated for this unit to be
        usable (non-empty only for clusters nested inside clusters).
    """

    __slots__ = (
        "name",
        "kind",
        "cost",
        "comm",
        "top_node",
        "resource_leaves",
        "ancestors",
        "interface",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        cost: float,
        comm: bool,
        top_node: str,
        resource_leaves: Tuple[str, ...],
        ancestors: Tuple[str, ...] = (),
        interface: Optional[str] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.cost = cost
        self.comm = comm
        self.top_node = top_node
        self.resource_leaves = resource_leaves
        self.ancestors = ancestors
        #: Owning interface name for cluster units, else ``None``.
        self.interface = interface

    def __repr__(self) -> str:
        return f"ResourceUnit({self.name!r}, {self.kind}, cost={self.cost})"


class UnitCatalog:
    """All allocatable units of one architecture graph."""

    def __init__(self, architecture: ArchitectureGraph, index: Optional[HierarchyIndex] = None) -> None:
        self.architecture = architecture
        self.index = index if index is not None else HierarchyIndex(architecture)
        #: unit name -> ResourceUnit
        self.units: Dict[str, ResourceUnit] = {}
        #: architecture leaf name -> owning unit name
        self.unit_of_leaf: Dict[str, str] = {}
        self._build()

    def _build(self) -> None:
        # Top-level leaves are units of their own.
        for name, vertex in self.architecture.vertices.items():
            self.units[name] = ResourceUnit(
                name=name,
                kind=KIND_LEAF,
                cost=cost_of(vertex),
                comm=is_comm(vertex),
                top_node=name,
                resource_leaves=(name,),
            )
            self.unit_of_leaf[name] = name
        # Every architecture cluster is a unit.
        for cluster_name, cluster in self.index.clusters.items():
            self.units[cluster_name] = self._cluster_unit(cluster)
            for leaf_name in cluster.vertices:
                self.unit_of_leaf[leaf_name] = cluster_name

    def _cluster_unit(self, cluster: Cluster) -> ResourceUnit:
        if "cost" in cluster.attrs:
            cost = cost_of(cluster)
        else:
            cost = sum(cost_of(v) for v in cluster.vertices.values())
        interface_name = self.index.interface_of_cluster[cluster.name]
        top_node = self._top_node_of_interface(interface_name)
        ancestors = self.index.enclosing_clusters(cluster.name)
        return ResourceUnit(
            name=cluster.name,
            kind=KIND_CLUSTER,
            cost=cost,
            comm=all(
                is_comm(v) for v in cluster.vertices.values()
            )
            if cluster.vertices
            else False,
            top_node=top_node,
            resource_leaves=tuple(cluster.vertices),
            ancestors=ancestors,
            interface=interface_name,
        )

    def _top_node_of_interface(self, interface_name: str) -> str:
        """Topmost architecture node enclosing ``interface_name``."""
        index = self.index
        current = interface_name
        while True:
            scope = index.scope_of_interface[current]
            if isinstance(scope, Cluster):
                current = index.interface_of_cluster[scope.name]
            else:
                return current

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def unit(self, name: str) -> ResourceUnit:
        """The unit named ``name`` (raises :class:`ModelError` if absent)."""
        try:
            return self.units[name]
        except KeyError:
            raise ModelError(f"unknown resource unit {name!r}") from None

    def unit_of(self, resource_leaf: str) -> ResourceUnit:
        """The unit providing architecture leaf ``resource_leaf``."""
        try:
            return self.units[self.unit_of_leaf[resource_leaf]]
        except KeyError:
            raise ModelError(
                f"architecture leaf {resource_leaf!r} belongs to no unit"
            ) from None

    def functional_units(self) -> List[ResourceUnit]:
        """Units that can host processes (non-communication units)."""
        return [u for u in self.units.values() if not u.comm]

    def comm_units(self) -> List[ResourceUnit]:
        """Pure communication units (buses, links)."""
        return [u for u in self.units.values() if u.comm]

    def total_cost(self, unit_names: Iterable[str]) -> float:
        """Allocation cost ``c_impl`` of a set of units."""
        return sum(self.unit(name).cost for name in unit_names)

    def closure(self, unit_names: Iterable[str]) -> Tuple[str, ...]:
        """Unit set closed under the ancestor requirement."""
        closed = set()
        for name in unit_names:
            unit = self.unit(name)
            closed.add(name)
            closed.update(unit.ancestors)
        return tuple(sorted(closed))

    def names(self) -> Tuple[str, ...]:
        """All unit names, leaves first then clusters, insertion order."""
        return tuple(self.units)

    def __iter__(self) -> Iterator[ResourceUnit]:
        return iter(self.units.values())

    def __len__(self) -> int:
        return len(self.units)

    def __repr__(self) -> str:
        return f"UnitCatalog(|units|={len(self.units)})"
