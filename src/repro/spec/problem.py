"""Problem graphs: the behavioural side of a specification.

The problem graph ``G_P`` is a directed hierarchical graph whose
vertices and interfaces represent processes or communication operations
at system level; edges model dependence relations and clusters are the
possible substitutions of interfaces.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..hgraph import HierarchicalGraph


class ProblemGraph(HierarchicalGraph):
    """The behavioural hierarchy ``G_P = (V_P, E_P, Psi_P, Gamma_P)``.

    Semantically identical to :class:`~repro.hgraph.HierarchicalGraph`;
    the subclass exists so that specification graphs are self-describing
    and so the serialisers can round-trip the graph role.

    Well-known attributes on problem elements: ``period`` (on clusters
    carrying timing constraints), ``negligible`` (on control processes
    excluded from utilisation estimation) and ``weight`` (for weighted
    flexibility).
    """

    def __init__(self, name: str = "G_P", attrs: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(name, attrs)
