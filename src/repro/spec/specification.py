"""The specification graph ``G_S = (G_P, G_A, E_M)``.

Combines a hierarchical problem graph, a hierarchical architecture
graph and the user-defined mapping edges into the single object on
which activation, binding and exploration operate.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..errors import ModelError, ValidationError
from ..hgraph import HierarchyIndex, iter_scopes, validate_hierarchy
from .architecture import ArchitectureGraph
from .attributes import is_comm
from .mapping import MappingTable
from .problem import ProblemGraph
from .units import UnitCatalog


class SpecificationGraph:
    """A complete specification ``G_S = (G_P, G_A, E_M)``.

    Build the two hierarchies first, then add mapping edges through
    :meth:`map`, and finally :meth:`freeze` the specification.  Freezing
    validates both hierarchies, checks every mapping edge against the
    leaf sets, and builds the derived indexes (hierarchy indexes and the
    resource-unit catalog) used by all downstream algorithms.
    """

    def __init__(
        self,
        problem: ProblemGraph,
        architecture: ArchitectureGraph,
        name: str = "G_S",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.problem = problem
        self.architecture = architecture
        self.mappings = MappingTable()
        self._p_index: Optional[HierarchyIndex] = None
        self._a_index: Optional[HierarchyIndex] = None
        self._units: Optional[UnitCatalog] = None
        self._binding_options: Optional[Dict[str, Tuple]] = None
        self._arch_adjacency: Optional[Dict[str, frozenset]] = None
        self._process_timing: Optional[Dict[str, Tuple]] = None
        #: Cached possible-resource-allocation expression (Theorem 1);
        #: populated by :func:`repro.core.candidates.possible_allocation_expr`
        #: once the specification is frozen, so repeated explorations,
        #: resumes and service slices stop rebuilding it.
        self._possible_expr: Optional[Any] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def map(self, process: str, resource: str, latency: float, **attrs: Any):
        """Add a mapping edge (process leaf -> resource leaf, latency)."""
        if self._units is not None:
            raise ModelError(
                f"specification {self.name!r} is frozen; no further mapping "
                f"edges may be added"
            )
        return self.mappings.add(process, resource, latency, **attrs)

    def map_row(self, process: str, row: Dict[str, float]) -> None:
        """Add all mappings of one Table-1 row: resource -> latency."""
        for resource, latency in row.items():
            self.map(process, resource, latency)

    def freeze(self) -> "SpecificationGraph":
        """Validate the specification and build derived indexes."""
        self._p_index = validate_hierarchy(self.problem)
        self._a_index = validate_hierarchy(
            self.architecture, allow_empty_interfaces=False
        )
        problems = []
        for edge in self.mappings:
            if edge.process not in self._p_index.vertices:
                problems.append(
                    f"mapping edge source {edge.process!r} is not a leaf of "
                    f"the problem graph"
                )
            if edge.resource not in self._a_index.vertices:
                problems.append(
                    f"mapping edge target {edge.resource!r} is not a leaf of "
                    f"the architecture graph"
                )
            elif is_comm(self._a_index.vertices[edge.resource]):
                problems.append(
                    f"mapping edge target {edge.resource!r} is a "
                    f"communication resource and cannot host processes"
                )
        if problems:
            raise ValidationError(
                f"specification {self.name!r} failed validation:\n  - "
                + "\n  - ".join(problems)
            )
        self._units = UnitCatalog(self.architecture, self._a_index)
        return self

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has completed."""
        return self._units is not None

    def _require_frozen(self) -> None:
        if not self.frozen:
            raise ModelError(
                f"specification {self.name!r} must be frozen before use"
            )

    @property
    def p_index(self) -> HierarchyIndex:
        """Hierarchy index of the problem graph."""
        self._require_frozen()
        assert self._p_index is not None
        return self._p_index

    @property
    def a_index(self) -> HierarchyIndex:
        """Hierarchy index of the architecture graph."""
        self._require_frozen()
        assert self._a_index is not None
        return self._a_index

    @property
    def units(self) -> UnitCatalog:
        """Catalog of allocatable resource units."""
        self._require_frozen()
        assert self._units is not None
        return self._units

    def binding_options(self) -> Dict[str, Tuple]:
        """Per-process unit requirements, cached for the hot paths.

        Maps every problem leaf to a tuple of ``(unit, ancestors)``
        pairs: the process is bindable under an allocation ``A`` iff
        some pair has ``unit in A`` and ``ancestors <= A``.  Used by the
        reduction predicates, which are evaluated for every candidate
        allocation during exploration.
        """
        self._require_frozen()
        if self._binding_options is None:
            assert self._p_index is not None and self._units is not None
            options: Dict[str, Tuple] = {}
            for process in self._p_index.vertices:
                pairs = []
                for edge in self.mappings.of_process(process):
                    owner = self._units.unit_of_leaf.get(edge.resource)
                    if owner is not None:
                        unit = self._units.unit(owner)
                        pairs.append((owner, frozenset(unit.ancestors)))
                options[process] = tuple(pairs)
            self._binding_options = options
        return self._binding_options

    def process_timing(self) -> Dict[str, Tuple]:
        """Per-process ``(period, negligible)`` pairs, cached.

        The period is inherited from the nearest enclosing problem
        cluster carrying a ``period`` attribute; ``negligible`` comes
        from the vertex itself.  Evaluated once per specification —
        the timing layer derives its task sets from this table.
        """
        self._require_frozen()
        if self._process_timing is None:
            assert self._p_index is not None
            from .attributes import NEGLIGIBLE, PERIOD

            table: Dict[str, Tuple] = {}
            for leaf, vertex in self._p_index.vertices.items():
                raw = self._p_index.inherited_attr(leaf, PERIOD)
                period = float(raw) if raw is not None else None
                table[leaf] = (
                    period,
                    bool(vertex.attrs.get(NEGLIGIBLE, False)),
                )
            self._process_timing = table
        return self._process_timing

    def architecture_adjacency(self) -> Dict[str, frozenset]:
        """Undirected adjacency of top-level architecture nodes, cached.

        Used by the router and the communication-pruning rule, both of
        which are evaluated for every candidate allocation.
        """
        self._require_frozen()
        if self._arch_adjacency is None:
            adjacency: Dict[str, set] = {}
            for edge in self.architecture.edges:
                adjacency.setdefault(edge.src, set()).add(edge.dst)
                adjacency.setdefault(edge.dst, set()).add(edge.src)
            self._arch_adjacency = {
                node: frozenset(neighbors)
                for node, neighbors in adjacency.items()
            }
        return self._arch_adjacency

    # ------------------------------------------------------------------
    # Statistics (used by the search-space benches)
    # ------------------------------------------------------------------
    def vs_size(self) -> int:
        """``|V_S|``: vertices, interfaces and clusters of both sides."""
        total = 0
        for root in (self.problem, self.architecture):
            index = HierarchyIndex(root)
            total += (
                len(index.vertices)
                + len(index.interfaces)
                + len(index.clusters)
            )
        return total

    def es_size(self) -> int:
        """``|E_S|``: edges, port mappings and mapping edges."""
        total = len(self.mappings)
        for root in (self.problem, self.architecture):
            for scope in iter_scopes(root):
                total += len(scope.edges)
                for interface in scope.interfaces.values():
                    for cluster in interface.clusters:
                        total += len(cluster.port_map)
        return total

    def design_space_size(self) -> int:
        """Size ``2^|units|`` of the raw allocation search space."""
        self._require_frozen()
        return 1 << len(self.units)

    def __repr__(self) -> str:
        return (
            f"SpecificationGraph({self.name!r}, |E_M|={len(self.mappings)}, "
            f"frozen={self.frozen})"
        )


def make_specification(
    problem: ProblemGraph,
    architecture: ArchitectureGraph,
    mappings: Iterable[Tuple[str, str, float]],
    name: str = "G_S",
) -> SpecificationGraph:
    """Build and freeze a specification from a mapping-triple iterable."""
    spec = SpecificationGraph(problem, architecture, name)
    for process, resource, latency in mappings:
        spec.map(process, resource, latency)
    return spec.freeze()
