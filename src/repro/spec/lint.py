"""Diagnostics for specification graphs.

Hard structural errors are rejected by ``freeze()``; this linter finds
the *soft* problems that make explorations silently disappointing —
processes that can never be bound, resources nothing maps to, buses
that route nothing, clusters that can never be activated, and timing
annotations that are unsatisfiable on every resource.
"""

from __future__ import annotations

from typing import List

from ..hgraph import iter_scopes
from .attributes import is_comm
from .reduce import activatable_clusters, supports_problem
from .specification import SpecificationGraph

#: Diagnostic severities.
ERROR = "error"
WARNING = "warning"


class Diagnostic:
    """One linter finding."""

    __slots__ = ("level", "code", "message")

    def __init__(self, level: str, code: str, message: str) -> None:
        self.level = level
        #: Stable machine-readable identifier, e.g. ``unmapped-process``.
        self.code = code
        self.message = message

    def __repr__(self) -> str:
        return f"[{self.level}] {self.code}: {self.message}"


def lint_specification(spec: SpecificationGraph) -> List[Diagnostic]:
    """All diagnostics of ``spec``, errors first.

    Errors describe specifications whose exploration cannot succeed
    (e.g. the full allocation still supports no feasible activation);
    warnings describe dead weight or likely mistakes.
    """
    diagnostics: List[Diagnostic] = []
    _lint_mappings(spec, diagnostics)
    _lint_architecture(spec, diagnostics)
    _lint_activatability(spec, diagnostics)
    _lint_timing(spec, diagnostics)
    _lint_shape(spec, diagnostics)
    _lint_cycles(spec, diagnostics)
    diagnostics.sort(key=lambda d: (d.level != ERROR, d.code, d.message))
    return diagnostics


def lint_errors(spec: SpecificationGraph) -> List[Diagnostic]:
    """Only the error-level diagnostics."""
    return [d for d in lint_specification(spec) if d.level == ERROR]


# ----------------------------------------------------------------------
# Individual passes
# ----------------------------------------------------------------------
def _lint_mappings(spec: SpecificationGraph, out: List[Diagnostic]) -> None:
    for process in spec.p_index.vertices:
        if not spec.mappings.of_process(process):
            out.append(
                Diagnostic(
                    WARNING,
                    "unmapped-process",
                    f"process {process!r} has no mapping edge and can "
                    f"never be bound",
                )
            )
    mapped_resources = set(spec.mappings.resources())
    for leaf, vertex in spec.a_index.vertices.items():
        if is_comm(vertex):
            continue
        if leaf not in mapped_resources:
            out.append(
                Diagnostic(
                    WARNING,
                    "dead-resource",
                    f"resource {leaf!r} is the target of no mapping edge",
                )
            )


def _lint_architecture(spec: SpecificationGraph, out: List[Diagnostic]) -> None:
    adjacency = spec.architecture_adjacency()
    functional_top = {
        u.top_node for u in spec.units if not u.comm
    }
    for unit in spec.units.comm_units():
        neighbors = adjacency.get(unit.top_node, frozenset())
        functional_neighbors = {
            n for n in neighbors if n in functional_top
        }
        comm_neighbors = {
            n for n in neighbors if n not in functional_top
        }
        if len(functional_neighbors) + len(comm_neighbors) < 2:
            out.append(
                Diagnostic(
                    WARNING,
                    "dangling-bus",
                    f"communication resource {unit.name!r} connects "
                    f"fewer than two nodes and can never route traffic",
                )
            )


def _lint_activatability(spec: SpecificationGraph, out: List[Diagnostic]) -> None:
    all_units = set(spec.units.names())
    if not supports_problem(spec, all_units):
        out.append(
            Diagnostic(
                ERROR,
                "unsupportable-problem",
                "even the full allocation supports no feasible problem "
                "activation; exploration will find nothing",
            )
        )
        return
    activatable = activatable_clusters(spec, all_units)
    for cluster_name in spec.p_index.clusters:
        if cluster_name not in activatable:
            out.append(
                Diagnostic(
                    WARNING,
                    "dead-cluster",
                    f"cluster {cluster_name!r} can never be activated "
                    f"(unbindable leaf or empty nested interface); it "
                    f"contributes no flexibility",
                )
            )


def _lint_timing(spec: SpecificationGraph, out: List[Diagnostic]) -> None:
    timing = spec.process_timing()
    for process, (period, negligible) in timing.items():
        if period is None or negligible:
            continue
        edges = spec.mappings.of_process(process)
        if not edges:
            continue
        feasible_anywhere = any(
            edge.latency <= period for edge in edges
        )
        if not feasible_anywhere:
            out.append(
                Diagnostic(
                    ERROR,
                    "unsatisfiable-period",
                    f"process {process!r} has period {period:g} but its "
                    f"fastest mapping needs "
                    f"{min(e.latency for e in edges):g}",
                )
            )


def _lint_cycles(spec: SpecificationGraph, out: List[Diagnostic]) -> None:
    """Cyclic dependence relations within one scope.

    The problem graph's edges "define a partial ordering among the
    operations"; a cycle inside a scope makes every activation of that
    scope unschedulable.
    """
    for scope in iter_scopes(spec.problem):
        adjacency = {}
        for edge in scope.edges:
            adjacency.setdefault(edge.src, set()).add(edge.dst)
        state = {}

        def has_cycle(node) -> bool:
            mark = state.get(node)
            if mark == "active":
                return True
            if mark == "done":
                return False
            state[node] = "active"
            found = any(
                has_cycle(successor)
                for successor in adjacency.get(node, ())
            )
            state[node] = "done"
            return found

        if any(has_cycle(node) for node in list(adjacency)):
            out.append(
                Diagnostic(
                    ERROR,
                    "cyclic-dependences",
                    f"scope {scope.name!r} has a dependence cycle; no "
                    f"activation of it can be scheduled",
                )
            )


def _lint_shape(spec: SpecificationGraph, out: List[Diagnostic]) -> None:
    for scope in iter_scopes(spec.problem):
        for interface in scope.interfaces.values():
            if len(interface.clusters) == 1:
                out.append(
                    Diagnostic(
                        WARNING,
                        "single-alternative",
                        f"interface {interface.name!r} has a single "
                        f"cluster; it adds hierarchy but no flexibility",
                    )
                )
            for cluster in interface.clusters:
                if not cluster.vertices and not cluster.interfaces:
                    out.append(
                        Diagnostic(
                            WARNING,
                            "empty-cluster",
                            f"cluster {cluster.name!r} contains no "
                            f"vertices or interfaces",
                        )
                    )
                missing = [
                    p
                    for p in interface.ports
                    if p not in cluster.port_map
                    and len(cluster.node_names()) != 1
                ]
                if missing:
                    out.append(
                        Diagnostic(
                            WARNING,
                            "unmapped-port",
                            f"cluster {cluster.name!r} does not map "
                            f"port(s) {missing!r} of interface "
                            f"{interface.name!r}; flattening may fail",
                        )
                    )
