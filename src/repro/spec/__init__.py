"""Specification graphs ``G_S = (G_P, G_A, E_M)``.

Problem graph (behaviour), architecture graph (structure), mapping
edges (the "can be implemented by" relation with latencies), allocatable
resource units, and the reduction of a specification under a partial
allocation.
"""

from .architecture import ArchitectureGraph
from .attributes import (
    COST,
    KIND,
    KIND_COMM,
    KIND_RESOURCE,
    NEGLIGIBLE,
    PERIOD,
    RECONFIG_DELAY,
    WEIGHT,
    check_latency,
    cost_of,
    is_comm,
    is_negligible,
    period_of,
    reconfig_delay_of,
)
from .lint import (
    Diagnostic,
    ERROR,
    WARNING,
    lint_errors,
    lint_specification,
)
from .mapping import MappingEdge, MappingTable
from .problem import ProblemGraph
from .reduce import (
    activatable_clusters,
    bindable_leaves,
    supports_problem,
    surviving_mappings,
    usable_units,
)
from .specification import SpecificationGraph, make_specification
from .units import KIND_CLUSTER, KIND_LEAF, ResourceUnit, UnitCatalog

__all__ = [
    "ArchitectureGraph",
    "COST",
    "Diagnostic",
    "ERROR",
    "WARNING",
    "lint_errors",
    "lint_specification",
    "KIND",
    "KIND_CLUSTER",
    "KIND_COMM",
    "KIND_LEAF",
    "KIND_RESOURCE",
    "MappingEdge",
    "MappingTable",
    "NEGLIGIBLE",
    "PERIOD",
    "ProblemGraph",
    "RECONFIG_DELAY",
    "ResourceUnit",
    "SpecificationGraph",
    "UnitCatalog",
    "WEIGHT",
    "activatable_clusters",
    "bindable_leaves",
    "check_latency",
    "cost_of",
    "is_comm",
    "is_negligible",
    "make_specification",
    "period_of",
    "reconfig_delay_of",
    "supports_problem",
    "surviving_mappings",
    "usable_units",
]
