"""Architecture graphs: the structural side of a specification.

The architecture graph ``G_A`` is a directed hierarchical graph whose
vertices and interfaces represent functional or communication
resources; edges specify interconnections and clusters represent
potential implementations of the associated interfaces (e.g. FPGA
designs).  All resources are viewed as potentially allocatable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from ..hgraph import HierarchicalGraph, Vertex, iter_scopes
from .attributes import is_comm


class ArchitectureGraph(HierarchicalGraph):
    """The structural hierarchy ``G_A = (V_A, E_A, Psi_A, Gamma_A)``.

    Well-known attributes on architecture elements: ``cost`` (allocation
    cost of leaves and clusters), ``kind`` (``"resource"`` or ``"comm"``
    on leaves) and ``reconfig_delay`` (on clusters modelling
    reconfigurable designs).

    Convenience constructors :meth:`add_resource` and :meth:`add_bus`
    make the common cases explicit.
    """

    def __init__(self, name: str = "G_A", attrs: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(name, attrs)

    def add_resource(self, name: str, cost: float = 0.0, **attrs: Any) -> Vertex:
        """Declare a functional resource leaf with allocation ``cost``."""
        return self.add_vertex(name, cost=cost, kind="resource", **attrs)

    def add_bus(self, name: str, cost: float = 0.0, *connects: str, **attrs: Any) -> Vertex:
        """Declare a communication resource and connect it bidirectionally.

        Every name in ``connects`` must already be declared in the top
        scope; edges are added in both directions because the paper's
        buses are bidirectional interconnects.
        """
        bus = self.add_vertex(name, cost=cost, kind="comm", **attrs)
        for other in connects:
            self.add_edge(name, other)
            self.add_edge(other, name)
        return bus

    def comm_vertices(self) -> Iterator[Vertex]:
        """Iterate all communication resources anywhere in the hierarchy."""
        for scope in iter_scopes(self):
            for vertex in scope.vertices.values():
                if is_comm(vertex):
                    yield vertex
