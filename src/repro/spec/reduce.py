"""Reduction of a specification under a partial resource allocation.

"For every possible resource allocation, we remove all resources that
are not activated from the architecture graph.  By removing these
elements, also mapping edges are removed from the specification graph.
Next, we delete all vertices in the problem graph with no incident
mapping edge.  This results in a reduced specification graph."
(Section 4.)

Instead of mutating graphs, we compute the reduced views as sets:
bindable problem leaves, surviving mapping edges and activatable
problem clusters, plus the top-level supportability predicate that
defines *possible resource allocations*.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from ..hgraph import Cluster, GraphScope
from .mapping import MappingEdge
from .specification import SpecificationGraph


def usable_units(spec: SpecificationGraph, allocated: Iterable[str]) -> Set[str]:
    """Allocated units whose ancestor clusters are also allocated.

    A nested architecture cluster is only usable when every enclosing
    cluster is allocated as well.
    """
    allocated_set = set(allocated)
    usable = set()
    for name in allocated_set:
        unit = spec.units.unit(name)
        if all(anc in allocated_set for anc in unit.ancestors):
            usable.add(name)
    return usable


def bindable_leaves(spec: SpecificationGraph, allocated: Iterable[str]) -> Set[str]:
    """Problem leaves with at least one mapping into the allocation.

    A leaf is bindable when some mapping edge targets a resource leaf
    provided by a usable allocated unit (the *reachable resources*
    ``R_ij`` of Section 4, intersected with the allocation).
    """
    allocated_set = (
        allocated if isinstance(allocated, (set, frozenset)) else set(allocated)
    )
    result = set()
    for process, pairs in spec.binding_options().items():
        for unit, ancestors in pairs:
            if unit in allocated_set and ancestors <= allocated_set:
                result.add(process)
                break
    return result


def surviving_mappings(
    spec: SpecificationGraph, allocated: Iterable[str]
) -> List[MappingEdge]:
    """Mapping edges whose target resource survives the reduction."""
    usable = usable_units(spec, allocated)
    catalog = spec.units
    return [
        edge
        for edge in spec.mappings
        if catalog.unit_of_leaf.get(edge.resource) in usable
    ]


def _scope_supported(scope: GraphScope, bindable: FrozenSet[str], memo: Dict[str, bool]) -> bool:
    """All direct leaves bindable and every interface refinable."""
    for name in scope.vertices:
        if name not in bindable:
            return False
    for interface in scope.interfaces.values():
        if not any(
            _cluster_activatable(cluster, bindable, memo)
            for cluster in interface.clusters
        ):
            return False
    return True


def _cluster_activatable(cluster: Cluster, bindable: FrozenSet[str], memo: Dict[str, bool]) -> bool:
    cached = memo.get(cluster.name)
    if cached is None:
        cached = _scope_supported(cluster, bindable, memo)
        memo[cluster.name] = cached
    return cached


def activatable_clusters(
    spec: SpecificationGraph, allocated: Iterable[str]
) -> Set[str]:
    """Problem clusters that could be activated under the allocation.

    A cluster is activatable when all its direct leaves are bindable
    and each of its interfaces has at least one activatable cluster —
    communication routing and timing are deliberately ignored here
    (they are checked later by the binding solver), matching the
    paper's two-phase search-space reduction.

    Only clusters reachable through activatable refinement chains are
    reported: a deeply nested cluster whose parent can never be
    activated is excluded.
    """
    bindable = frozenset(bindable_leaves(spec, allocated))
    memo: Dict[str, bool] = {}
    result: Set[str] = set()

    def visit(scope: GraphScope) -> None:
        for interface in scope.interfaces.values():
            for cluster in interface.clusters:
                if _cluster_activatable(cluster, bindable, memo):
                    result.add(cluster.name)
                    visit(cluster)

    visit(spec.problem)
    return result


def supports_problem(spec: SpecificationGraph, allocated: Iterable[str]) -> bool:
    """The *possible resource allocation* predicate.

    True when the reduced specification still admits at least one
    feasible problem-graph activation: every top-level problem vertex is
    bindable and every top-level interface has at least one activatable
    cluster (rule 4 requires all top-level elements active).
    """
    bindable = frozenset(bindable_leaves(spec, allocated))
    memo: Dict[str, bool] = {}
    return _scope_supported(spec.problem, bindable, memo)
