"""Well-known attribute keys of specification graphs.

The paper annotates "additional parameters, like priorities, power
consumption, latencies, etc." onto the components of the specification
graph.  This module centralises the keys the library itself consumes,
with typed accessors that validate values at the point of use.

Keys
----
``cost``
    Allocation cost of an architecture leaf or architecture cluster
    (used by the allocation-cost objective ``c_impl``).
``kind``
    On architecture vertices: ``"resource"`` (default) or ``"comm"``.
    Communication resources (buses) route inter-resource traffic and
    are never binding targets.
``period``
    On problem clusters (or vertices): minimal activation period of the
    load-carrying processes, in the paper's case study nanoseconds.
``negligible``
    On problem vertices: exclude the process from utilisation estimates
    (the paper neglects authentication and controller processes).
``weight``
    On problem clusters: weight for the weighted flexibility variant.
``reconfig_delay``
    On clusters: time needed to switch to this cluster at run time.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import ModelError
from ..hgraph import Attributed, Cluster, Vertex

#: Attribute keys understood by the library.
COST = "cost"
KIND = "kind"
PERIOD = "period"
NEGLIGIBLE = "negligible"
WEIGHT = "weight"
RECONFIG_DELAY = "reconfig_delay"

#: ``kind`` values for architecture vertices.
KIND_RESOURCE = "resource"
KIND_COMM = "comm"


def cost_of(element: Attributed, default: float = 0.0) -> float:
    """Allocation cost of an element (non-negative number)."""
    value = element.attrs.get(COST, default)
    try:
        cost = float(value)
    except (TypeError, ValueError):
        raise ModelError(f"cost must be numeric, got {value!r}") from None
    if cost < 0:
        raise ModelError(f"cost must be non-negative, got {cost!r}")
    return cost


def is_comm(vertex: Vertex) -> bool:
    """True when ``vertex`` is a communication resource (bus, link)."""
    kind = vertex.attrs.get(KIND, KIND_RESOURCE)
    if kind not in (KIND_RESOURCE, KIND_COMM):
        raise ModelError(
            f"vertex {vertex.name!r}: kind must be "
            f"{KIND_RESOURCE!r} or {KIND_COMM!r}, got {kind!r}"
        )
    return kind == KIND_COMM


def is_negligible(vertex: Vertex) -> bool:
    """True when the process is excluded from utilisation estimates."""
    return bool(vertex.attrs.get(NEGLIGIBLE, False))


def period_of(element: Attributed) -> Optional[float]:
    """Activation period of an element, or ``None`` when unconstrained."""
    value = element.attrs.get(PERIOD)
    if value is None:
        return None
    try:
        period = float(value)
    except (TypeError, ValueError):
        raise ModelError(f"period must be numeric, got {value!r}") from None
    if period <= 0:
        raise ModelError(f"period must be positive, got {period!r}")
    return period


def reconfig_delay_of(cluster: Cluster) -> float:
    """Reconfiguration delay of a cluster (default 0)."""
    value = cluster.attrs.get(RECONFIG_DELAY, 0.0)
    try:
        delay = float(value)
    except (TypeError, ValueError):
        raise ModelError(
            f"cluster {cluster.name!r}: reconfig_delay must be numeric"
        ) from None
    if delay < 0:
        raise ModelError(
            f"cluster {cluster.name!r}: reconfig_delay must be non-negative"
        )
    return delay


Number = Union[int, float]


def check_latency(value: Number) -> float:
    """Validate a mapping-edge latency annotation."""
    try:
        latency = float(value)
    except (TypeError, ValueError):
        raise ModelError(f"latency must be numeric, got {value!r}") from None
    if latency < 0:
        raise ModelError(f"latency must be non-negative, got {latency!r}")
    return latency
