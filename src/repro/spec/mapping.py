"""Mapping edges ``E_M``: the "can be implemented by" relation.

Mapping edges link leaves of the problem graph with leaves of the
architecture graph and carry the core execution time (latency) of the
process on that resource — exactly the content of Table 1 of the paper.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import ModelError
from .attributes import check_latency


class MappingEdge:
    """One "process can be implemented by resource" edge with a latency."""

    __slots__ = ("process", "resource", "latency", "attrs")

    def __init__(
        self,
        process: str,
        resource: str,
        latency: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not process or not resource:
            raise ModelError("mapping edge endpoints must be non-empty")
        self.process = process
        self.resource = resource
        self.latency = check_latency(latency)
        self.attrs = dict(attrs) if attrs else {}

    @property
    def pair(self) -> Tuple[str, str]:
        """The ``(process, resource)`` endpoint pair."""
        return (self.process, self.resource)

    def __repr__(self) -> str:
        return (
            f"MappingEdge({self.process!r} -> {self.resource!r}, "
            f"latency={self.latency})"
        )


class MappingTable:
    """The set ``E_M`` with fast lookups in both directions.

    At most one mapping edge per (process, resource) pair is allowed —
    Table 1 of the paper has one latency cell per pair.
    """

    def __init__(self) -> None:
        self._edges: Dict[Tuple[str, str], MappingEdge] = {}
        self._by_process: Dict[str, List[MappingEdge]] = {}
        self._by_resource: Dict[str, List[MappingEdge]] = {}

    def add(
        self,
        process: str,
        resource: str,
        latency: float,
        **attrs: Any,
    ) -> MappingEdge:
        """Add one mapping edge; duplicate pairs are rejected."""
        edge = MappingEdge(process, resource, latency, attrs)
        if edge.pair in self._edges:
            raise ModelError(
                f"duplicate mapping edge {process!r} -> {resource!r}"
            )
        self._edges[edge.pair] = edge
        self._by_process.setdefault(process, []).append(edge)
        self._by_resource.setdefault(resource, []).append(edge)
        return edge

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def edge(self, process: str, resource: str) -> Optional[MappingEdge]:
        """The edge for ``(process, resource)`` or ``None``."""
        return self._edges.get((process, resource))

    def latency(self, process: str, resource: str) -> float:
        """Latency of the pair; raises :class:`ModelError` when unmapped."""
        edge = self.edge(process, resource)
        if edge is None:
            raise ModelError(
                f"process {process!r} has no mapping onto {resource!r}"
            )
        return edge.latency

    def of_process(self, process: str) -> List[MappingEdge]:
        """All mapping edges leaving ``process`` (may be empty)."""
        return list(self._by_process.get(process, ()))

    def of_resource(self, resource: str) -> List[MappingEdge]:
        """All mapping edges entering ``resource`` (may be empty)."""
        return list(self._by_resource.get(resource, ()))

    def resources_of(self, process: str) -> Tuple[str, ...]:
        """Names of resources that can implement ``process``."""
        return tuple(e.resource for e in self._by_process.get(process, ()))

    def processes(self) -> Tuple[str, ...]:
        """All processes that have at least one mapping edge."""
        return tuple(self._by_process)

    def resources(self) -> Tuple[str, ...]:
        """All resources that appear as mapping targets."""
        return tuple(self._by_resource)

    def __iter__(self) -> Iterator[MappingEdge]:
        return iter(self._edges.values())

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return f"MappingTable(|E_M|={len(self)})"
