"""Text reporting: tables (Table 1, Pareto results) and ASCII plots (Fig. 4)."""

from .metrics import coverage, front_summary, hypervolume, knee_point
from .plot import ascii_scatter, staircase, tradeoff_plot
from .svg import front_svg, save_front_svg
from .tables import (
    format_table,
    jobs_table,
    mapping_table,
    pareto_table,
    stats_table,
)

__all__ = [
    "ascii_scatter",
    "coverage",
    "format_table",
    "front_summary",
    "front_svg",
    "hypervolume",
    "jobs_table",
    "knee_point",
    "mapping_table",
    "pareto_table",
    "save_front_svg",
    "staircase",
    "stats_table",
    "tradeoff_plot",
]
