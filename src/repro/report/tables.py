"""Plain-text table rendering for benches and examples.

Regenerates the paper's tabular artifacts: Table 1 (possible mappings
with core execution times) and the Section-5 Pareto results table.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.result import ExplorationResult
from ..spec import SpecificationGraph


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
    align_left_first: bool = True,
) -> str:
    """Render an aligned monospace table with a header rule."""
    materialised: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0 and align_left_first:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [render_row(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines) + "\n"


def mapping_table(
    spec: SpecificationGraph,
    process_order: Optional[Sequence[str]] = None,
    resource_order: Optional[Sequence[str]] = None,
    missing: str = "-",
) -> str:
    """Regenerate the paper's Table 1 from the model's mapping edges.

    Rows are processes, columns resources; cells hold the core
    execution time or ``-`` when the pair is unmapped.
    """
    processes = (
        list(process_order)
        if process_order is not None
        else sorted(spec.mappings.processes())
    )
    resources = (
        list(resource_order)
        if resource_order is not None
        else sorted(spec.mappings.resources())
    )
    rows = []
    for process in processes:
        row = [process]
        for resource in resources:
            edge = spec.mappings.edge(process, resource)
            row.append(missing if edge is None else f"{edge.latency:g}")
        rows.append(row)
    return format_table(["Process"] + resources, rows)


def pareto_table(result: ExplorationResult) -> str:
    """Render an exploration result like the paper's results table."""
    rows = []
    for impl in result.points:
        rows.append(
            [
                ", ".join(sorted(impl.units)),
                ", ".join(sorted(impl.clusters)),
                f"${impl.cost:g}",
                f"{impl.flexibility:g}",
            ]
        )
    return format_table(["Resources", "Clusters", "c", "f"], rows)


def stats_table(result: ExplorationResult) -> str:
    """Render exploration statistics (the Section-5 reduction numbers)."""
    stats = result.stats.as_dict()
    # Memo/warm-store diagnostics ride along after the deterministic
    # counters (they vary run-to-run; see ExplorationStats.cache_dict).
    stats.update(result.stats.cache_dict())
    rows = [[key.replace("_", " "), f"{value:g}"] for key, value in stats.items()]
    return format_table(["counter", "value"], rows)


def jobs_table(jobs: "Iterable[dict]") -> str:
    """Render the exploration-service job listing (``repro jobs``).

    ``jobs`` are plain dictionaries with ``id``/``name``/``state``/
    ``priority`` and the progress counters journaled by the service
    (missing counters render as ``-``).
    """
    rows = []
    for job in jobs:
        rows.append(
            [
                job.get("id", "-"),
                job.get("name", "-"),
                job.get("state", "-"),
                f"{job.get('priority', 1):g}",
                str(job.get("slices", "-")),
                str(job.get("preemptions", "-")),
                str(job.get("evaluations", "-")),
            ]
        )
    return format_table(
        ["job", "name", "state", "prio", "slices", "preempt", "evals"],
        rows,
    )
