"""Standalone SVG rendering of flexibility/cost fronts.

Produces a self-contained SVG document (no external assets, no plotting
library) showing the Pareto staircase in the (cost, flexibility) plane
— the publishable counterpart of the ASCII Figure-4 plot.  The output
is valid XML; tests parse it back.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from ..core.pareto import pareto_front

Point = Tuple[float, float]

#: Default canvas geometry.
WIDTH = 640
HEIGHT = 400
MARGIN = 56


def _scale(value: float, low: float, high: float, out_low: float, out_high: float) -> float:
    span = high - low
    if span <= 0:
        return (out_low + out_high) / 2.0
    return out_low + (value - low) / span * (out_high - out_low)


def front_svg(
    front: Sequence[Point],
    dominated: Sequence[Point] = (),
    title: str = "Flexibility/cost design space",
    width: int = WIDTH,
    height: int = HEIGHT,
) -> str:
    """SVG document of a front (and optionally dominated points).

    The front is drawn as a staircase with filled markers; dominated
    points as hollow markers.  Axes are annotated with the value
    ranges.  Returns the SVG as a string.
    """
    points = list(front) + list(dominated)
    lines: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
        f'font-family="sans-serif" font-size="15">{escape(title)}</text>',
    ]
    if points:
        costs = [c for c, _ in points]
        flexes = [f for _, f in points]
        c_low, c_high = min(costs), max(costs)
        f_low, f_high = min(min(flexes), 0.0), max(flexes)
        plot = (MARGIN, width - MARGIN // 2, height - MARGIN, MARGIN // 2 + 16)
        x_low, x_high, y_low, y_high = plot

        def transform(point: Point) -> Tuple[float, float]:
            cost, flexibility = point
            return (
                _scale(cost, c_low, c_high, x_low, x_high),
                _scale(flexibility, f_low, f_high, y_low, y_high),
            )

        # axes
        lines.append(
            f'<line x1="{x_low}" y1="{y_low}" x2="{x_high}" y2="{y_low}" '
            f'stroke="black"/>'
        )
        lines.append(
            f'<line x1="{x_low}" y1="{y_low}" x2="{x_low}" y2="{y_high}" '
            f'stroke="black"/>'
        )
        lines.append(
            f'<text x="{(x_low + x_high) / 2:.0f}" y="{height - 16}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="12">cost ({c_low:g} .. {c_high:g})</text>'
        )
        lines.append(
            f'<text x="16" y="{(y_low + y_high) / 2:.0f}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="12" transform="rotate(-90 16 '
            f'{(y_low + y_high) / 2:.0f})">flexibility '
            f'({f_low:g} .. {f_high:g})</text>'
        )
        # dominated points (hollow)
        for point in dominated:
            x, y = transform(point)
            lines.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="none" '
                f'stroke="#888" stroke-width="1.2"/>'
            )
        # staircase through the front
        ordered = pareto_front(list(front), keep_ties=False)
        if len(ordered) >= 2:
            path: List[str] = []
            for i, point in enumerate(ordered):
                x, y = transform(point)
                if i == 0:
                    path.append(f"M {x:.1f} {y:.1f}")
                else:
                    prev_x, _ = transform(ordered[i - 1])
                    path.append(f"L {x:.1f} {transform(ordered[i - 1])[1]:.1f}")
                    path.append(f"L {x:.1f} {y:.1f}")
            lines.append(
                f'<path d="{" ".join(path)}" fill="none" '
                f'stroke="#2a6fdb" stroke-width="1.6"/>'
            )
        # front markers + labels
        for point in ordered:
            x, y = transform(point)
            lines.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="5" '
                f'fill="#2a6fdb"/>'
            )
            lines.append(
                f'<text x="{x + 8:.1f}" y="{y - 8:.1f}" '
                f'font-family="sans-serif" font-size="11">'
                f"(${point[0]:g}, f={point[1]:g})</text>"
            )
    else:
        lines.append(
            f'<text x="{width / 2:.0f}" y="{height / 2:.0f}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="13">(no points)</text>'
        )
    lines.append("</svg>")
    return "\n".join(lines) + "\n"


def save_front_svg(
    front: Sequence[Point],
    path: str,
    dominated: Sequence[Point] = (),
    title: Optional[str] = None,
) -> None:
    """Write :func:`front_svg` output to ``path``."""
    text = front_svg(
        front,
        dominated,
        title if title is not None else "Flexibility/cost design space",
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
