"""ASCII plotting of the flexibility/cost design space (Figure 4).

The paper plots cost against the *reciprocal* flexibility and marks the
Pareto points whose dominated regions are pruned.  These renderers
reproduce that view in plain text so benches and examples can show the
tradeoff curve without a graphics stack.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..core.pareto import pareto_front

Point = Tuple[float, float]


def ascii_scatter(
    points: Sequence[Point],
    width: int = 60,
    height: int = 20,
    x_label: str = "cost",
    y_label: str = "1/flexibility",
    marker: str = "o",
    front_marker: str = "P",
) -> str:
    """Scatter plot of (x, y) points; Pareto points marked ``P``.

    Pareto optimality is evaluated in the paper's objective space:
    minimise both axes.
    """
    if not points:
        return "(no points)\n"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    # minimise/minimise front: translate to (cost, flexibility) dominance
    # by negating the second axis for pareto_front (which maximises it).
    front = set(
        (c, -f) for (c, f) in pareto_front([(x, -y) for (x, y) in points])
    )
    grid: List[List[str]] = [
        [" "] * (width + 1) for _ in range(height + 1)
    ]
    for point in points:
        x, y = point
        column = round((x - x_low) / x_span * width)
        row = height - round((y - y_low) / y_span * height)
        symbol = front_marker if point in front else marker
        grid[row][column] = symbol
    lines = [f"  {y_label} (max {y_high:g})"]
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * (width + 1))
    lines.append(
        f"   {x_label}: {x_low:g} .. {x_high:g}   "
        f"({front_marker} = Pareto-optimal)"
    )
    return "\n".join(lines) + "\n"


def tradeoff_plot(
    front: Iterable[Point],
    all_points: Iterable[Point] = (),
    width: int = 60,
    height: int = 20,
) -> str:
    """Figure-4 style plot: cost vs 1/flexibility.

    ``front`` and ``all_points`` are (cost, flexibility) pairs; points
    with zero flexibility are skipped (no feasible implementation).
    """
    def reciprocal(points: Iterable[Point]) -> List[Point]:
        return [(c, 1.0 / f) for (c, f) in points if f > 0]

    combined = reciprocal(all_points) + reciprocal(front)
    return ascii_scatter(combined, width=width, height=height)


def staircase(front: Sequence[Point], width: int = 60) -> str:
    """One-line-per-point rendering of a front with bar lengths by cost."""
    if not front:
        return "(empty front)\n"
    max_cost = max(c for c, _ in front) or 1.0
    lines = []
    for cost, flexibility in sorted(front):
        bar = "#" * max(1, round(cost / max_cost * width))
        lines.append(f"f={flexibility:>5g} | {bar} ${cost:g}")
    return "\n".join(lines) + "\n"
