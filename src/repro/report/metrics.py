"""Quantitative quality metrics of flexibility/cost fronts.

Used by the baseline bench to compare fronts beyond point-set equality:

* :func:`hypervolume` — area dominated by a front relative to a
  reference point (the standard multi-objective quality indicator);
* :func:`coverage` — fraction of one front's points dominated by or
  present in another (the C-metric);
* :func:`knee_point` — the point of maximal marginal
  flexibility-per-cost, a practical pick on the tradeoff curve.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..core.pareto import dominates, pareto_front

Point = Tuple[float, float]  # (cost, flexibility)


def hypervolume(
    front: Sequence[Point], reference: Optional[Point] = None
) -> float:
    """Dominated area of a (cost, flexibility) front.

    ``reference`` is the worst corner (max cost, min flexibility); when
    omitted it is derived from the front itself (max cost, 0).  Cost is
    minimised and flexibility maximised, so the area accumulates between
    each point's cost and the reference cost, over the flexibility gained
    since the previous point.
    """
    if not front:
        return 0.0
    clean = pareto_front(list(front), keep_ties=False)
    if reference is None:
        reference = (max(c for c, _ in clean), 0.0)
    ref_cost, ref_flex = reference
    total = 0.0
    previous_flex = ref_flex
    for cost, flexibility in clean:  # increasing cost, increasing flex
        if cost > ref_cost or flexibility <= previous_flex:
            continue
        total += (ref_cost - cost) * (flexibility - previous_flex)
        previous_flex = flexibility
    return total


def coverage(front_a: Iterable[Point], front_b: Iterable[Point]) -> float:
    """C-metric: fraction of ``front_b`` weakly dominated by ``front_a``.

    1.0 means every point of B is matched or beaten by some point of A;
    0.0 means none is.  An empty B yields 1.0 by convention.
    """
    a_points = list(front_a)
    b_points = list(front_b)
    if not b_points:
        return 1.0
    matched = sum(
        1
        for b in b_points
        if any(a == b or dominates(a, b) for a in a_points)
    )
    return matched / len(b_points)


def knee_point(front: Sequence[Point]) -> Optional[Point]:
    """The point with the best marginal flexibility per extra cost.

    Walks the cost-sorted front and returns the point maximising
    ``(f_i - f_{i-1}) / (c_i - c_{i-1})``; the first point is returned
    for single-point fronts.  ``None`` for empty fronts.
    """
    clean = pareto_front(list(front), keep_ties=False)
    if not clean:
        return None
    if len(clean) == 1:
        return clean[0]
    best_point = clean[0]
    best_slope = float("-inf")
    for (prev_cost, prev_flex), (cost, flexibility) in zip(
        clean, clean[1:]
    ):
        delta_cost = cost - prev_cost
        if delta_cost <= 0:
            continue
        slope = (flexibility - prev_flex) / delta_cost
        if slope > best_slope:
            best_slope = slope
            best_point = (cost, flexibility)
    return best_point


def front_summary(front: Sequence[Point]) -> dict:
    """Compact metric bundle for reports: size, span, hypervolume, knee."""
    clean = pareto_front(list(front), keep_ties=False)
    if not clean:
        return {
            "points": 0,
            "cost_span": (0.0, 0.0),
            "flexibility_span": (0.0, 0.0),
            "hypervolume": 0.0,
            "knee": None,
        }
    return {
        "points": len(clean),
        "cost_span": (clean[0][0], clean[-1][0]),
        "flexibility_span": (clean[0][1], clean[-1][1]),
        "hypervolume": hypervolume(clean),
        "knee": knee_point(clean),
    }
