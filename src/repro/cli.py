"""Command-line interface.

Exposes the library's main workflows on specification-graph JSON files
(see :mod:`repro.io.json_io` for the format)::

    python -m repro demo settop --save settop.json   # export a case study
    python -m repro lint settop.json                 # diagnostics
    python -m repro table settop.json                # Table-1 style mappings
    python -m repro explore settop.json --plot       # Pareto front
    python -m repro upgrade settop.json --base muP2  # incremental design
    python -m repro synth --apps 3 --save synth.json # synthetic generator
    python -m repro dot settop.json > settop.dot     # Graphviz export

the introspection toolchain (:mod:`repro.trace`)::

    python -m repro explore settop.json --trace t.jsonl  # record a trace
    python -m repro explain t.jsonl --tree               # render it
    python -m repro trace settop.json --chrome t.json    # both in one step

and the exploration service (:mod:`repro.service`)::

    python -m repro submit run/ settop.json          # spool a job
    python -m repro serve run/ --workers 2           # drain the queue
    python -m repro jobs run/                        # list jobs
    python -m repro watch run/ j0000 --follow        # stream job events

and the telemetry plane (:mod:`repro.telemetry`)::

    python -m repro top run/                         # live dashboard
    python -m repro telemetry dump run/ --format prometheus
    python -m repro telemetry diff before/ after/    # per-series deltas
    python -m repro cache stats store/ --format prometheus
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from typing import List, Optional

from . import __version__
from .casestudies import (
    TABLE1_PROCESS_ORDER,
    TABLE1_RESOURCE_ORDER,
    build_settop_spec,
    build_tv_decoder_spec,
    synthetic_spec,
)
from .core import explore, explore_upgrades, max_flexibility
from .errors import OverloadedError, ReproError
from .io import (
    dump_result,
    dump_spec,
    load_spec,
    result_to_csv,
    spec_to_dot,
)
from .report import mapping_table, pareto_table, stats_table, tradeoff_plot
from .spec import ERROR, lint_specification

#: Exit codes.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_LINT = 2
#: ``explore`` ended on an anytime budget (--deadline/--max-evaluations):
#: the printed front is valid but possibly incomplete (see the gap line).
EXIT_TRUNCATED = 3
#: A submission was refused by admission control (the service queue is
#: full under --max-queued): back off and resubmit.
EXIT_OVERLOADED = 4


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Flexibility/cost design-space exploration "
            "(reproduction of 'System Design for Flexibility', DATE 2002)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log to stderr (-v: info, -vv: debug)",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="explicit stderr log level (overrides -v)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser(
        "demo", help="build a bundled case study, print a summary"
    )
    demo.add_argument(
        "name", choices=("settop", "tv"), help="which case study"
    )
    demo.add_argument("--save", metavar="FILE", help="write the spec JSON")

    synth = commands.add_parser(
        "synth", help="generate a synthetic specification"
    )
    synth.add_argument("--apps", type=int, default=3)
    synth.add_argument("--interfaces", type=int, default=2)
    synth.add_argument("--alternatives", type=int, default=3)
    synth.add_argument("--procs", type=int, default=2)
    synth.add_argument("--accels", type=int, default=3)
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--save", metavar="FILE", help="write the spec JSON")

    lint = commands.add_parser(
        "lint", help="diagnose a specification (exit 2 on errors)"
    )
    lint.add_argument("spec", help="specification JSON file")

    table = commands.add_parser(
        "table", help="print the mapping table (Table-1 style)"
    )
    table.add_argument("spec", help="specification JSON file")

    dot = commands.add_parser("dot", help="print Graphviz DOT")
    dot.add_argument("spec", help="specification JSON file")

    explore_cmd = commands.add_parser(
        "explore",
        help="run the EXPLORE branch-and-bound",
        description=(
            "Run the EXPLORE branch-and-bound.  Exits 0 on a complete "
            "run and 3 when --deadline/--max-evaluations truncated it "
            "(the front is then best-so-far with an explicit optimality "
            "gap).  A run started with --checkpoint can be continued "
            "after a crash with --resume."
        ),
    )
    explore_cmd.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="specification JSON file (omit with --resume)",
    )
    explore_cmd.add_argument(
        "--util-bound", type=float, default=0.69,
        help="utilisation acceptance bound (default 0.69)",
    )
    explore_cmd.add_argument(
        "--max-cost", type=float, default=None,
        help="stop at this allocation cost",
    )
    explore_cmd.add_argument(
        "--keep-ties", action="store_true",
        help="report equally-optimal allocations of the same cost",
    )
    explore_cmd.add_argument(
        "--no-timing", action="store_true",
        help="skip the utilisation test",
    )
    explore_cmd.add_argument(
        "--timing-mode", choices=("utilization", "schedule", "none"),
        default=None,
        help=(
            "performance test: the paper's 69%% estimate (default), "
            "exact one-period scheduling, or none"
        ),
    )
    explore_cmd.add_argument(
        "--parallel", choices=("serial", "thread", "process"),
        default="serial",
        help=(
            "candidate-evaluation backend: the classic serial loop "
            "(default) or a batched thread/process pool with identical "
            "results"
        ),
    )
    explore_cmd.add_argument(
        "--engine", choices=("compiled", "reference"), default=None,
        help=(
            "candidate-evaluation engine: the compiled bitmask kernel "
            "(default) or the reference pipeline; identical results "
            "either way (see docs/performance.md)"
        ),
    )
    explore_cmd.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="candidates per dispatched batch in parallel modes",
    )
    explore_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-pool size in parallel modes (default: CPU count)",
    )
    explore_cmd.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "anytime wall-clock budget: stop gracefully after this many "
            "seconds with the best-so-far front and an optimality gap "
            "(exit code 3 when truncated)"
        ),
    )
    explore_cmd.add_argument(
        "--max-evaluations", type=int, default=None, metavar="N",
        help=(
            "anytime budget on full candidate evaluations (binding "
            "solver runs); exit code 3 when truncated"
        ),
    )
    explore_cmd.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help=(
            "journal outcomes and replay snapshots to FILE so a killed "
            "run can be continued with --resume FILE"
        ),
    )
    explore_cmd.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="candidates between fsync'd snapshots (default 64)",
    )
    explore_cmd.add_argument(
        "--resume", metavar="FILE", default=None,
        help=(
            "continue a checkpointed run from FILE (the spec argument "
            "must be omitted; the journal is self-contained)"
        ),
    )
    explore_cmd.add_argument(
        "--warm-store", metavar="DIR", default=None,
        help=(
            "persistent warm-start store: reuse binding verdicts "
            "recorded by earlier runs in DIR and record this run's "
            "(results are byte-identical either way; see 'repro cache' "
            "and docs/performance.md)"
        ),
    )
    explore_cmd.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "partition the allocation space into N disjoint shards, "
            "explore each independently and replay-merge the fronts "
            "(byte-identical to an unsharded run; see docs/distributed.md)"
        ),
    )
    explore_cmd.add_argument(
        "--shard-strategy", choices=("band", "prefix"), default="band",
        help=(
            "partition by total-cost bands (default) or by allocation "
            "prefixes over the most balanced BDD variables"
        ),
    )
    explore_cmd.add_argument(
        "--shard-mode", choices=("inline", "service", "remote"),
        default="inline",
        help=(
            "dispatch shards in this process (default), through an "
            "exploration service, or to 'repro shard-worker' servers"
        ),
    )
    explore_cmd.add_argument(
        "--shard-workers", metavar="HOST:PORT,...", default=None,
        help="comma-separated shard-worker addresses (remote mode)",
    )
    explore_cmd.add_argument(
        "--shard-dir", metavar="DIR", default=None,
        help=(
            "durable workdir for the shard manifest and per-shard "
            "checkpoint journals (a rerun resumes finished shards); "
            "default: a temporary directory"
        ),
    )
    explore_cmd.add_argument(
        "--heartbeat-seconds", type=float, default=None, metavar="S",
        help=(
            "remote mode: ask workers to stream heartbeat frames every "
            "S seconds while a shard runs (default 1; 0 disables)"
        ),
    )
    explore_cmd.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="S",
        help=(
            "remote mode: declare a worker hung (and fail the shard "
            "over) after S seconds without a frame (default 30)"
        ),
    )
    explore_cmd.add_argument(
        "--plot", action="store_true", help="render the tradeoff curve"
    )
    explore_cmd.add_argument(
        "--stats", action="store_true", help="print exploration statistics"
    )
    explore_cmd.add_argument(
        "--json", metavar="FILE", help="write the result JSON"
    )
    explore_cmd.add_argument(
        "--csv", metavar="FILE", help="write the front as CSV"
    )
    explore_cmd.add_argument(
        "--svg", metavar="FILE", help="render the front as SVG"
    )
    explore_cmd.add_argument(
        "--trace", metavar="FILE", default=None,
        help=(
            "record the search trace to FILE (JSONL; inspect with "
            "'repro explain FILE')"
        ),
    )
    explore_cmd.add_argument(
        "--trace-level", choices=("spans", "audit"), default="audit",
        help=(
            "spans: phase/evaluation records only; audit: additionally "
            "one record per pruned candidate (default)"
        ),
    )
    explore_cmd.add_argument(
        "--chrome-trace", metavar="FILE", default=None,
        help=(
            "export a Chrome trace-event JSON timeline (open in "
            "Perfetto or chrome://tracing)"
        ),
    )

    explain = commands.add_parser(
        "explain",
        help="render a search trace (or result) as a human report",
        description=(
            "Explain an EXPLORE run from its artefacts alone.  FILE is "
            "either a trace JSONL written by 'repro explore --trace' / "
            "'repro trace' (per-phase time breakdown, prune-reason "
            "audit, bound-tightness statistics, optionally the search "
            "tree) or a result JSON written by --json (front and "
            "statistics tables)."
        ),
    )
    explain.add_argument("file", help="trace JSONL or result JSON file")
    explain.add_argument(
        "--tree", action="store_true",
        help="render the search tree by cost band (audit traces)",
    )
    explain.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="cost bands shown in the tree (default 20)",
    )

    trace_cmd = commands.add_parser(
        "trace",
        help="explore with tracing on and explain the run",
        description=(
            "Run EXPLORE with the tracer attached, write the requested "
            "exports, and print the explain report.  Equivalent to "
            "'repro explore --trace ... && repro explain ...' in one "
            "step."
        ),
    )
    trace_cmd.add_argument("spec", help="specification JSON file")
    trace_cmd.add_argument(
        "--level", choices=("spans", "audit"), default="audit",
        help="trace detail level (default audit)",
    )
    trace_cmd.add_argument(
        "--jsonl", metavar="FILE", default=None,
        help="write the trace JSONL log",
    )
    trace_cmd.add_argument(
        "--chrome", metavar="FILE", default=None,
        help="write the Chrome trace-event JSON timeline",
    )
    trace_cmd.add_argument("--tree", action="store_true")
    trace_cmd.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="cost bands shown with --tree (default 20)",
    )
    trace_cmd.add_argument("--util-bound", type=float, default=0.69)
    trace_cmd.add_argument("--max-cost", type=float, default=None)
    trace_cmd.add_argument("--keep-ties", action="store_true")
    trace_cmd.add_argument(
        "--timing-mode", choices=("utilization", "schedule", "none"),
        default=None,
    )
    trace_cmd.add_argument(
        "--parallel", choices=("serial", "thread", "process"),
        default="serial",
    )
    trace_cmd.add_argument("--batch-size", type=int, default=None)
    trace_cmd.add_argument("--workers", type=int, default=None)
    trace_cmd.add_argument(
        "--engine", choices=("compiled", "reference"), default=None,
        help="candidate-evaluation engine (identical results)",
    )

    upgrade = commands.add_parser(
        "upgrade", help="incremental design: upgrades of a base allocation"
    )
    upgrade.add_argument("spec", help="specification JSON file")
    upgrade.add_argument(
        "--base", required=True,
        help="comma-separated base units, e.g. muP2 or muP2,C1,D3",
    )
    upgrade.add_argument("--max-extra-cost", type=float, default=None)

    failures = commands.add_parser(
        "failures",
        help="single-unit failure impact of an allocation",
    )
    failures.add_argument("spec", help="specification JSON file")
    failures.add_argument(
        "--allocation", required=True,
        help="comma-separated allocated units, e.g. muP2,A1,C2",
    )

    serve = commands.add_parser(
        "serve",
        help="run the exploration service on a directory",
        description=(
            "Run the exploration service: recover any jobs journaled in "
            "DIR, ingest spooled submissions, and time-slice every job "
            "over one shared worker pool until the queue drains.  A "
            "killed service restarted on the same DIR resumes each "
            "incomplete job from its checkpoint to identical results."
        ),
    )
    serve.add_argument("dir", help="service directory (created if missing)")
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shared worker-pool size (default: CPU count)",
    )
    serve.add_argument(
        "--pool", choices=("thread", "serial"), default="thread",
        help="pool kind (serial = inline evaluation)",
    )
    serve.add_argument(
        "--slice-evaluations", type=int, default=None, metavar="N",
        help="candidate evaluations per scheduling slice (default 32)",
    )
    serve.add_argument(
        "--aging-rate", type=float, default=0.0, metavar="R",
        help="priority-aging rate (pass units per waiting second)",
    )
    serve.add_argument(
        "--max-slices", type=int, default=None, metavar="N",
        help="stop after N slices even if jobs remain (they resume later)",
    )
    serve.add_argument(
        "--poll", type=float, default=0.0, metavar="SECONDS",
        help="when idle, keep watching the spool this long before exiting",
    )
    serve.add_argument(
        "--max-queued", type=int, default=None, metavar="N",
        help=(
            "admission control: bound the runnable queue at N jobs "
            "(default: unbounded)"
        ),
    )
    serve.add_argument(
        "--overload-policy", choices=("reject", "shed"), default="reject",
        help=(
            "what a full queue does to a submission: refuse it (exit "
            "code 4 via the CLI) or shed the lowest-priority queued "
            "job to make room"
        ),
    )
    serve.add_argument(
        "--slice-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "watchdog budget per scheduling slice: a slice exceeding "
            "it is preempted (typed HangError) and the job quarantined "
            "(default: unsupervised)"
        ),
    )
    serve.add_argument(
        "--warm-store", metavar="DIR", default="auto",
        help=(
            "warm-start store shared by every job on this service "
            "(default: DIR/warmstore inside the service directory; "
            "'none' disables persistence)"
        ),
    )

    cache = commands.add_parser(
        "cache",
        help="inspect or maintain a warm-start store",
        description=(
            "Inspect or maintain a persistent warm-start store "
            "(written by 'repro explore --warm-store DIR' or by the "
            "service).  'stats' prints entry/byte counts per spec "
            "namespace, 'verify' sweeps every segment record strictly "
            "(CRC + digest + version) and exits nonzero on any "
            "problem, 'gc' compacts the segments and evicts "
            "least-recently-used namespaces down to --max-bytes."
        ),
    )
    cache.add_argument(
        "action", choices=("stats", "verify", "gc"),
        help="what to do with the store",
    )
    cache.add_argument("store", help="warm-start store directory")
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="gc: evict namespaces until the store is under N bytes",
    )
    cache.add_argument(
        "--json", action="store_true", help="print machine-readable JSON"
    )
    cache.add_argument(
        "--format", choices=("text", "json", "prometheus"), default=None,
        help=(
            "stats output format (default text; 'prometheus' emits the "
            "store's lifetime counters and sizes as exposition text)"
        ),
    )

    top = commands.add_parser(
        "top",
        help="live job/resource dashboard for a service directory",
        description=(
            "Render a periodically refreshing dashboard for 'repro "
            "serve DIR': one row per job (state, candidates, "
            "evaluations, incumbent flexibility, last event) plus the "
            "service's exported process/store metrics.  Reads only the "
            "service's published artifacts (job ledger, per-job event "
            "streams, metrics.json) — it never touches the service "
            "process, so it is safe against a live or a dead service."
        ),
    )
    top.add_argument("dir", help="service directory")
    top.add_argument(
        "--refresh", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default 1.0)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N refreshes (default: until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit (same as --iterations 1)",
    )
    top.add_argument(
        "--json", action="store_true",
        help="print snapshots as JSON objects instead of a table",
    )

    telemetry = commands.add_parser(
        "telemetry",
        help="dump or diff a service's exported metrics snapshots",
        description=(
            "Operate on the metrics.json a 'repro serve' exports: "
            "'dump DIR' re-validates the snapshot and prints it as "
            "JSON or Prometheus exposition text; 'diff A B' compares "
            "two snapshots (directories or saved metrics.json files) "
            "and prints per-series deltas — counters/gauges by value, "
            "histograms by count and sum."
        ),
    )
    telemetry.add_argument(
        "action", choices=("dump", "diff"), help="what to do"
    )
    telemetry.add_argument(
        "paths", nargs="+", metavar="PATH",
        help=(
            "dump: one service directory or metrics.json; "
            "diff: two of them (before, after)"
        ),
    )
    telemetry.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="dump output format (default json)",
    )

    shard_worker = commands.add_parser(
        "shard-worker",
        help="serve shard runs for distributed exploration",
        description=(
            "Run a shard-worker server: accept 'run' requests from a "
            "sharded 'repro explore' coordinator over the CRC-framed "
            "shard protocol, journal each shard into DIR and reply "
            "with the result and journal.  A worker killed mid-run and "
            "restarted on the same DIR resumes every shard from its "
            "newest snapshot — the coordinator's bounded retries make "
            "the merged front identical to an uninterrupted run."
        ),
    )
    shard_worker.add_argument(
        "dir", help="worker journal directory (created if missing)"
    )
    shard_worker.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    shard_worker.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = ephemeral; the bound port is printed)",
    )
    shard_worker.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="exit after serving N connections (default: until shutdown)",
    )

    submit = commands.add_parser(
        "submit",
        help="spool a job for an exploration service",
        description=(
            "Atomically spool one exploration job into DIR/queue.  A "
            "running (or later) 'repro serve DIR' adopts it into the "
            "job ledger and schedules it."
        ),
    )
    submit.add_argument("dir", help="service directory")
    submit.add_argument("spec", help="specification JSON file")
    submit.add_argument("--name", default=None, help="job name (default: spec name)")
    submit.add_argument(
        "--priority", type=float, default=1.0,
        help="fair-share weight (higher = more pool time)",
    )
    submit.add_argument("--util-bound", type=float, default=None)
    submit.add_argument("--max-cost", type=float, default=None)
    submit.add_argument("--keep-ties", action="store_true")
    submit.add_argument(
        "--timing-mode", choices=("utilization", "schedule", "none"),
        default=None,
    )
    submit.add_argument("--batch-size", type=int, default=None)
    submit.add_argument(
        "--engine", choices=("compiled", "reference"), default=None,
        help="candidate-evaluation engine (identical results)",
    )

    jobs_cmd = commands.add_parser(
        "jobs", help="list an exploration service directory's jobs"
    )
    jobs_cmd.add_argument("dir", help="service directory")
    jobs_cmd.add_argument(
        "--json", action="store_true", help="print machine-readable JSON"
    )

    watch = commands.add_parser(
        "watch",
        help="stream a job's events from a service directory",
        description=(
            "Print a job's observation events (one JSON object per "
            "line).  With --follow, keep tailing until the job reaches "
            "a terminal state or --idle-timeout seconds pass without a "
            "new event."
        ),
    )
    watch.add_argument("dir", help="service directory")
    watch.add_argument("job", help="job id (see 'repro jobs')")
    watch.add_argument(
        "--follow", action="store_true", help="keep tailing for new events"
    )
    watch.add_argument(
        "--idle-timeout", type=float, default=30.0, metavar="SECONDS",
        help="give up following after this long without events",
    )

    return parser


def _print(text: str, out) -> None:
    out.write(text)
    if not text.endswith("\n"):
        out.write("\n")


def _cmd_demo(args, out) -> int:
    spec = build_settop_spec() if args.name == "settop" else build_tv_decoder_spec()
    _print(
        f"{spec.name}: |V_S|={spec.vs_size()}, |E_M|={len(spec.mappings)}, "
        f"{len(spec.units)} units, max flexibility "
        f"{max_flexibility(spec.problem):g}",
        out,
    )
    if args.save:
        dump_spec(spec, args.save)
        _print(f"wrote {args.save}", out)
    return EXIT_OK


def _cmd_synth(args, out) -> int:
    spec = synthetic_spec(
        n_apps=args.apps,
        interfaces_per_app=args.interfaces,
        alternatives=args.alternatives,
        n_procs=args.procs,
        n_accels=args.accels,
        seed=args.seed,
    )
    _print(
        f"{spec.name}: |V_S|={spec.vs_size()}, {len(spec.units)} units, "
        f"design space 2^{len(spec.units)}",
        out,
    )
    if args.save:
        dump_spec(spec, args.save)
        _print(f"wrote {args.save}", out)
    return EXIT_OK


def _cmd_lint(args, out) -> int:
    spec = load_spec(args.spec)
    diagnostics = lint_specification(spec)
    if not diagnostics:
        _print("no findings", out)
        return EXIT_OK
    for diagnostic in diagnostics:
        _print(repr(diagnostic), out)
    has_errors = any(d.level == ERROR for d in diagnostics)
    return EXIT_LINT if has_errors else EXIT_OK


def _cmd_table(args, out) -> int:
    spec = load_spec(args.spec)
    if spec.name == "SetTop_spec":
        text = mapping_table(
            spec, TABLE1_PROCESS_ORDER, TABLE1_RESOURCE_ORDER
        )
    else:
        text = mapping_table(spec)
    _print(text, out)
    return EXIT_OK


def _cmd_dot(args, out) -> int:
    _print(spec_to_dot(load_spec(args.spec)), out)
    return EXIT_OK


def _build_tracer(args, spec=None):
    """The tracer of an explore/trace invocation, or ``None``."""
    jsonl = getattr(args, "trace", None) or getattr(args, "jsonl", None)
    chrome = getattr(args, "chrome_trace", None) or getattr(
        args, "chrome", None
    )
    wants_report = getattr(args, "command", None) == "trace"
    if not (jsonl or chrome or wants_report):
        return None
    from .trace import Tracer, compute_trace_id

    level = getattr(args, "trace_level", None) or getattr(
        args, "level", "audit"
    )
    trace_id = compute_trace_id(spec) if spec is not None else None
    return Tracer(level=level, trace_id=trace_id)


def _export_tracer(tracer, jsonl, chrome, out) -> None:
    if tracer is None:
        return
    from .trace import write_chrome_trace, write_trace

    if jsonl:
        write_trace(tracer, jsonl)
        _print(f"wrote {jsonl}", out)
    if chrome:
        write_chrome_trace(tracer, chrome)
        _print(f"wrote {chrome}", out)


def _cmd_explore(args, out) -> int:
    if args.shards is not None and (
        args.checkpoint is not None or args.resume is not None
    ):
        print(
            "error: --shards manages its own per-shard journals under "
            "--shard-dir; do not combine it with --checkpoint/--resume",
            file=sys.stderr,
        )
        return EXIT_ERROR
    if args.shards is None and args.shard_workers is not None:
        print(
            "error: --shard-workers requires --shards N "
            "--shard-mode remote",
            file=sys.stderr,
        )
        return EXIT_ERROR
    if args.shards is not None:
        return _cmd_explore_sharded(args, out)
    if args.resume is not None:
        if args.spec is not None:
            print(
                "error: --resume continues a self-contained checkpoint; "
                "do not pass a spec file as well",
                file=sys.stderr,
            )
            return EXIT_ERROR
        from .resilience import resume_explore

        overrides = {}
        if args.deadline is not None:
            overrides["deadline_seconds"] = args.deadline
        if args.max_evaluations is not None:
            overrides["max_evaluations"] = args.max_evaluations
        if args.parallel != "serial":
            overrides["parallel"] = args.parallel
        if args.batch_size is not None:
            overrides["batch_size"] = args.batch_size
        if args.workers is not None:
            overrides["workers"] = args.workers
        if args.checkpoint_every is not None:
            overrides["checkpoint_every"] = args.checkpoint_every
        if args.engine is not None:
            overrides["engine"] = args.engine
        if args.warm_store is not None:
            overrides["warm_store"] = args.warm_store
        tracer = _build_tracer(args)
        result = resume_explore(args.resume, tracer=tracer, **overrides)
        spec_name = "resumed run"
    else:
        if args.spec is None:
            print(
                "error: a specification file is required "
                "(or --resume FILE)",
                file=sys.stderr,
            )
            return EXIT_ERROR
        spec = load_spec(args.spec)
        spec_name = spec.name
        tracer = _build_tracer(args, spec)
        result = explore(
            spec,
            util_bound=args.util_bound,
            max_cost=args.max_cost,
            check_utilization=not args.no_timing,
            keep_ties=args.keep_ties,
            timing_mode=args.timing_mode,
            parallel=args.parallel,
            batch_size=args.batch_size,
            workers=args.workers,
            deadline_seconds=args.deadline,
            max_evaluations=args.max_evaluations,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            tracer=tracer,
            engine=args.engine,
            warm_store=args.warm_store,
        )
    _print(pareto_table(result), out)
    if not result.completed and result.gap is not None:
        gap = result.gap
        _print(
            f"TRUNCATED ({gap.reason}): best-so-far front; any missed "
            f"implementation costs >= ${gap.next_cost_bound:g} and no "
            f"implementation exceeds flexibility "
            f"{gap.flexibility_bound:g} (achieved "
            f"{gap.achieved_flexibility:g})",
            out,
        )
    if args.plot:
        _print(tradeoff_plot(result.front()), out)
    if args.stats:
        _print(stats_table(result), out)
    if args.json:
        dump_result(result, args.json)
        _print(f"wrote {args.json}", out)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(result_to_csv(result))
        _print(f"wrote {args.csv}", out)
    if args.svg:
        from .report import save_front_svg

        save_front_svg(
            result.front(), args.svg, title=f"{spec_name}: front"
        )
        _print(f"wrote {args.svg}", out)
    _export_tracer(tracer, args.trace, args.chrome_trace, out)
    return EXIT_OK if result.completed else EXIT_TRUNCATED


def _cmd_explore_sharded(args, out) -> int:
    """The --shards branch of explore: partition, dispatch, merge."""
    from .distributed import explore_sharded

    if args.spec is None:
        print("error: a specification file is required", file=sys.stderr)
        return EXIT_ERROR
    spec = load_spec(args.spec)
    tracer = _build_tracer(args, spec)
    workers = None
    if args.shard_workers is not None:
        workers = [
            address.strip()
            for address in args.shard_workers.split(",")
            if address.strip()
        ]
    supervision_kwargs = {}
    if args.heartbeat_seconds is not None:
        # 0 disables beats (legacy single end-of-run receive).
        supervision_kwargs["heartbeat_seconds"] = (
            args.heartbeat_seconds or None
        )
    if args.heartbeat_timeout is not None:
        supervision_kwargs["heartbeat_timeout"] = args.heartbeat_timeout
    sharded = explore_sharded(
        spec,
        shards=args.shards,
        strategy=args.shard_strategy,
        mode=args.shard_mode,
        workers=workers,
        workdir=args.shard_dir,
        checkpoint_every=args.checkpoint_every,
        **supervision_kwargs,
        tracer=tracer,
        util_bound=args.util_bound,
        max_cost=args.max_cost,
        check_utilization=not args.no_timing,
        keep_ties=args.keep_ties,
        timing_mode=args.timing_mode,
        parallel=args.parallel,
        batch_size=args.batch_size,
        deadline_seconds=args.deadline,
        max_evaluations=args.max_evaluations,
        engine=args.engine,
    )
    result = sharded.result
    _print(
        f"sharded explore: {len(sharded.shards)} "
        f"{sharded.strategy} shards via {sharded.mode} "
        f"(merge {sharded.merge_seconds:.3f}s)",
        out,
    )
    lost = sharded.lost_shards
    if lost:
        _print(
            f"LOST shards {[s.index for s in lost]}: front degraded to "
            f"the sound prefix below (see the gap)",
            out,
        )
    _print(pareto_table(result), out)
    if not result.completed and result.gap is not None:
        gap = result.gap
        _print(
            f"TRUNCATED ({gap.reason}): best-so-far front; any missed "
            f"implementation costs >= ${gap.next_cost_bound:g} and no "
            f"implementation exceeds flexibility "
            f"{gap.flexibility_bound:g} (achieved "
            f"{gap.achieved_flexibility:g})",
            out,
        )
    if args.plot:
        _print(tradeoff_plot(result.front()), out)
    if args.stats:
        _print(stats_table(result), out)
    if args.json:
        dump_result(result, args.json)
        _print(f"wrote {args.json}", out)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(result_to_csv(result))
        _print(f"wrote {args.csv}", out)
    if args.svg:
        from .report import save_front_svg

        save_front_svg(
            result.front(), args.svg, title=f"{spec.name}: front"
        )
        _print(f"wrote {args.svg}", out)
    _export_tracer(tracer, args.trace, args.chrome_trace, out)
    return EXIT_OK if result.completed else EXIT_TRUNCATED


def _cmd_shard_worker(args, out) -> int:
    from .distributed import serve

    def ready(bound) -> None:
        _print(f"shard-worker listening on {bound[0]}:{bound[1]}", out)
        if out is sys.stdout:
            out.flush()

    serve(
        args.dir,
        host=args.host,
        port=args.port,
        max_requests=args.max_requests,
        ready=ready,
    )
    return EXIT_OK


def _cmd_explain(args, out) -> int:
    from .trace import TRACE_FORMAT, explain_text, read_trace

    with open(args.file, "r", encoding="utf-8") as handle:
        first_line = handle.readline().strip()
    try:
        header = json.loads(first_line) if first_line else {}
    except ValueError:
        header = {}
    if isinstance(header, dict) and header.get("format") == TRACE_FORMAT:
        records = read_trace(args.file)
        _print(
            explain_text(records, tree=args.tree, limit=args.limit), out
        )
        return EXIT_OK
    from .io import load_result

    result = load_result(args.file)
    _print(pareto_table(result), out)
    _print(stats_table(result), out)
    if not result.completed and result.gap is not None:
        gap = result.gap
        _print(
            f"TRUNCATED ({gap.reason}): any missed implementation costs "
            f">= ${gap.next_cost_bound:g}",
            out,
        )
    return EXIT_OK


def _cmd_trace(args, out) -> int:
    from .trace import explain_text

    spec = load_spec(args.spec)
    tracer = _build_tracer(args, spec)
    result = explore(
        spec,
        util_bound=args.util_bound,
        max_cost=args.max_cost,
        keep_ties=args.keep_ties,
        timing_mode=args.timing_mode,
        parallel=args.parallel,
        batch_size=args.batch_size,
        workers=args.workers,
        tracer=tracer,
        engine=args.engine,
    )
    _print(
        explain_text(
            tracer.all_records(), tree=args.tree, limit=args.limit
        ),
        out,
    )
    _export_tracer(tracer, args.jsonl, args.chrome, out)
    return EXIT_OK if result.completed else EXIT_TRUNCATED


def _cmd_upgrade(args, out) -> int:
    spec = load_spec(args.spec)
    base_units = [u.strip() for u in args.base.split(",") if u.strip()]
    result = explore_upgrades(
        spec, base_units, max_extra_cost=args.max_extra_cost
    )
    _print(
        f"base: {sorted(result.base.units)} cost=${result.base.cost:g} "
        f"flexibility={result.base.flexibility:g}",
        out,
    )
    _print(pareto_table(result), out)
    extras = ", ".join(f"+${e:g}" for e in result.upgrade_costs())
    _print(f"upgrade costs: {extras}", out)
    return EXIT_OK


def _cmd_failures(args, out) -> int:
    from .core import evaluate_allocation, single_failure_report
    from .report import format_table

    spec = load_spec(args.spec)
    units = [u.strip() for u in args.allocation.split(",") if u.strip()]
    implementation = evaluate_allocation(spec, units)
    if implementation is None:
        print(
            f"error: allocation {units!r} has no feasible implementation",
            file=sys.stderr,
        )
        return EXIT_ERROR
    _print(
        f"baseline: cost=${implementation.cost:g} "
        f"flexibility={implementation.flexibility:g}",
        out,
    )
    rows = []
    for impact in single_failure_report(spec, implementation):
        rows.append(
            [
                ", ".join(sorted(impact.failed_units)),
                f"{impact.remaining_flexibility:g}",
                "TOTAL OUTAGE"
                if impact.total_outage
                else ", ".join(sorted(impact.lost_clusters)) or "(none)",
            ]
        )
    _print(
        format_table(["failed unit", "remaining f", "lost clusters"], rows),
        out,
    )
    return EXIT_OK


def _cmd_serve(args, out) -> int:
    from .service import ExplorationService

    kwargs = {}
    if args.slice_evaluations is not None:
        kwargs["slice_evaluations"] = args.slice_evaluations
    warm_store = None if args.warm_store == "none" else args.warm_store
    with ExplorationService(
        args.dir,
        workers=args.workers,
        pool_kind=args.pool,
        aging_rate=args.aging_rate,
        max_queued=args.max_queued,
        overload_policy=args.overload_policy,
        slice_timeout=args.slice_timeout,
        warm_store=warm_store,
        **kwargs,
    ) as service:
        executed = service.run(
            max_slices=args.max_slices, poll_seconds=args.poll
        )
        jobs = service.list_jobs()
        failed = [j for j in jobs if j.state == "failed"]
        _print(
            f"{executed} slice(s); "
            f"{sum(1 for j in jobs if j.state == 'completed')} completed, "
            f"{sum(1 for j in jobs if j.state in ('queued', 'running'))} "
            f"pending, {len(failed)} failed",
            out,
        )
        for job in failed:
            print(
                f"error: job {job.job_id} ({job.name}): {job.error}",
                file=sys.stderr,
            )
    return EXIT_ERROR if failed else EXIT_OK


def _cmd_cache(args, out) -> int:
    from .store import describe_store, open_store

    if not os.path.isdir(args.store):
        print(
            f"error: no warm-start store at {args.store}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    store = open_store(args.store)
    if args.action == "stats":
        fmt = args.format or ("json" if args.json else "text")
        if fmt == "prometheus":
            from .telemetry import MetricRegistry, export_store_metrics

            registry = MetricRegistry()
            export_store_metrics(store, registry)
            _print(registry.to_prometheus(), out)
            return EXIT_OK
        document = store.stats()
        if fmt == "json":
            _print(json.dumps(document, indent=2, sort_keys=True), out)
        else:
            _print(describe_store(document), out)
        return EXIT_OK
    if args.action == "verify":
        report = store.verify()
        if args.json:
            _print(json.dumps(report, indent=2, sort_keys=True), out)
        else:
            _print(
                f"verified {report['segments']} segment(s), "
                f"{report['records']} record(s): "
                + ("ok" if report["ok"] else
                   f"{len(report['problems'])} problem(s)"),
                out,
            )
            for problem in report["problems"]:
                print(
                    "error: "
                    + ", ".join(
                        f"{k}={v}" for k, v in sorted(problem.items())
                    ),
                    file=sys.stderr,
                )
        return EXIT_OK if report["ok"] else EXIT_ERROR
    report = store.gc(max_bytes=args.max_bytes)
    if args.json:
        _print(json.dumps(report, indent=2, sort_keys=True), out)
    else:
        _print(
            f"compacted {report['compacted']} namespace(s), evicted "
            f"{len(report['evicted'])}; store is {report['bytes']} bytes",
            out,
        )
    return EXIT_OK


def _cmd_top(args, out) -> int:
    from .telemetry import run_top

    if not os.path.isdir(args.dir):
        print(f"error: no service directory at {args.dir}", file=sys.stderr)
        return EXIT_ERROR
    iterations = 1 if args.once else args.iterations
    try:
        run_top(
            args.dir,
            out,
            refresh=args.refresh,
            iterations=iterations,
            clear=not args.json and iterations != 1,
            as_json=args.json,
        )
    except KeyboardInterrupt:
        pass
    return EXIT_OK


def _metrics_document(path: str):
    """Load an exported metrics snapshot from a service directory or a
    saved ``metrics.json`` file."""
    from .io import job_io

    if os.path.isdir(path):
        path = job_io.metrics_json_path(path)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_telemetry(args, out) -> int:
    from .telemetry import diff_snapshots, registry_from_snapshot

    expected = 1 if args.action == "dump" else 2
    if len(args.paths) != expected:
        print(
            f"error: telemetry {args.action} takes exactly "
            f"{expected} PATH argument(s)",
            file=sys.stderr,
        )
        return EXIT_ERROR
    try:
        documents = [_metrics_document(p) for p in args.paths]
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.action == "dump":
        # Round-trip through a registry: validates the snapshot's
        # metric grammar and types, not just its JSON well-formedness.
        registry = registry_from_snapshot(documents[0])
        registry.validate(strict=True)
        if args.format == "prometheus":
            _print(registry.to_prometheus(), out)
        else:
            _print(
                json.dumps(registry.as_dict(), indent=2, sort_keys=True),
                out,
            )
        return EXIT_OK
    delta = diff_snapshots(documents[0], documents[1])
    _print(json.dumps(delta, indent=2, sort_keys=True), out)
    return EXIT_OK


def _cmd_submit(args, out) -> int:
    from .io import job_io

    spec = load_spec(args.spec)
    options = {}
    if args.util_bound is not None:
        options["util_bound"] = args.util_bound
    if args.max_cost is not None:
        options["max_cost"] = args.max_cost
    if args.keep_ties:
        options["keep_ties"] = True
    if args.timing_mode is not None:
        options["timing_mode"] = args.timing_mode
    if args.batch_size is not None:
        options["batch_size"] = args.batch_size
    if args.engine is not None:
        options["engine"] = args.engine
    path = job_io.write_submission(
        args.dir,
        spec,
        args.name or spec.name,
        priority=args.priority,
        options=options,
    )
    _print(f"spooled {spec.name} -> {path}", out)
    return EXIT_OK


def _cmd_jobs(args, out) -> int:
    from .io import job_io
    from .report import jobs_table

    rows = []
    for entry in job_io.read_job_ledger(
        job_io.ledger_path(args.dir)
    ).values():
        rows.append(
            {
                "id": entry.job_id,
                "name": entry.name,
                "state": entry.state,
                "priority": entry.priority,
                **{
                    k: entry.fields[k]
                    for k in ("slices", "preemptions", "evaluations")
                    if k in entry.fields
                },
            }
        )
    for _, document in job_io.read_submissions(args.dir):
        rows.append(
            {
                "id": "(spooled)",
                "name": document["name"],
                "state": "spooled",
                "priority": document.get("priority", 1),
            }
        )
    if args.json:
        _print(json.dumps(rows, indent=2, sort_keys=True), out)
    elif rows:
        _print(jobs_table(rows), out)
    else:
        _print("no jobs", out)
    return EXIT_OK


#: Event kinds that end a ``watch --follow``.
_TERMINAL_EVENT_KINDS = ("completed", "failed", "cancelled")


def _cmd_watch(args, out) -> int:
    from .io import job_io

    path = job_io.events_path(args.dir, args.job)
    if not args.follow and not os.path.exists(path):
        print(f"error: no events for job {args.job!r}", file=sys.stderr)
        return EXIT_ERROR
    offset = 0
    buffered = ""
    last_event = time.monotonic()
    while True:
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            buffered += chunk
            while "\n" in buffered:
                line, buffered = buffered.split("\n", 1)
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                _print(json.dumps(event, sort_keys=True), out)
                last_event = time.monotonic()
                if event.get("kind") in _TERMINAL_EVENT_KINDS:
                    return EXIT_OK
        if not args.follow:
            return EXIT_OK
        if time.monotonic() - last_event > args.idle_timeout:
            print(
                f"error: no new events for {args.idle_timeout:g}s",
                file=sys.stderr,
            )
            return EXIT_ERROR
        time.sleep(0.1)


_HANDLERS = {
    "demo": _cmd_demo,
    "synth": _cmd_synth,
    "lint": _cmd_lint,
    "table": _cmd_table,
    "dot": _cmd_dot,
    "explore": _cmd_explore,
    "explain": _cmd_explain,
    "trace": _cmd_trace,
    "upgrade": _cmd_upgrade,
    "failures": _cmd_failures,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
    "top": _cmd_top,
    "telemetry": _cmd_telemetry,
    "shard-worker": _cmd_shard_worker,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "watch": _cmd_watch,
}


def _configure_logging(args) -> None:
    """Attach a stderr handler to the package logger when asked.

    The library itself only ever adds a :class:`logging.NullHandler`
    (see :mod:`repro`); the CLI is the place where log records become
    visible.  Without ``-v``/``--log-level`` nothing is emitted.
    """
    if args.log_level is not None:
        level = getattr(logging, args.log_level.upper())
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    package_logger = logging.getLogger("repro")
    package_logger.addHandler(handler)
    package_logger.setLevel(level)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    handler = _HANDLERS[args.command]
    try:
        return handler(args, out)
    except OverloadedError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_OVERLOADED
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except BrokenPipeError:
        # Downstream consumer (e.g. `watch ... | head`) closed the pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
