"""Timed allocation and binding (Definitions 2-3) with feasibility solvers."""

from .allocation import Allocation, allocation_of
from .binding import Binding
from .feasibility import binding_violations, is_feasible_binding
from .routing import Router
from .sat_binding import solve_binding_sat
from .solver import BindingSolver, SolverStats, solve_binding

__all__ = [
    "Allocation",
    "Binding",
    "BindingSolver",
    "Router",
    "SolverStats",
    "allocation_of",
    "binding_violations",
    "is_feasible_binding",
    "solve_binding",
    "solve_binding_sat",
]
