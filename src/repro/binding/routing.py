"""Communication routing over a partially allocated architecture.

Binding-feasibility rule 3 of the paper requires, for every dependence
edge of the problem graph, that both processes are mapped onto the same
resource or that an activated architecture path handles the
communication (the paper's example: binding onto ASIC and FPGA is
infeasible "since no bus connects the ASIC and the FPGA").

The router works on *top-level architecture nodes*: a functional unit
communicates through the node it lives under (a leaf, or the interface
enclosing an architecture cluster such as an FPGA design).  A route may
pass through any number of allocated communication resources but never
through a functional resource.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from ..spec import SpecificationGraph


class Router:
    """Reachability oracle for one allocation of one specification."""

    def __init__(self, spec: SpecificationGraph, allocated_units: Iterable[str]) -> None:
        self.spec = spec
        self.allocated = frozenset(allocated_units)
        catalog = spec.units
        # Top-level nodes present under this allocation.
        present: Set[str] = set()
        comm: Set[str] = set()
        for name in self.allocated:
            unit = catalog.unit(name)
            if not all(anc in self.allocated for anc in unit.ancestors):
                continue  # unusable nested unit
            present.add(unit.top_node)
            if unit.comm:
                comm.add(unit.top_node)
        self._present = frozenset(present)
        self._comm = frozenset(comm)
        # Undirected adjacency over present top-level nodes.
        full = spec.architecture_adjacency()
        self._adjacency: Dict[str, Set[str]] = {
            node: {n for n in full.get(node, ()) if n in present}
            for node in present
        }
        self._cache: Dict[str, FrozenSet[str]] = {}

    @property
    def present_nodes(self) -> FrozenSet[str]:
        """Top-level nodes available under the allocation."""
        return self._present

    @property
    def comm_nodes(self) -> FrozenSet[str]:
        """Available top-level communication nodes."""
        return self._comm

    def reachable_from(self, node: str) -> FrozenSet[str]:
        """All nodes reachable from ``node`` via allocated comm paths.

        Includes ``node`` itself and every node connected through a path
        whose intermediate hops are all communication resources.
        """
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        if node not in self._present:
            result: FrozenSet[str] = frozenset()
            self._cache[node] = result
            return result
        visited = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for neighbor in self._adjacency.get(current, ()):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                # Only communication nodes may forward traffic.
                if neighbor in self._comm:
                    frontier.append(neighbor)
        result = frozenset(visited)
        self._cache[node] = result
        return result

    def connected(self, node_a: str, node_b: str) -> bool:
        """True when the two top-level nodes can communicate."""
        if node_a == node_b:
            return True
        return node_b in self.reachable_from(node_a)

    def units_connected(self, unit_a: str, unit_b: str) -> bool:
        """True when the two allocated units can communicate."""
        if unit_a == unit_b:
            return True
        top_a = self.spec.units.unit(unit_a).top_node
        top_b = self.spec.units.unit(unit_b).top_node
        return self.connected(top_a, top_b)

    def resources_connected(self, leaf_a: str, leaf_b: str) -> bool:
        """True when the two resource leaves can communicate.

        Resource leaves inside the same unit (e.g. the same FPGA design)
        are trivially connected.
        """
        unit_a = self.spec.units.unit_of(leaf_a).name
        unit_b = self.spec.units.unit_of(leaf_b).name
        return self.units_connected(unit_a, unit_b)

    def __repr__(self) -> str:
        return (
            f"Router(|present|={len(self._present)}, "
            f"|comm|={len(self._comm)})"
        )
