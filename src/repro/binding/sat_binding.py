"""SAT-backed binding solver.

Alternative backend to the backtracking CSP solver: the structural
constraints (totality, communication routing, one cluster per
architecture interface) are encoded as CNF clauses and solved with the
DPLL engine of :mod:`repro.boolexpr.sat`; the utilisation bound — a
pseudo-boolean constraint — is handled by lazy refinement: every model
violating the bound is excluded by a blocking clause and the solver is
re-run.  Tests use this backend to cross-check the CSP solver.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..activation import FlatProblem
from ..boolexpr.sat import solve_cnf
from ..spec import SpecificationGraph
from ..timing import PAPER_UTILIZATION_BOUND, meets_utilization_bound
from .allocation import Allocation
from .binding import Binding
from .routing import Router

Clause = FrozenSet[Tuple[str, bool]]


def _var(process: str, resource: str) -> str:
    return f"b::{process}::{resource}"


def solve_binding_sat(
    spec: SpecificationGraph,
    allocation: Allocation,
    flat: FlatProblem,
    util_bound: float = PAPER_UTILIZATION_BOUND,
    check_utilization: bool = True,
    max_refinements: int = 2000,
) -> Optional[Binding]:
    """Find a feasible binding via SAT + lazy utilisation refinement.

    Returns ``None`` when the structural encoding is unsatisfiable or
    every structural model violates the utilisation bound within the
    refinement budget.
    """
    catalog = spec.units
    usable = {
        u
        for u in allocation.units
        if set(catalog.unit(u).ancestors) <= allocation.units
    }
    domains: Dict[str, List[str]] = {}
    for leaf in flat.leaves:
        candidates = [
            edge.resource
            for edge in spec.mappings.of_process(leaf)
            if catalog.unit_of(edge.resource).name in usable
        ]
        if not candidates:
            return None
        domains[leaf] = candidates

    clauses: List[Clause] = []
    # Exactly one resource per process.
    for leaf, candidates in domains.items():
        clauses.append(
            frozenset((_var(leaf, r), True) for r in candidates)
        )
        for i, r1 in enumerate(candidates):
            for r2 in candidates[i + 1 :]:
                clauses.append(
                    frozenset(
                        {(_var(leaf, r1), False), (_var(leaf, r2), False)}
                    )
                )
    # Communication feasibility per dependence edge.
    router = Router(spec, allocation.units)
    for src, dst in flat.edges:
        if src == dst:
            continue
        for r1 in domains[src]:
            for r2 in domains[dst]:
                if not router.resources_connected(r1, r2):
                    clauses.append(
                        frozenset(
                            {(_var(src, r1), False), (_var(dst, r2), False)}
                        )
                    )
    # One active cluster per architecture interface.
    placements: List[Tuple[str, str, str, str]] = []  # (p, r, iface, unit)
    for leaf, candidates in domains.items():
        for resource in candidates:
            unit = catalog.unit_of(resource)
            if unit.interface is not None:
                placements.append((leaf, resource, unit.interface, unit.name))
    for i, (p1, r1, if1, u1) in enumerate(placements):
        for p2, r2, if2, u2 in placements[i + 1 :]:
            if if1 == if2 and u1 != u2:
                clauses.append(
                    frozenset({(_var(p1, r1), False), (_var(p2, r2), False)})
                )

    leaves = list(domains)
    for _ in range(max_refinements):
        model = solve_cnf(clauses)
        if model is None:
            return None
        assignment: Dict[str, str] = {}
        for leaf in leaves:
            for resource in domains[leaf]:
                if model.get(_var(leaf, resource), False):
                    assignment[leaf] = resource
                    break
        binding = Binding(spec, assignment)
        if not check_utilization or meets_utilization_bound(
            spec, flat, assignment, util_bound
        ):
            return binding
        # Lazy refinement: block this exact assignment and retry.
        clauses.append(
            frozenset(
                (_var(leaf, resource), False)
                for leaf, resource in assignment.items()
            )
        )
    return None
