"""Timed bindings (Definition 3).

A timed binding is the subset of activated mapping edges at time t —
equivalently, an assignment of every active leaf process to one
resource leaf (rule 2 of binding feasibility: "for each activated leaf
of the problem graph, exactly one outgoing mapping edge is activated").
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from ..errors import BindingError
from ..spec import SpecificationGraph


class Binding:
    """An immutable process -> resource-leaf assignment."""

    __slots__ = ("spec", "_assignment")

    def __init__(self, spec: SpecificationGraph, assignment: Mapping[str, str]) -> None:
        self.spec = spec
        for process, resource in assignment.items():
            if spec.mappings.edge(process, resource) is None:
                raise BindingError(
                    f"binding {process!r} -> {resource!r} has no mapping edge"
                )
        self._assignment: Dict[str, str] = dict(assignment)

    def resource_of(self, process: str) -> str:
        """The resource leaf hosting ``process``."""
        try:
            return self._assignment[process]
        except KeyError:
            raise BindingError(f"process {process!r} is unbound") from None

    def unit_of(self, process: str) -> str:
        """The resource *unit* hosting ``process``."""
        return self.spec.units.unit_of(self.resource_of(process)).name

    def latency_of(self, process: str) -> float:
        """Core execution time of ``process`` on its bound resource."""
        return self.spec.mappings.latency(
            process, self.resource_of(process)
        )

    def used_units(self) -> frozenset:
        """Units actually hosting at least one process."""
        return frozenset(
            self.spec.units.unit_of(r).name
            for r in self._assignment.values()
        )

    def as_dict(self) -> Dict[str, str]:
        """A copy of the underlying assignment."""
        return dict(self._assignment)

    def items(self) -> Iterator[Tuple[str, str]]:
        """Iterate ``(process, resource)`` pairs."""
        return iter(self._assignment.items())

    def __contains__(self, process: str) -> bool:
        return process in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Binding)
            and self._assignment == other._assignment
        )

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __repr__(self) -> str:
        return f"Binding(|processes|={len(self)})"
