"""Backtracking CSP solver for the NP-complete binding problem.

Variables are the active leaf processes of a flattened activation;
domains are the resource leaves offered by the allocated units; the
constraints are the binding-feasibility rules of
:mod:`repro.binding.feasibility` — communication routing, one active
cluster per architecture interface, and the utilisation bound — all
checked incrementally during search.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..activation import FlatProblem
from ..spec import SpecificationGraph
from ..timing import PAPER_UTILIZATION_BOUND, task_set
from .allocation import Allocation
from .binding import Binding
from .routing import Router


class SolverStats:
    """Search-effort counters of one :class:`BindingSolver`."""

    __slots__ = (
        "invocations",
        "assignments",
        "backtracks",
        "solutions",
        "util_rejections",
    )

    def __init__(self) -> None:
        self.invocations = 0
        self.assignments = 0
        self.backtracks = 0
        self.solutions = 0
        #: Assignments rejected by the utilisation bound alone — the
        #: timing test's share of the search effort (see
        #: ``docs/observability.md``).
        self.util_rejections = 0

    def __repr__(self) -> str:
        return (
            f"SolverStats(invocations={self.invocations}, "
            f"assignments={self.assignments}, "
            f"backtracks={self.backtracks}, solutions={self.solutions}, "
            f"util_rejections={self.util_rejections})"
        )


class BindingSolver:
    """Finds feasible bindings for activations under one allocation."""

    def __init__(
        self,
        spec: SpecificationGraph,
        allocation: Allocation,
        util_bound: float = PAPER_UTILIZATION_BOUND,
        check_utilization: bool = True,
    ) -> None:
        self.spec = spec
        self.allocation = allocation
        self.util_bound = util_bound
        self.check_utilization = check_utilization
        self.router = Router(spec, allocation.units)
        self.stats = SolverStats()
        catalog = spec.units
        self._usable = {
            u
            for u in allocation.units
            if set(catalog.unit(u).ancestors) <= allocation.units
        }
        #: Per-flat-problem artifacts that do not depend on the search:
        #: the neighbour adjacency and the task set, keyed by the
        #: (identity-hashed) flattened activation so repeated
        #: ``iter_solutions`` calls on the same activation stop
        #: rebuilding them.
        self._prepared: Dict[
            FlatProblem, Tuple[Dict[str, Tuple[str, ...]], Dict]
        ] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, flat: FlatProblem) -> Optional[Binding]:
        """First feasible binding of ``flat``, or ``None``."""
        for binding in self.iter_solutions(flat, limit=1):
            return binding
        return None

    def iter_solutions(
        self, flat: FlatProblem, limit: Optional[int] = None
    ) -> Iterator[Binding]:
        """Yield feasible bindings (up to ``limit`` when given)."""
        self.stats.invocations += 1
        domains = self._domains(flat)
        if domains is None:
            return
        order = sorted(
            domains,
            key=lambda leaf: (len(domains[leaf]), leaf),
        )
        neighbors, tasks = self._prepare(flat)
        assignment: Dict[str, str] = {}
        utilization: Dict[str, float] = {}
        interface_choice: Dict[str, str] = {}
        interface_count: Dict[str, int] = {}
        yielded = 0

        def backtrack(position: int) -> Iterator[Binding]:
            nonlocal yielded
            if limit is not None and yielded >= limit:
                return
            if position == len(order):
                self.stats.solutions += 1
                yielded += 1
                yield Binding(self.spec, assignment)
                return
            leaf = order[position]
            task = tasks[leaf]
            for resource in domains[leaf]:
                self.stats.assignments += 1
                unit = self.spec.units.unit_of(resource)
                # architecture rule 1: one cluster per interface
                if unit.interface is not None:
                    current = interface_choice.get(unit.interface)
                    if current is not None and current != unit.name:
                        continue
                # utilisation bound
                increment = 0.0
                if self.check_utilization and task.loaded:
                    increment = task.utilization(
                        self.spec.mappings.latency(leaf, resource)
                    )
                    if (
                        utilization.get(resource, 0.0) + increment
                        > self.util_bound + 1e-12
                    ):
                        self.stats.util_rejections += 1
                        continue
                # communication with already-bound neighbours
                feasible = True
                for other in neighbors.get(leaf, ()):
                    bound_resource = assignment.get(other)
                    if bound_resource is None:
                        continue
                    if not self.router.resources_connected(
                        resource, bound_resource
                    ):
                        feasible = False
                        break
                if not feasible:
                    continue
                # commit
                assignment[leaf] = resource
                if increment:
                    utilization[resource] = (
                        utilization.get(resource, 0.0) + increment
                    )
                if unit.interface is not None:
                    interface_choice[unit.interface] = unit.name
                    interface_count[unit.interface] = (
                        interface_count.get(unit.interface, 0) + 1
                    )
                yield from backtrack(position + 1)
                # rollback
                del assignment[leaf]
                if increment:
                    utilization[resource] -= increment
                if unit.interface is not None:
                    interface_count[unit.interface] -= 1
                    if not interface_count[unit.interface]:
                        del interface_count[unit.interface]
                        del interface_choice[unit.interface]
                if limit is not None and yielded >= limit:
                    return
            self.stats.backtracks += 1

        yield from backtrack(0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _domains(self, flat: FlatProblem) -> Optional[Dict[str, List[str]]]:
        """Per-process candidate resources; ``None`` when one is empty."""
        catalog = self.spec.units
        domains: Dict[str, List[str]] = {}
        for leaf in flat.leaves:
            candidates = [
                edge.resource
                for edge in self.spec.mappings.of_process(leaf)
                if catalog.unit_of(edge.resource).name in self._usable
            ]
            if not candidates:
                return None
            domains[leaf] = candidates
        return domains

    def _prepare(
        self, flat: FlatProblem
    ) -> Tuple[Dict[str, Tuple[str, ...]], Dict]:
        """Search-independent artifacts of ``flat``, built once."""
        prepared = self._prepared.get(flat)
        if prepared is None:
            prepared = (self._neighbors(flat), task_set(self.spec, flat))
            self._prepared[flat] = prepared
        return prepared

    def _neighbors(self, flat: FlatProblem) -> Dict[str, Tuple[str, ...]]:
        adjacency: Dict[str, set] = {}
        for src, dst in flat.edges:
            if src == dst:
                continue
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set()).add(src)
        return {k: tuple(v) for k, v in adjacency.items()}


def solve_binding(
    spec: SpecificationGraph,
    allocation: Allocation,
    flat: FlatProblem,
    util_bound: float = PAPER_UTILIZATION_BOUND,
    check_utilization: bool = True,
) -> Optional[Binding]:
    """One-shot convenience wrapper around :class:`BindingSolver`."""
    solver = BindingSolver(spec, allocation, util_bound, check_utilization)
    return solver.solve(flat)
