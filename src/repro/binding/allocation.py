"""Timed allocations (Definition 2).

A timed allocation is the subset of activated vertices and edges of the
problem and architecture graph at a time t.  On the architecture side
we represent it by the set of allocated resource *units*; the problem
side is given by the hierarchical activation in force at t.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..errors import BindingError
from ..spec import SpecificationGraph


class Allocation:
    """An architecture-side allocation: a set of resource units.

    The allocation knows its total cost (the paper's allocation-cost
    objective ``c_impl``) and can report whether it is closed under the
    nested-cluster ancestor requirement.
    """

    __slots__ = ("spec", "units")

    def __init__(self, spec: SpecificationGraph, units: Iterable[str]) -> None:
        self.spec = spec
        unit_set = frozenset(units)
        for name in unit_set:
            spec.units.unit(name)  # raises on unknown units
        self.units: FrozenSet[str] = unit_set

    @property
    def cost(self) -> float:
        """Allocation cost ``c_impl``: sum of allocated unit costs."""
        return self.spec.units.total_cost(self.units)

    @property
    def closed(self) -> bool:
        """True when all ancestors of nested units are also allocated."""
        return all(
            set(self.spec.units.unit(u).ancestors) <= self.units
            for u in self.units
        )

    def require_closed(self) -> None:
        """Raise :class:`~repro.errors.BindingError` unless :attr:`closed`."""
        if not self.closed:
            raise BindingError(
                f"allocation {sorted(self.units)!r} misses ancestor clusters "
                f"of nested units"
            )

    def functional_unit_names(self) -> FrozenSet[str]:
        """Allocated non-communication units."""
        return frozenset(
            u for u in self.units if not self.spec.units.unit(u).comm
        )

    def comm_unit_names(self) -> FrozenSet[str]:
        """Allocated communication units."""
        return frozenset(
            u for u in self.units if self.spec.units.unit(u).comm
        )

    def __contains__(self, unit: str) -> bool:
        return unit in self.units

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Allocation)
            and self.spec is other.spec
            and self.units == other.units
        )

    def __hash__(self) -> int:
        return hash(self.units)

    def __repr__(self) -> str:
        return f"Allocation({sorted(self.units)!r}, cost={self.cost})"


def allocation_of(
    spec: SpecificationGraph, units: Iterable[str], closed: bool = True
) -> Allocation:
    """Build an :class:`Allocation`, optionally enforcing closure."""
    allocation = Allocation(spec, units)
    if closed:
        allocation.require_closed()
    return allocation
