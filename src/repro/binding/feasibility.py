"""Binding-feasibility rules (Section 2 of the paper).

A feasible timed binding satisfies:

1. every activated mapping edge starts and ends at activated elements —
   here: every bound process is an active leaf and its resource is
   provided by a usable allocated unit;
2. each activated problem leaf has exactly one activated mapping edge —
   here: the binding is total over the flattened activation;
3. for each activated dependence edge, either both processes share a
   resource or an activated architecture path routes the communication.

Two further checks close the model:

* architecture-side rule 1 (one active cluster per architecture
  interface at any instant): processes may not simultaneously use two
  designs of the same reconfigurable device;
* the utilisation bound (the paper's quick performance test).
"""

from __future__ import annotations

from typing import Dict, List

from ..activation import FlatProblem
from ..spec import SpecificationGraph
from ..timing import PAPER_UTILIZATION_BOUND, utilization_violations
from .allocation import Allocation
from .binding import Binding
from .routing import Router


def binding_violations(
    spec: SpecificationGraph,
    allocation: Allocation,
    flat: FlatProblem,
    binding: Binding,
    util_bound: float = PAPER_UTILIZATION_BOUND,
    check_utilization: bool = True,
) -> List[str]:
    """All feasibility violations of ``binding`` (empty = feasible)."""
    violations: List[str] = []
    catalog = spec.units
    usable = {
        u
        for u in allocation.units
        if set(catalog.unit(u).ancestors) <= allocation.units
    }

    # Rule 2: totality — and rule 1: endpoints active/allocated.
    for leaf in flat.leaves:
        if leaf not in binding:
            violations.append(f"rule 2: active process {leaf!r} is unbound")
    for process, resource in binding.items():
        if process not in flat.leaves:
            violations.append(
                f"rule 1: bound process {process!r} is not active"
            )
            continue
        unit = catalog.unit_of(resource)
        if unit.name not in usable:
            violations.append(
                f"rule 1: resource {resource!r} (unit {unit.name!r}) is not "
                f"allocated"
            )
    if violations:
        return violations

    # Architecture-side rule 1: one cluster per architecture interface.
    used_by_interface: Dict[str, set] = {}
    for process, resource in binding.items():
        unit = catalog.unit_of(resource)
        if unit.interface is not None:
            used_by_interface.setdefault(unit.interface, set()).add(unit.name)
    for interface, used in sorted(used_by_interface.items()):
        if len(used) > 1:
            violations.append(
                f"architecture interface {interface!r} would need "
                f"{len(used)} simultaneously active clusters: {sorted(used)}"
            )

    # Rule 3: communication.
    router = Router(spec, allocation.units)
    for src, dst in flat.edges:
        resource_src = binding.resource_of(src)
        resource_dst = binding.resource_of(dst)
        if not router.resources_connected(resource_src, resource_dst):
            violations.append(
                f"rule 3: no activated route between {src!r} on "
                f"{resource_src!r} and {dst!r} on {resource_dst!r}"
            )

    # Performance estimate (Section 5).
    if check_utilization:
        violations.extend(
            utilization_violations(spec, flat, binding.as_dict(), util_bound)
        )
    return violations


def is_feasible_binding(
    spec: SpecificationGraph,
    allocation: Allocation,
    flat: FlatProblem,
    binding: Binding,
    util_bound: float = PAPER_UTILIZATION_BOUND,
    check_utilization: bool = True,
) -> bool:
    """True when ``binding`` satisfies all feasibility rules."""
    return not binding_violations(
        spec, allocation, flat, binding, util_bound, check_utilization
    )
