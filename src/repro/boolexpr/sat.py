"""A small DPLL SAT solver.

Used as the alternative backend of the binding solver and by tests to
cross-check the backtracking CSP solver.  Implements unit propagation,
pure-literal elimination and most-occurring-variable branching — more
than enough for the clause sets generated from specification graphs of
the paper's size.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set

from .cnf import Clause, Literal, tseitin
from .expr import Expr


def solve_expr(expr: Expr) -> Optional[Dict[str, bool]]:
    """Satisfy ``expr``; return a model over its variables or ``None``.

    Tseitin auxiliaries are stripped from the returned model.
    """
    cnf = tseitin(expr)
    model = solve_cnf(cnf.clauses)
    if model is None:
        return None
    result = {v: model.get(v, False) for v in cnf.variables}
    return result


def solve_cnf(clauses: Iterable[Clause]) -> Optional[Dict[str, bool]]:
    """DPLL over a clause iterable; returns a model or ``None``."""
    clause_list: List[Clause] = [frozenset(c) for c in clauses]
    assignment: Dict[str, bool] = {}
    if _dpll(clause_list, assignment):
        return assignment
    return None


def _dpll(clauses: List[Clause], assignment: Dict[str, bool]) -> bool:
    clauses = _propagate(clauses, assignment)
    if clauses is None:
        return False
    if not clauses:
        return True
    # pure literal elimination
    polarity_seen: Dict[str, Set[bool]] = {}
    for clause in clauses:
        for name, polarity in clause:
            polarity_seen.setdefault(name, set()).add(polarity)
    pures = {
        name: next(iter(pols))
        for name, pols in polarity_seen.items()
        if len(pols) == 1
    }
    if pures:
        assignment.update(pures)
        remaining = [
            c
            for c in clauses
            if not any(
                name in pures and pures[name] == polarity
                for name, polarity in c
            )
        ]
        return _dpll(remaining, assignment)
    # branch on the most frequent variable
    counts = Counter(name for clause in clauses for name, _ in clause)
    variable = counts.most_common(1)[0][0]
    for value in (True, False):
        trail = dict(assignment)
        trail[variable] = value
        branch = [c for c in clauses]
        if _dpll(branch, trail):
            assignment.clear()
            assignment.update(trail)
            return True
    return False


def _propagate(
    clauses: List[Clause], assignment: Dict[str, bool]
) -> Optional[List[Clause]]:
    """Apply the current assignment and unit propagation.

    Returns the reduced clause list, or ``None`` on conflict.
    """
    changed = True
    while changed:
        changed = False
        reduced: List[Clause] = []
        for clause in clauses:
            satisfied = False
            pending: List[Literal] = []
            for name, polarity in clause:
                if name in assignment:
                    if assignment[name] == polarity:
                        satisfied = True
                        break
                else:
                    pending.append((name, polarity))
            if satisfied:
                continue
            if not pending:
                return None  # conflict: clause fully falsified
            if len(pending) == 1:
                name, polarity = pending[0]
                assignment[name] = polarity
                changed = True
            else:
                reduced.append(frozenset(pending))
        clauses = reduced
    return clauses


def count_models(expr: Expr, over: Optional[Iterable[str]] = None) -> int:
    """Count satisfying assignments of ``expr`` by exhaustive enumeration.

    Intended for testing and for the paper-scale statistics (the
    explorer never calls this on large variable sets).  ``over`` may
    supply a variable universe larger than ``expr.variables()``.
    """
    variables = sorted(set(over) if over is not None else expr.variables())
    if len(variables) > 24:
        raise ValueError(
            f"refusing to enumerate 2^{len(variables)} assignments"
        )
    total = 0
    for mask in range(1 << len(variables)):
        assignment = {
            v: bool(mask >> i & 1) for i, v in enumerate(variables)
        }
        if expr.evaluate(assignment):
            total += 1
    return total
