"""Derived boolean connectives and partial evaluation.

Convenience constructors (implication, equivalence, exclusive-or,
at-most-one/exactly-one) expressed in the core NOT/AND/OR language, and
:func:`substitute` (Shannon cofactor), which partially evaluates an
expression under a partial assignment — useful for interactive
what-if analysis of the possible-allocation equation (e.g. "pin the
processor choice and simplify").
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .expr import And, Const, Expr, FALSE, Not, Or, TRUE, Var, all_of, any_of
from .simplify import simplify


def implies(antecedent: Expr, consequent: Expr) -> Expr:
    """``a -> b``, i.e. ``~a | b``."""
    return Or((Not(antecedent), consequent))


def iff(left: Expr, right: Expr) -> Expr:
    """``a <-> b``, i.e. ``(a & b) | (~a & ~b)``."""
    return Or((And((left, right)), And((Not(left), Not(right)))))


def xor(left: Expr, right: Expr) -> Expr:
    """``a ^ b``, i.e. ``(a & ~b) | (~a & b)``."""
    return Or((And((left, Not(right))), And((Not(left), right))))


def at_most_one(operands: Iterable[Expr]) -> Expr:
    """True when at most one operand is true (pairwise encoding)."""
    ops = tuple(operands)
    clauses = []
    for i, first in enumerate(ops):
        for second in ops[i + 1:]:
            clauses.append(Or((Not(first), Not(second))))
    return all_of(clauses)


def exactly_one(operands: Iterable[Expr]) -> Expr:
    """True when exactly one operand is true.

    This is the boolean form of activation rule 1 ("the activation of
    an interface implies the activation of exactly one associated
    cluster").
    """
    ops = tuple(operands)
    return all_of([any_of(ops), at_most_one(ops)])


def substitute(expr: Expr, assignment: Mapping[str, bool]) -> Expr:
    """Partial evaluation (Shannon cofactor) under ``assignment``.

    Variables present in ``assignment`` are replaced by constants; the
    result is simplified.  Unassigned variables remain symbolic, so::

        substitute(possible, {"muP2": True}).variables()

    yields the units that still matter once the processor is pinned.
    """
    def walk(node: Expr) -> Expr:
        if isinstance(node, Const):
            return node
        if isinstance(node, Var):
            if node.name in assignment:
                return TRUE if assignment[node.name] else FALSE
            return node
        if isinstance(node, Not):
            return Not(walk(node.operand))
        if isinstance(node, And):
            return And(tuple(walk(op) for op in node.operands))
        if isinstance(node, Or):
            return Or(tuple(walk(op) for op in node.operands))
        raise TypeError(f"unknown expression node {node!r}")

    return simplify(walk(expr))
