"""Boolean expression simplification.

Performs the standard constant-folding and flattening rewrites used to
keep the explorer's generated formulas small:

* constant folding (``x & FALSE -> FALSE``, ``x | TRUE -> TRUE``);
* flattening of nested same-operator nodes;
* duplicate-operand removal;
* double-negation elimination;
* absorption of complementary literals (``x & ~x -> FALSE``).

Simplification is semantics-preserving; the property-based tests check
equivalence against brute-force truth tables.
"""

from __future__ import annotations

from typing import List

from .expr import And, Const, Expr, Not, Or, FALSE, TRUE, Var


def simplify(expr: Expr) -> Expr:
    """Return an equivalent, usually smaller, expression."""
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        inner = simplify(expr.operand)
        if isinstance(inner, Const):
            return FALSE if inner.value else TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(expr, And):
        return _simplify_nary(expr, And, TRUE, FALSE)
    if isinstance(expr, Or):
        return _simplify_nary(expr, Or, FALSE, TRUE)
    raise TypeError(f"unknown expression node {expr!r}")


def _simplify_nary(expr, op_type, identity: Const, absorbing: Const) -> Expr:
    """Shared AND/OR simplification.

    ``identity`` is the neutral element (TRUE for AND, FALSE for OR) and
    ``absorbing`` the dominating element (FALSE for AND, TRUE for OR).
    """
    flat: List[Expr] = []
    seen = set()
    for operand in expr.operands:
        sub = simplify(operand)
        if isinstance(sub, Const):
            if sub.value == absorbing.value:
                return absorbing
            continue  # drop identity elements
        if isinstance(sub, op_type):
            candidates = sub.operands
        else:
            candidates = (sub,)
        for candidate in candidates:
            if candidate in seen:
                continue
            seen.add(candidate)
            flat.append(candidate)
    # complementary literal check: x and ~x present together
    for candidate in flat:
        if isinstance(candidate, Not) and candidate.operand in seen:
            return absorbing
    if not flat:
        return identity
    if len(flat) == 1:
        return flat[0]
    return op_type(tuple(flat))


def expression_size(expr: Expr) -> int:
    """Number of nodes in the expression tree (a complexity measure)."""
    if isinstance(expr, (Const, Var)):
        return 1
    if isinstance(expr, Not):
        return 1 + expression_size(expr.operand)
    if isinstance(expr, (And, Or)):
        return 1 + sum(expression_size(op) for op in expr.operands)
    raise TypeError(f"unknown expression node {expr!r}")
