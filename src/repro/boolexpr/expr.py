"""Boolean expression trees.

The paper reduces its search space "by traversing our specification
graph and setting up one boolean equation".  This module provides the
expression language used for that machinery: variables, constants and
the connectives NOT/AND/OR, with evaluation over variable assignments.

Expressions are immutable and hashable; operators are overloaded so
formulas read naturally::

    possible = (mu_p1 | mu_p2) & (d1 | d3)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..errors import ReproError


class BoolExprError(ReproError):
    """Raised for malformed boolean expressions or evaluations."""


class Expr:
    """Base class of all boolean expressions."""

    __slots__ = ()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under ``assignment`` (variable name -> truth value).

        Raises :class:`BoolExprError` when a variable is unassigned.
        """
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """The set of variable names occurring in this expression."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Operator sugar
    # ------------------------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And((self, _as_expr(other)))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, _as_expr(other)))

    def __invert__(self) -> "Expr":
        return Not(self)

    def __rand__(self, other: "Expr") -> "Expr":
        return And((_as_expr(other), self))

    def __ror__(self, other: "Expr") -> "Expr":
        return Or((_as_expr(other), self))


def _as_expr(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(value)
    raise BoolExprError(f"cannot coerce {value!r} to a boolean expression")


class Const(Expr):
    """The constants ``TRUE`` and ``FALSE``."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


#: Singleton truth constants.
TRUE = Const(True)
FALSE = Const(False)


class Var(Expr):
    """A boolean variable identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise BoolExprError("variable name must be a non-empty string")
        self.name = name

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError:
            raise BoolExprError(f"unassigned variable {self.name!r}") from None

    def variables(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return self.name


class Not(Expr):
    """Negation."""

    __slots__ = ("operand", "_vars")

    def __init__(self, operand: Expr) -> None:
        self.operand = _as_expr(operand)
        self._vars: FrozenSet[str] = self.operand.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("not", self.operand))

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


class _NaryOp(Expr):
    """Shared implementation of AND/OR over an operand tuple."""

    __slots__ = ("operands", "_vars")

    #: Identity element when the operand tuple is empty.
    EMPTY: bool = True
    SYMBOL: str = "?"

    def __init__(self, operands: Iterable[Expr]) -> None:
        self.operands: Tuple[Expr, ...] = tuple(
            _as_expr(op) for op in operands
        )
        names: set = set()
        for op in self.operands:
            names.update(op.variables())
        self._vars: FrozenSet[str] = frozenset(names)

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash((self.SYMBOL, self.operands))

    def __repr__(self) -> str:
        if not self.operands:
            return "TRUE" if self.EMPTY else "FALSE"
        joined = f" {self.SYMBOL} ".join(repr(op) for op in self.operands)
        return f"({joined})"


class And(_NaryOp):
    """Conjunction; an empty conjunction is TRUE."""

    __slots__ = ()
    EMPTY = True
    SYMBOL = "&"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)


class Or(_NaryOp):
    """Disjunction; an empty disjunction is FALSE."""

    __slots__ = ()
    EMPTY = False
    SYMBOL = "|"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)


def all_of(operands: Iterable[Expr]) -> Expr:
    """Conjunction helper collapsing trivial cases."""
    ops = tuple(operands)
    if not ops:
        return TRUE
    if len(ops) == 1:
        return ops[0]
    return And(ops)


def any_of(operands: Iterable[Expr]) -> Expr:
    """Disjunction helper collapsing trivial cases."""
    ops = tuple(operands)
    if not ops:
        return FALSE
    if len(ops) == 1:
        return ops[0]
    return Or(ops)


def evaluate_over_set(expr: Expr, true_vars: Iterable[str]) -> bool:
    """Evaluate ``expr`` with exactly the names in ``true_vars`` true.

    This is the evaluation mode used by the explorer: a candidate
    resource allocation is a *set* of allocated units; every other unit
    variable is false.
    """
    chosen = set(true_vars)
    assignment: Dict[str, bool] = {v: (v in chosen) for v in expr.variables()}
    return expr.evaluate(assignment)
