"""Boolean expression engine.

Backs the paper's "single boolean equation" techniques: the
possible-resource-allocation predicate and the flexibility-estimation
predicates are built as expression trees over resource-unit variables
and evaluated per candidate allocation.  A Tseitin CNF converter and a
DPLL SAT solver provide an alternative binding-solver backend.
"""

from .bdd import Bdd, expr_to_bdd, model_count
from .cnf import CNF, clause_to_str, tseitin
from .derived import (
    at_most_one,
    exactly_one,
    iff,
    implies,
    substitute,
    xor,
)
from .expr import (
    And,
    BoolExprError,
    Const,
    Expr,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
    all_of,
    any_of,
    evaluate_over_set,
)
from .sat import count_models, solve_cnf, solve_expr
from .simplify import expression_size, simplify

__all__ = [
    "And",
    "Bdd",
    "BoolExprError",
    "CNF",
    "Const",
    "Expr",
    "FALSE",
    "Not",
    "Or",
    "TRUE",
    "Var",
    "all_of",
    "any_of",
    "at_most_one",
    "clause_to_str",
    "count_models",
    "evaluate_over_set",
    "exactly_one",
    "expr_to_bdd",
    "expression_size",
    "model_count",
    "iff",
    "implies",
    "simplify",
    "solve_cnf",
    "solve_expr",
    "substitute",
    "tseitin",
    "xor",
]
