"""Reduced ordered binary decision diagrams (ROBDDs).

The paper's search-space reduction cites Hachtel & Somenzi's logic
synthesis book — the classic home of BDD-based boolean reasoning.  This
module provides the matching substrate: hash-consed ROBDD nodes,
compilation from :class:`~repro.boolexpr.expr.Expr`, boolean
operations, restriction, exact model counting and model enumeration.

The explorer uses it to report the exact size of the
possible-resource-allocation set (the paper's "reduced to 214 design
points" style statistic) without enumerating the subset lattice.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .expr import And, Const, Expr, Not, Or, Var

#: Terminal node identifiers.
ZERO = 0
ONE = 1


class Bdd:
    """An ROBDD manager with a fixed variable order.

    Nodes are triples ``(level, low, high)`` interned in
    :attr:`_unique`; node ids 0 and 1 are the terminals.  All boolean
    operations are memoised per manager.
    """

    def __init__(self, order: Sequence[str]) -> None:
        if len(set(order)) != len(order):
            raise ValueError("variable order contains duplicates")
        #: Variable order, outermost first.
        self.order: Tuple[str, ...] = tuple(order)
        self._level_of = {name: i for i, name in enumerate(self.order)}
        # node id -> (level, low, high); ids 0/1 reserved for terminals
        self._nodes: List[Tuple[int, int, int]] = [
            (-1, -1, -1),
            (-1, -1, -1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is None:
            found = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = found
        return found

    def var(self, name: str) -> int:
        """The BDD of a single variable."""
        try:
            level = self._level_of[name]
        except KeyError:
            raise ValueError(f"variable {name!r} not in the order") from None
        return self._mk(level, ZERO, ONE)

    def level(self, node: int) -> int:
        """The variable level of ``node`` (terminals return ``inf``-like)."""
        if node in (ZERO, ONE):
            return len(self.order)
        return self._nodes[node][0]

    def node_count(self) -> int:
        """Number of interned non-terminal nodes."""
        return len(self._nodes) - 2

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def apply_not(self, node: int) -> int:
        """Negation."""
        key = ("!", node, node)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        if node == ZERO:
            result = ONE
        elif node == ONE:
            result = ZERO
        else:
            level, low, high = self._nodes[node]
            result = self._mk(
                level, self.apply_not(low), self.apply_not(high)
            )
        self._apply_cache[key] = result
        return result

    def _apply(self, op: str, a: int, b: int) -> int:
        if op == "&":
            if a == ZERO or b == ZERO:
                return ZERO
            if a == ONE:
                return b
            if b == ONE:
                return a
        else:  # "|"
            if a == ONE or b == ONE:
                return ONE
            if a == ZERO:
                return b
            if b == ZERO:
                return a
        if a == b:
            return a
        key = (op, min(a, b), max(a, b))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        level_a, level_b = self.level(a), self.level(b)
        level = min(level_a, level_b)
        a_low, a_high = (
            self._nodes[a][1:] if level_a == level else (a, a)
        )
        b_low, b_high = (
            self._nodes[b][1:] if level_b == level else (b, b)
        )
        result = self._mk(
            level,
            self._apply(op, a_low, b_low),
            self._apply(op, a_high, b_high),
        )
        self._apply_cache[key] = result
        return result

    def apply_and(self, a: int, b: int) -> int:
        """Conjunction."""
        return self._apply("&", a, b)

    def apply_or(self, a: int, b: int) -> int:
        """Disjunction."""
        return self._apply("|", a, b)

    def restrict(self, node: int, assignment: Dict[str, bool]) -> int:
        """Cofactor: fix the given variables."""
        if node in (ZERO, ONE):
            return node
        level, low, high = self._nodes[node]
        name = self.order[level]
        if name in assignment:
            branch = high if assignment[name] else low
            return self.restrict(branch, assignment)
        return self._mk(
            level,
            self.restrict(low, assignment),
            self.restrict(high, assignment),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_table(self) -> List[Tuple[int, int, int]]:
        """The ``(level, low, high)`` node triples, indexed by node id.

        Ids 0 and 1 are the terminals (their triples are placeholders).
        The table is what external evaluators (e.g. the compiled
        kernel's bitmask walk in :mod:`repro.compiled`) need to decide
        satisfaction without per-call dictionary lookups.
        """
        return list(self._nodes)

    def evaluate(self, node: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a complete assignment."""
        while node not in (ZERO, ONE):
            level, low, high = self._nodes[node]
            node = high if assignment[self.order[level]] else low
        return node == ONE

    def sat_count(self, node: int) -> int:
        """Number of satisfying assignments over the full order."""
        # normalised counting: models below a node, over vars >= level
        norm_memo: Dict[int, int] = {}

        def count_normalised(current: int) -> int:
            if current == ZERO:
                return 0
            if current == ONE:
                return 1
            cached = norm_memo.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            total = 0
            for branch in (low, high):
                gap = self.level(branch) - level - 1
                total += (1 << gap) * count_normalised(branch)
            norm_memo[current] = total
            return total

        top_gap = self.level(node)
        return (1 << top_gap) * count_normalised(node)

    def iter_models(self, node: int) -> Iterator[Dict[str, bool]]:
        """Enumerate all complete satisfying assignments."""
        if node == ZERO:
            return

        def walk(current: int, level: int, partial: Dict[str, bool]):
            if level == len(self.order):
                if current == ONE:
                    yield dict(partial)
                return
            name = self.order[level]
            node_level = self.level(current)
            if node_level > level:  # don't care
                for value in (False, True):
                    partial[name] = value
                    yield from walk(current, level + 1, partial)
                del partial[name]
                return
            _, low, high = self._nodes[current]
            for value, branch in ((False, low), (True, high)):
                if branch == ZERO:
                    continue
                partial[name] = value
                yield from walk(branch, level + 1, partial)
            partial.pop(name, None)

        yield from walk(node, 0, {})


def expr_to_bdd(expr: Expr, order: Optional[Sequence[str]] = None) -> Tuple[Bdd, int]:
    """Compile an expression into a fresh BDD manager.

    ``order`` defaults to the sorted variable names.  Returns the
    manager and the root node id.
    """
    variables = sorted(expr.variables()) if order is None else list(order)
    manager = Bdd(variables)

    def build(node: Expr) -> int:
        if isinstance(node, Const):
            return ONE if node.value else ZERO
        if isinstance(node, Var):
            return manager.var(node.name)
        if isinstance(node, Not):
            return manager.apply_not(build(node.operand))
        if isinstance(node, And):
            result = ONE
            for op in node.operands:
                result = manager.apply_and(result, build(op))
                if result == ZERO:
                    return ZERO
            return result
        if isinstance(node, Or):
            result = ZERO
            for op in node.operands:
                result = manager.apply_or(result, build(op))
                if result == ONE:
                    return ONE
            return result
        raise TypeError(f"unknown expression node {node!r}")

    return manager, build(expr)


def model_count(expr: Expr, over: Optional[Sequence[str]] = None) -> int:
    """Exact satisfying-assignment count via BDD compilation.

    Unlike :func:`repro.boolexpr.sat.count_models` this never
    enumerates the assignment lattice, so it scales to the variable
    counts of real architectures.  ``over`` may widen the variable
    universe (extra don't-care variables double the count each).
    """
    variables = sorted(set(over) if over is not None else expr.variables())
    missing = expr.variables() - set(variables)
    if missing:
        raise ValueError(
            f"expression variables {sorted(missing)} missing from 'over'"
        )
    manager, root = expr_to_bdd(expr, variables)
    return manager.sat_count(root)
