"""Conversion of boolean expressions to conjunctive normal form.

Provides Tseitin transformation (equisatisfiable, linear-size, used by
the SAT-backed binding solver) and a small clause container shared with
:mod:`repro.boolexpr.sat`.

Clause representation: a clause is a frozenset of signed literals,
where a literal is ``(name, polarity)`` with ``polarity`` ``True`` for
the positive literal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .expr import And, Const, Expr, Not, Or, Var

Literal = Tuple[str, bool]
Clause = FrozenSet[Literal]


class CNF:
    """A formula in conjunctive normal form.

    ``variables`` lists the *original* expression variables; Tseitin
    auxiliaries are prefixed with ``"__t"`` and excluded from models
    reported to callers.
    """

    def __init__(self, clauses: List[Clause], variables: Set[str]) -> None:
        self.clauses = clauses
        self.variables = set(variables)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(|clauses|={len(self.clauses)}, |vars|={len(self.variables)})"


def _literal(name: str, polarity: bool) -> Literal:
    return (name, polarity)


def tseitin(expr: Expr) -> CNF:
    """Tseitin-transform ``expr`` into an equisatisfiable CNF.

    Each internal node gets a fresh auxiliary variable constrained to be
    equivalent to the node's value; the root auxiliary is asserted.
    """
    clauses: List[Clause] = []
    counter = [0]
    cache: Dict[Expr, Literal] = {}

    def fresh() -> str:
        counter[0] += 1
        return f"__t{counter[0]}"

    def encode(node: Expr) -> Literal:
        """Return a literal equivalent to ``node``, emitting clauses."""
        if node in cache:
            return cache[node]
        if isinstance(node, Const):
            aux = fresh()
            lit = _literal(aux, True)
            # assert aux == constant
            clauses.append(frozenset({_literal(aux, node.value)}))
            cache[node] = lit
            return lit
        if isinstance(node, Var):
            lit = _literal(node.name, True)
            cache[node] = lit
            return lit
        if isinstance(node, Not):
            name, polarity = encode(node.operand)
            lit = _literal(name, not polarity)
            cache[node] = lit
            return lit
        if isinstance(node, (And, Or)):
            operand_lits = [encode(op) for op in node.operands]
            aux = fresh()
            aux_pos = _literal(aux, True)
            aux_neg = _literal(aux, False)
            if isinstance(node, And):
                # aux -> each operand ; all operands -> aux
                for name, pol in operand_lits:
                    clauses.append(frozenset({aux_neg, _literal(name, pol)}))
                clauses.append(
                    frozenset(
                        {aux_pos}
                        | {_literal(n, not p) for (n, p) in operand_lits}
                    )
                )
                if not operand_lits:  # empty AND is TRUE
                    clauses.append(frozenset({aux_pos}))
            else:
                # operand -> aux ; aux -> some operand
                for name, pol in operand_lits:
                    clauses.append(
                        frozenset({aux_pos, _literal(name, not pol)})
                    )
                clauses.append(
                    frozenset(
                        {aux_neg} | {_literal(n, p) for (n, p) in operand_lits}
                    )
                )
                if not operand_lits:  # empty OR is FALSE
                    clauses.append(frozenset({aux_neg}))
            lit = aux_pos
            cache[node] = lit
            return lit
        raise TypeError(f"unknown expression node {node!r}")

    root = encode(expr)
    clauses.append(frozenset({root}))
    return CNF(clauses, set(expr.variables()))


def clause_to_str(clause: Clause) -> str:
    """Human-readable rendering of one clause (for debugging/reports)."""
    parts = sorted(
        (name if polarity else f"~{name}") for name, polarity in clause
    )
    return "(" + " | ".join(parts) + ")"
