"""Deterministic tracing, pruning audit and explain tooling for EXPLORE.

The observability layer of the exploration engine (see
``docs/observability.md``):

* :class:`Tracer` — spans over every search phase plus a per-candidate
  pruning audit trail, emitted at replay positions so serial, batched
  and service runs of one spec produce byte-identical logical traces;
* :mod:`repro.trace.export` — JSONL span logs, Chrome trace-event JSON
  (Perfetto-loadable) and a bridge into
  :class:`repro.service.metrics.MetricsRegistry`;
* :mod:`repro.trace.explain` — the ``repro explain`` engine: search
  statistics, prune breakdowns and bound-tightness reports recovered
  from a trace alone.
"""

from .explain import (
    bound_tightness,
    explain_text,
    recompute_stats,
    tree_text,
)
from .export import (
    TRACE_FORMAT,
    TRACE_VERSION,
    bridge_trace_metrics,
    chrome_trace,
    logical_view,
    read_trace,
    trace_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace,
)
from .tracer import (
    PRUNE_REASONS,
    STOP_REASONS,
    TRACE_LEVELS,
    Tracer,
    compute_trace_id,
    strip_wall_fields,
    trace_fingerprint,
)

__all__ = [
    "PRUNE_REASONS",
    "STOP_REASONS",
    "TRACE_FORMAT",
    "TRACE_LEVELS",
    "TRACE_VERSION",
    "Tracer",
    "bound_tightness",
    "bridge_trace_metrics",
    "chrome_trace",
    "compute_trace_id",
    "explain_text",
    "logical_view",
    "read_trace",
    "recompute_stats",
    "strip_wall_fields",
    "trace_fingerprint",
    "trace_to_jsonl",
    "tree_text",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace",
]
