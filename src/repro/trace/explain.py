"""The ``repro explain`` engine: search statistics from a trace alone.

Given the records of an audit-level trace, this module reconstructs the
paper's search statistics (the Table-1 counters and the Fig.-3 front)
*without* the :class:`~repro.core.result.ExplorationResult` — the trace
is a complete account of the search — and renders:

* a run summary (trace id, design space, completion, stop rule);
* the per-phase wall-clock breakdown (when the trace carries the
  wall-clock channel);
* the prune-reason breakdown — how many candidates each rule killed;
* bound-tightness statistics: estimated vs. achieved flexibility over
  the fully evaluated candidates, per cost band (how loose the
  flexibility estimate was, and whether it was ever *unsound*);
* the search tree by cost band with per-band prune reasons;
* the recovered Pareto front.

The recomputed counters are cross-checked against the run's own
``explore_end`` record; a mismatch means a truncated or partial trace
and is reported rather than hidden.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..report import format_table
from .tracer import PRE_EVALUATION_REASONS, PRUNE_REASONS, strip_wall_fields


def _by_type(
    records: Iterable[Dict[str, Any]],
) -> Dict[str, List[Dict[str, Any]]]:
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        grouped.setdefault(record.get("type", "?"), []).append(record)
    return grouped


def recompute_stats(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Reconstruct the search statistics from audit records alone.

    The arithmetic mirrors the exploration loop's counters: every
    enumerated candidate is either pruned before evaluation (an audit
    record with a :data:`PRE_EVALUATION_REASONS` reason) or fully
    evaluated (an ``evaluate`` record); post-evaluation prunes
    (``infeasible_binding``/``timing_test``/``not_improving``) and the
    final ``dominated`` pass do not add candidates.  For a complete,
    un-truncated audit trace these equal the run's
    :class:`~repro.core.result.ExplorationStats` exactly (asserted by
    ``tests/test_trace.py``).
    """
    grouped = _by_type(strip_wall_fields(records))
    prunes = grouped.get("prune", [])
    evaluates = grouped.get("evaluate", [])
    incumbents = grouped.get("incumbent", [])
    reasons: Dict[str, int] = {reason: 0 for reason in PRUNE_REASONS}
    for record in prunes:
        reasons[record.get("reason", "?")] = (
            reasons.get(record.get("reason", "?"), 0) + 1
        )
    pre_pruned = sum(
        count
        for reason, count in reasons.items()
        if reason in PRE_EVALUATION_REASONS
    )
    candidates = pre_pruned + len(evaluates)
    # The max_candidates stop counts its breaking candidate without
    # processing it (the serial loop increments before the check).
    for record in grouped.get("stop", []):
        if record.get("reason") == "max_candidates":
            candidates = record.get("candidates", candidates)
    estimated = [r for r in evaluates if r.get("estimate") is not None]
    estimates_computed = (
        reasons["estimate_below_incumbent"]
        + reasons["tie_higher_cost"]
        + len(estimated)
    )
    feasible = [r for r in evaluates if r.get("feasible")]
    return {
        "candidates_enumerated": candidates,
        "possible_allocations": candidates
        - reasons["impossible_allocation"],
        "pruned_comm": reasons["useless_comm"],
        "estimates_computed": estimates_computed,
        "estimate_exceeded": len(evaluates),
        "feasible_implementations": len(feasible),
        "solver_invocations": sum(
            r.get("solver_calls", 0) for r in evaluates
        ),
        "incumbents": len(incumbents),
        "points": len(incumbents) - reasons["dominated"],
        "prune_reasons": reasons,
    }


def bound_tightness(
    records: Iterable[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Estimate-vs-achieved statistics per cost band.

    Returns ``(bands, violations)``: one row per distinct cost with the
    number of evaluations, the mean/max gap ``estimate - achieved``
    over *feasible* candidates and the count of exact estimates; and
    the soundness violations (achieved strictly above the estimate —
    the branch-and-bound would be unsound, so any entry here is a bug).
    """
    by_cost: Dict[float, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("type") != "evaluate":
            continue
        by_cost.setdefault(record["cost"], []).append(record)
    bands: List[Dict[str, Any]] = []
    violations: List[Dict[str, Any]] = []
    for cost in sorted(by_cost):
        rows = by_cost[cost]
        gaps = []
        exact = 0
        for record in rows:
            estimate = record.get("estimate")
            if estimate is None or not record.get("feasible"):
                continue
            gap = estimate - record.get("flexibility", 0.0)
            gaps.append(gap)
            if gap == 0:
                exact += 1
            if gap < 0:
                violations.append(record)
        bands.append(
            {
                "cost": cost,
                "evaluations": len(rows),
                "feasible": sum(1 for r in rows if r.get("feasible")),
                "estimated": len(gaps),
                "exact": exact,
                "mean_gap": sum(gaps) / len(gaps) if gaps else None,
                "max_gap": max(gaps) if gaps else None,
            }
        )
    return bands, violations


def _fmt(value: Any, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.{digits}f}"
    return str(value)


def summary_text(records: List[Dict[str, Any]]) -> str:
    """The run-summary block of the explain report."""
    grouped = _by_type(records)
    start = (grouped.get("explore_start") or [{}])[0]
    end = (grouped.get("explore_end") or [{}])[0]
    stops = grouped.get("stop", [])
    lines = ["# Run"]
    rows = [
        ("trace id", start.get("trace") or "-"),
        ("level", start.get("level", "-")),
        ("design space", _fmt(start.get("design_space_size"))),
        ("flexibility bound f_max", _fmt(start.get("f_max"))),
        ("completed", _fmt(end.get("completed"))),
        (
            "stop rule",
            stops[-1].get("reason") if stops else "space exhausted",
        ),
        ("pareto points", _fmt(end.get("points"))),
    ]
    if start.get("resumed_from_cursor"):
        rows.append(
            ("partial trace from cursor", start["resumed_from_cursor"])
        )
    lines.append(format_table(("field", "value"), rows))
    front = end.get("front") or []
    if front:
        lines.append("")
        lines.append("# Pareto front (cost, flexibility)")
        lines.append(
            format_table(
                ("cost", "flexibility"),
                [(_fmt(c), _fmt(f)) for c, f in front],
            )
        )
    return "\n".join(lines)


def stats_text(records: List[Dict[str, Any]]) -> str:
    """The search-statistics block (the Table-1 counters, recomputed)."""
    recomputed = recompute_stats(records)
    grouped = _by_type(records)
    end = (grouped.get("explore_end") or [{}])[0]
    lines = ["# Search statistics (recomputed from the audit trail)"]
    rows = []
    checks = (
        ("candidates enumerated", "candidates_enumerated", "candidates"),
        ("possible allocations", "possible_allocations", None),
        ("pruned: useless comm", "pruned_comm", None),
        ("estimates computed", "estimates_computed", None),
        ("estimate exceeded bound", "estimate_exceeded", "evaluations"),
        ("feasible implementations", "feasible_implementations", "feasible"),
        ("binding-solver invocations", "solver_invocations", None),
        ("pareto points", "points", "points"),
    )
    mismatches = []
    for label, key, end_key in checks:
        value = recomputed[key]
        row = (label, _fmt(value))
        if end_key is not None and end_key in end:
            recorded = end[end_key]
            if recorded != value:
                mismatches.append((label, value, recorded))
                row = (label, f"{_fmt(value)} (run recorded {recorded})")
        rows.append(row)
    lines.append(format_table(("counter", "value"), rows))
    if mismatches:
        lines.append("")
        lines.append(
            "WARNING: recomputed counters disagree with the run's own "
            "explore_end record — the trace is truncated or partial."
        )
    return "\n".join(lines)


def prune_text(records: List[Dict[str, Any]]) -> str:
    """The prune-reason breakdown block."""
    reasons = recompute_stats(records)["prune_reasons"]
    total = sum(reasons.values())
    lines = ["# Pruning audit — which rule killed how many candidates"]
    if not total:
        lines.append(
            "(no audit records — trace was collected at level=spans)"
        )
        return "\n".join(lines)
    rows = []
    for reason in PRUNE_REASONS:
        count = reasons.get(reason, 0)
        if not count:
            continue
        rows.append((reason, str(count), f"{100.0 * count / total:.1f}%"))
    lines.append(format_table(("reason", "candidates", "share"), rows))
    return "\n".join(lines)


def phase_text(records: List[Dict[str, Any]]) -> str:
    """The per-phase wall-clock breakdown block."""
    grouped = _by_type(records)
    totals = (grouped.get("phase_totals") or [{}])[0].get("phases") or {}
    lines = ["# Per-phase time breakdown (wall-clock channel)"]
    if not totals:
        lines.append(
            "(no wall-clock channel — e.g. a batched replay, where the "
            "evaluation work happened on the worker pool)"
        )
        return "\n".join(lines)
    start = (grouped.get("explore_start") or [{}])[0]
    end = (grouped.get("explore_end") or [{}])[0]
    elapsed = None
    if isinstance(start.get("t"), (int, float)) and isinstance(
        end.get("t"), (int, float)
    ):
        elapsed = end["t"] - start["t"]
    rows = []
    for phase in sorted(totals):
        calls = totals[phase].get("calls", 0)
        seconds = totals[phase].get("seconds", 0.0)
        share = (
            f"{100.0 * seconds / elapsed:.1f}%"
            if elapsed and elapsed > 0
            else "-"
        )
        rows.append((phase, str(calls), f"{seconds:.6f}", share))
    if elapsed is not None:
        rows.append(("(whole run)", "1", f"{elapsed:.6f}", "100.0%"))
    lines.append(format_table(("phase", "calls", "seconds", "share"), rows))
    return "\n".join(lines)


def tightness_text(records: List[Dict[str, Any]]) -> str:
    """The bound-tightness block: estimated vs. achieved flexibility."""
    bands, violations = bound_tightness(records)
    lines = ["# Bound tightness — estimated vs. achieved flexibility"]
    estimated = [b for b in bands if b["estimated"]]
    if not estimated:
        lines.append("(no estimated evaluations in the trace)")
        return "\n".join(lines)
    rows = [
        (
            _fmt(b["cost"]),
            str(b["evaluations"]),
            str(b["feasible"]),
            f"{b['exact']}/{b['estimated']}",
            _fmt(b["mean_gap"]),
            _fmt(b["max_gap"]),
        )
        for b in estimated
    ]
    lines.append(
        format_table(
            ("cost", "evals", "feasible", "exact", "mean gap", "max gap"),
            rows,
        )
    )
    gaps = [
        b["mean_gap"] * b["estimated"] for b in estimated if b["mean_gap"]
    ]
    total_estimated = sum(b["estimated"] for b in estimated)
    overall = sum(gaps) / total_estimated if total_estimated else 0.0
    lines.append("")
    lines.append(
        f"mean estimate-achieved gap over {total_estimated} feasible "
        f"evaluations: {overall:.3f}"
    )
    if violations:
        lines.append(
            f"SOUNDNESS VIOLATION: {len(violations)} evaluation(s) "
            f"achieved more flexibility than estimated — the estimate "
            f"is not an upper bound!"
        )
    else:
        lines.append(
            "estimate was a sound upper bound on every evaluation"
        )
    return "\n".join(lines)


def tree_text(records: List[Dict[str, Any]], limit: int = 20) -> str:
    """The search tree by cost band, with per-band prune reasons."""
    bands: Dict[float, Dict[str, Any]] = {}

    def band(cost: float) -> Dict[str, Any]:
        entry = bands.get(cost)
        if entry is None:
            entry = {"reasons": {}, "feasible": [], "incumbent": []}
            bands[cost] = entry
        return entry

    for record in records:
        kind = record.get("type")
        if kind == "prune":
            reasons = band(record["cost"])["reasons"]
            reason = record.get("reason", "?")
            reasons[reason] = reasons.get(reason, 0) + 1
        elif kind == "evaluate" and record.get("feasible"):
            band(record["cost"])["feasible"].append(
                record.get("flexibility")
            )
        elif kind == "incumbent":
            band(record["cost"])["incumbent"].append(
                record.get("flexibility")
            )
    lines = ["# Search tree (cost bands, cheapest first)"]
    if not bands:
        lines.append("(no per-candidate records in the trace)")
        return "\n".join(lines)
    shown = sorted(bands)
    truncated = 0
    if limit and len(shown) > limit:
        truncated = len(shown) - limit
        shown = shown[:limit]
    for cost in shown:
        entry = bands[cost]
        pruned = sum(entry["reasons"].values())
        kills = ", ".join(
            f"{reason}×{count}"
            for reason, count in sorted(
                entry["reasons"].items(), key=lambda kv: -kv[1]
            )
        )
        marks = ""
        if entry["incumbent"]:
            marks = " ★ incumbent f=" + ",".join(
                _fmt(f) for f in entry["incumbent"]
            )
        lines.append(f"cost {_fmt(cost)}  ({pruned} pruned){marks}")
        if kills:
            lines.append(f"  ├─ killed by: {kills}")
        if entry["feasible"]:
            lines.append(
                "  └─ feasible f=" +
                ",".join(_fmt(f) for f in entry["feasible"])
            )
    if truncated:
        lines.append(f"... {truncated} more cost bands (use --limit 0)")
    return "\n".join(lines)


def explain_text(
    records: List[Dict[str, Any]],
    tree: bool = False,
    limit: int = 20,
) -> str:
    """The full explain report over a trace's records."""
    blocks = [
        summary_text(records),
        stats_text(records),
        prune_text(records),
        tightness_text(records),
        phase_text(records),
    ]
    if tree:
        blocks.append(tree_text(records, limit=limit))
    return "\n\n".join(blocks) + "\n"
