"""Deterministic tracing of the EXPLORE search (spans + pruning audit).

A :class:`Tracer` is an optional observation seam threaded through the
serial loop (:func:`repro.core.explorer.explore`), the batched replay
(:func:`repro.parallel.explore_batched`) and the exploration service
(:mod:`repro.service`).  It records, as plain dictionaries:

* **spans** — one ``explore_start``/``explore_end`` pair framing the
  run, one ``evaluate`` record per fully evaluated candidate (the
  binding solve + timing test), one ``incumbent`` record per
  Pareto-front update, and a ``stop`` record naming the rule that
  ended the enumeration;
* **audit records** (``level="audit"``) — one ``prune`` record for
  *every* discarded candidate, carrying a machine-readable reason from
  :data:`PRUNE_REASONS` and the numbers that justified the decision
  (estimate vs. incumbent, solver calls, achieved flexibility, ...).

Determinism contract
--------------------
Every record is emitted at the candidate's *replay position* and built
only from replay-deterministic data, mirroring the
:class:`repro.core.progress.ProgressEmitter` invariant: serial,
batched and service-multiplexed runs of the same specification and
options produce **byte-identical logical traces**.  Wall-clock lives
only in the fields named by :data:`WALL_FIELDS` (``t``/``t0``/``t1``
and the diagnostic ``diag`` payload) plus the trailing
``phase_totals`` record; :meth:`Tracer.logical_records` strips them
and :meth:`Tracer.fingerprint` hashes what remains.  Timestamps come
from an injectable clock (any object with a ``now()`` method, e.g.
:class:`repro.service.clock.ManualClock`); the default is
:func:`time.monotonic`.

A tracer with ``record_truncation=False`` (the service's per-job
configuration) suppresses budget-truncation ``stop`` records and
incomplete ``explore_end`` records, so a job preempted across many
service slices accumulates exactly the trace of one uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, Iterable, List, Optional

from ..errors import TraceError

#: Accepted tracing levels.  ``"spans"`` records the run frame,
#: evaluations, incumbents and stops; ``"audit"`` additionally records
#: one ``prune`` record per discarded candidate.
TRACE_LEVELS = ("spans", "audit")

#: Record fields carrying wall-clock (or wall-clock-derived) data,
#: excluded from the logical trace and the fingerprint.
WALL_FIELDS = frozenset({"t", "t0", "t1", "diag"})

#: Record types that exist only for the wall-clock channel.
NONLOGICAL_TYPES = frozenset({"phase_totals"})

#: The machine-readable prune-reason taxonomy (see
#: ``docs/observability.md``):
#:
#: * ``impossible_allocation`` — the possible-resource-allocation
#:   boolean equation rejected the unit set;
#: * ``useless_comm`` — the allocation contains a communication unit
#:   connecting nothing (useless-communication pruning);
#: * ``estimate_below_incumbent`` — the flexibility estimate does not
#:   exceed the incumbent bound;
#: * ``tie_higher_cost`` — under ``keep_ties``, same estimated
#:   flexibility as the incumbent at strictly higher cost;
#: * ``infeasible_binding`` — the binding solver found no feasible
#:   binding even with the timing test disabled;
#: * ``timing_test`` — structurally bindable, but the timing test
#:   (utilisation bound / exact schedule) rejected every binding;
#: * ``not_improving`` — feasible, but the achieved flexibility does
#:   not beat the incumbent;
#: * ``dominated`` — removed by the final Pareto dominance pass.
PRUNE_REASONS = (
    "impossible_allocation",
    "useless_comm",
    "estimate_below_incumbent",
    "tie_higher_cost",
    "infeasible_binding",
    "timing_test",
    "not_improving",
    "dominated",
)

#: Reasons of ``stop`` records: what ended the enumeration early.
STOP_REASONS = (
    "flexibility_bound_reached",
    "cost_bound",
    "max_candidates",
    "budget",
)

#: Prune reasons recorded *before* a full evaluation (the candidate has
#: no ``evaluate`` record).
PRE_EVALUATION_REASONS = frozenset(
    {
        "impossible_allocation",
        "useless_comm",
        "estimate_below_incumbent",
        "tie_higher_cost",
    }
)


def compute_trace_id(spec) -> str:
    """Deterministic trace id of a specification (16 hex chars).

    The id hashes only the canonical specification document — not the
    exploration options — so serial, batched and service runs of the
    same spec share one id and their events/spans can be joined (the
    service stamps it on every job event; see ``docs/formats.md``).
    """
    from ..io.json_io import spec_to_dict

    canonical = json.dumps(
        spec_to_dict(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class Tracer:
    """Collects the deterministic span/audit records of one exploration.

    Parameters
    ----------
    level:
        ``"spans"`` or ``"audit"`` (see :data:`TRACE_LEVELS`).
    clock:
        Any object with a ``now() -> float`` method (the injectable
        clock protocol of :mod:`repro.service.clock`); defaults to
        :func:`time.monotonic`.  Clock readings land only in
        wall-clock fields, never in the logical trace.
    trace_id:
        Stamped on the ``explore_start`` record and every export;
        usually :func:`compute_trace_id` of the spec.

    The per-candidate hooks (:meth:`prune`, :meth:`evaluate`,
    :meth:`incumbent`, :meth:`stop`) are called by the exploration
    loops at replay positions; user code normally only constructs the
    tracer, passes it to ``explore(tracer=...)`` and exports the
    records (:mod:`repro.trace.export`).
    """

    __slots__ = (
        "level",
        "trace_id",
        "records",
        "record_truncation",
        "phase_totals",
        "tags",
        "_seq",
        "_started",
        "_now",
    )

    def __init__(
        self,
        level: str = "spans",
        clock=None,
        trace_id: Optional[str] = None,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        if level not in TRACE_LEVELS:
            raise TraceError(
                f"unknown trace level {level!r}; "
                f"expected one of {TRACE_LEVELS}"
            )
        self.level = level
        self.trace_id = trace_id
        #: The recorded events, in emission order.
        self.records: List[Dict[str, Any]] = []
        #: When ``False`` (the service's per-job setting), budget
        #: truncations — preemptions — leave no logical record.
        self.record_truncation = True
        #: Wall-clock totals per phase: ``{phase: [calls, seconds]}``.
        self.phase_totals: Dict[str, List[float]] = {}
        #: Optional static labels stamped on the ``explore_start``
        #: record — distributed shard workers tag their spans with
        #: ``{"shard": i, "shards": n, "strategy": ...}`` so per-shard
        #: traces stay attributable after collection.  ``None`` (the
        #: default) changes nothing, including the fingerprint.
        self.tags = dict(tags) if tags else None
        self._seq = 0
        self._started = False
        self._now = clock.now if clock is not None else time.monotonic

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def audit(self) -> bool:
        """Whether per-prune audit records are collected."""
        return self.level == "audit"

    def _record(self, record: Dict[str, Any]) -> None:
        record["seq"] = self._seq
        self._seq += 1
        self.records.append(record)

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by the exploration loops)
    # ------------------------------------------------------------------
    def start(
        self, design_space_size: int, f_max: float, cursor: int = 0
    ) -> None:
        """Open the root span.  Idempotent: a job resumed across
        service slices keeps one ``explore_start`` record."""
        if self._started:
            return
        self._started = True
        record: Dict[str, Any] = {
            "type": "explore_start",
            "trace": self.trace_id,
            "level": self.level,
            "design_space_size": design_space_size,
            "f_max": f_max,
            "t": self._now(),
        }
        if cursor:
            # A fresh tracer attached to a mid-run resume: the records
            # before `cursor` were traced (if at all) by a previous
            # process.  Recorded so explain() does not misreport the
            # partial trace as a complete run.
            record["resumed_from_cursor"] = cursor
        if self.tags:
            record["tags"] = {
                key: self.tags[key] for key in sorted(self.tags)
            }
        self._record(record)

    def prune(
        self, reason: str, cost: float, units: Iterable[str], **numbers: Any
    ) -> None:
        """Audit one discarded candidate (``level="audit"`` only)."""
        if self.level != "audit":
            return
        record: Dict[str, Any] = {
            "type": "prune",
            "reason": reason,
            "cost": cost,
            "units": sorted(units),
        }
        record.update(numbers)
        record["t"] = self._now()
        self._record(record)

    def evaluate(
        self,
        cost: float,
        units: Iterable[str],
        estimate: Optional[float],
        solver_calls: int,
        feasible: bool,
        flexibility: float,
        incumbent: float,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        diag: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one full candidate evaluation (binding + timing).

        ``t0``/``t1``/``diag`` belong to the wall-clock channel: the
        serial loop attaches real timings and the solver's phase
        breakdown, the batched replay leaves them unset (the work
        happened on a worker) — the logical trace is identical either
        way.
        """
        record: Dict[str, Any] = {
            "type": "evaluate",
            "cost": cost,
            "units": sorted(units),
            "estimate": estimate,
            "solver_calls": solver_calls,
            "feasible": feasible,
            "flexibility": flexibility,
            "incumbent": incumbent,
        }
        if t0 is not None:
            record["t0"] = t0
            record["t1"] = t1 if t1 is not None else self._now()
        else:
            record["t"] = self._now()
        if diag:
            record["diag"] = diag
        self._record(record)

    def incumbent(
        self,
        cost: float,
        flexibility: float,
        units: Iterable[str],
        candidates: int,
        evaluations: int,
    ) -> None:
        """Record one Pareto-front update."""
        self._record(
            {
                "type": "incumbent",
                "cost": cost,
                "flexibility": flexibility,
                "units": sorted(units),
                "candidates": candidates,
                "evaluations": evaluations,
                "t": self._now(),
            }
        )

    def stop(self, reason: str, **fields: Any) -> None:
        """Record the rule that ended the enumeration early."""
        if reason == "budget" and not self.record_truncation:
            return
        record: Dict[str, Any] = {"type": "stop", "reason": reason}
        record.update(fields)
        record["t"] = self._now()
        self._record(record)

    def end(
        self,
        completed: bool,
        reason: Optional[str],
        candidates: int,
        evaluations: int,
        feasible: int,
        points: int,
        front: List[List[float]],
    ) -> None:
        """Close the root span with the run's summary counters."""
        if not completed and not self.record_truncation:
            return
        self._record(
            {
                "type": "explore_end",
                "completed": completed,
                "reason": reason,
                "candidates": candidates,
                "evaluations": evaluations,
                "feasible": feasible,
                "points": points,
                "front": [list(point) for point in front],
                "t": self._now(),
            }
        )

    # ------------------------------------------------------------------
    # Wall-clock channel
    # ------------------------------------------------------------------
    def charge(self, phase: str, seconds: float) -> None:
        """Accumulate wall-clock seconds against a named phase."""
        totals = self.phase_totals.get(phase)
        if totals is None:
            self.phase_totals[phase] = [1, seconds]
        else:
            totals[0] += 1
            totals[1] += seconds

    def timed(self, phase: str, fn, *args: Any) -> Any:
        """Run ``fn(*args)`` charging its duration to ``phase``."""
        t0 = time.perf_counter()
        try:
            return fn(*args)
        finally:
            self.charge(phase, time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # Export views
    # ------------------------------------------------------------------
    def all_records(self) -> List[Dict[str, Any]]:
        """The recorded events plus the trailing ``phase_totals``
        record (the wall-clock channel's summary)."""
        records = list(self.records)
        if self.phase_totals:
            records.append(
                {
                    "type": "phase_totals",
                    "phases": {
                        phase: {"calls": int(calls), "seconds": seconds}
                        for phase, (calls, seconds) in sorted(
                            self.phase_totals.items()
                        )
                    },
                }
            )
        return records

    def logical_records(self) -> List[Dict[str, Any]]:
        """The deterministic view: wall-clock fields stripped."""
        return strip_wall_fields(self.records)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON of the logical records."""
        return trace_fingerprint(self.records)


def strip_wall_fields(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Drop wall-clock fields/records; what remains is deterministic."""
    logical = []
    for record in records:
        if record.get("type") in NONLOGICAL_TYPES:
            continue
        logical.append(
            {k: v for k, v in record.items() if k not in WALL_FIELDS}
        )
    return logical


def trace_fingerprint(records: Iterable[Dict[str, Any]]) -> str:
    """SHA-256 fingerprint of a record sequence's logical view."""
    canonical = json.dumps(
        strip_wall_fields(records), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
