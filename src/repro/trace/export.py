"""Trace exporters: JSONL span logs, Chrome trace-event JSON, metrics.

Three export surfaces over the records of a :class:`~repro.trace.Tracer`:

* :func:`write_trace` / :func:`read_trace` — the canonical JSONL log
  (one sorted-key JSON object per line, format documented in
  ``docs/formats.md``);
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON Array-with-metadata format, loadable in Perfetto or
  ``chrome://tracing``; :func:`validate_chrome_trace` checks a document
  against the event schema (used by CI);
* :func:`bridge_trace_metrics` — fold the record counts and wall-clock
  phase totals into a :class:`repro.service.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from ..errors import TraceError
from .tracer import Tracer, strip_wall_fields

#: Format identifier of the first record of a JSONL trace file.
TRACE_FORMAT = "repro/trace"
#: Current trace-format version.
TRACE_VERSION = 1

#: The Chrome trace-event phases this exporter emits.
_CHROME_PHASES = {"X", "i", "C", "M"}
#: All phases the validator accepts (the published event taxonomy).
_CHROME_KNOWN_PHASES = set("BEXiICPnOSTFsftMbe")


def _records_of(
    source: Union[Tracer, Iterable[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    if isinstance(source, Tracer):
        return source.all_records()
    return list(source)


# ---------------------------------------------------------------------------
# JSONL span log
# ---------------------------------------------------------------------------


def trace_to_jsonl(source: Union[Tracer, Iterable[Dict[str, Any]]]) -> str:
    """The JSONL document: a header line, then one record per line."""
    records = _records_of(source)
    header = {"format": TRACE_FORMAT, "version": TRACE_VERSION}
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(r, sort_keys=True) for r in records)
    return "\n".join(lines) + "\n"


def write_trace(
    source: Union[Tracer, Iterable[Dict[str, Any]]], path: str
) -> None:
    """Write the JSONL trace log to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_jsonl(source))


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace log; returns the records (header stripped)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise TraceError(
                    f"{path}:{number + 1}: not JSON: {error}"
                ) from None
            if not isinstance(record, dict):
                raise TraceError(
                    f"{path}:{number + 1}: trace records are objects, "
                    f"got {type(record).__name__}"
                )
            records.append(record)
    if not records:
        raise TraceError(f"{path}: empty trace file")
    header = records[0]
    if header.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"{path}: not a trace log (format={header.get('format')!r})"
        )
    if header.get("version") != TRACE_VERSION:
        raise TraceError(
            f"{path}: unsupported trace version {header.get('version')!r}"
        )
    return records[1:]


def logical_view(
    source: Union[Tracer, Iterable[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """The deterministic logical view of a tracer or record list."""
    return strip_wall_fields(_records_of(source))


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def _microseconds(seconds: float, base: float) -> float:
    return round((seconds - base) * 1e6, 3)


def chrome_trace(
    source: Union[Tracer, Iterable[Dict[str, Any]]],
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Convert trace records to a Chrome trace-event JSON document.

    Emits ``X`` (complete) events for the run frame and every candidate
    evaluation, ``i`` (instant) events for prunes/incumbents/stops and
    a ``C`` (counter) track following the incumbent flexibility — all
    on one pid/tid, timestamps in microseconds relative to the first
    record.  Loadable in Perfetto / ``chrome://tracing``.
    """
    records = _records_of(source)
    stamps = [
        record[key]
        for record in records
        for key in ("t", "t0")
        if isinstance(record.get(key), (int, float))
    ]
    base = min(stamps) if stamps else 0.0
    if trace_id is None:
        for record in records:
            if record.get("type") == "explore_start":
                trace_id = record.get("trace")
                break
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro explore"},
        }
    ]
    start_ts: Optional[float] = None
    end_ts: Optional[float] = None
    start_args: Dict[str, Any] = {}
    for record in records:
        kind = record.get("type")
        stamp = record.get("t", record.get("t0", base))
        ts = _microseconds(stamp, base)
        if kind == "explore_start":
            start_ts = ts
            start_args = {
                "design_space_size": record.get("design_space_size"),
                "f_max": record.get("f_max"),
                "trace": record.get("trace"),
            }
        elif kind == "explore_end":
            end_ts = ts
            start_args["completed"] = record.get("completed")
            start_args["points"] = record.get("points")
        elif kind == "evaluate":
            t0 = record.get("t0", stamp)
            t1 = record.get("t1", t0)
            events.append(
                {
                    "name": "evaluate",
                    "cat": "evaluate",
                    "ph": "X",
                    "ts": _microseconds(t0, base),
                    "dur": max(0.0, round((t1 - t0) * 1e6, 3)),
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "cost": record.get("cost"),
                        "estimate": record.get("estimate"),
                        "flexibility": record.get("flexibility"),
                        "feasible": record.get("feasible"),
                        "solver_calls": record.get("solver_calls"),
                        "units": record.get("units"),
                    },
                }
            )
        elif kind == "prune":
            events.append(
                {
                    "name": record.get("reason", "prune"),
                    "cat": "prune",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "cost": record.get("cost"),
                        "units": record.get("units"),
                    },
                }
            )
        elif kind == "incumbent":
            events.append(
                {
                    "name": "incumbent",
                    "cat": "front",
                    "ph": "i",
                    "s": "p",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "cost": record.get("cost"),
                        "flexibility": record.get("flexibility"),
                    },
                }
            )
            events.append(
                {
                    "name": "incumbent_flexibility",
                    "ph": "C",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {"flexibility": record.get("flexibility")},
                }
            )
        elif kind == "stop":
            events.append(
                {
                    "name": f"stop:{record.get('reason', '?')}",
                    "cat": "stop",
                    "ph": "i",
                    "s": "g",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        k: v
                        for k, v in record.items()
                        if k not in ("type", "t", "seq")
                    },
                }
            )
        elif kind == "phase_totals":
            for phase, totals in sorted(
                (record.get("phases") or {}).items()
            ):
                events.append(
                    {
                        "name": f"phase:{phase}",
                        "cat": "phase",
                        "ph": "i",
                        "s": "g",
                        "ts": end_ts if end_ts is not None else 0.0,
                        "pid": 1,
                        "tid": 1,
                        "args": dict(totals),
                    }
                )
    if start_ts is not None:
        duration = (
            max(0.0, end_ts - start_ts) if end_ts is not None else 0.0
        )
        events.insert(
            1,
            {
                "name": "explore",
                "cat": "explore",
                "ph": "X",
                "ts": start_ts,
                "dur": duration,
                "pid": 1,
                "tid": 1,
                "args": start_args,
            },
        )
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if trace_id is not None:
        document["otherData"] = {"trace_id": trace_id}
    return document


def write_chrome_trace(
    source: Union[Tracer, Iterable[Dict[str, Any]]],
    path: str,
    trace_id: Optional[str] = None,
) -> None:
    """Write the Chrome trace-event JSON document to ``path``."""
    document = chrome_trace(source, trace_id)
    errors = validate_chrome_trace(document)
    if errors:  # pragma: no cover - exporter bug guard
        raise TraceError(
            f"internal: generated Chrome trace is invalid: {errors[0]}"
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_chrome_trace(document: Any) -> List[str]:
    """Validate a Chrome trace-event document; returns error strings.

    Checks the JSON Object Format constraints that Perfetto and
    ``chrome://tracing`` rely on: a ``traceEvents`` array of objects,
    each with a known ``ph`` phase, a string ``name``, integer-like
    ``pid``/``tid``, a non-negative numeric ``ts`` (except metadata
    events) and, for ``X`` events, a non-negative ``dur``.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents array"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _CHROME_KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: missing integer {key}")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: missing non-negative ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event missing non-negative dur")
        if phase == "i" and event.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: instant scope {event.get('s')!r}")
    return errors


# ---------------------------------------------------------------------------
# Metrics bridge
# ---------------------------------------------------------------------------


def bridge_trace_metrics(
    source: Union[Tracer, Iterable[Dict[str, Any]]],
    registry,
    prefix: str = "repro_trace_",
) -> None:
    """Fold trace records into a metrics registry's counters.

    Increments ``<prefix>records_total``, per-record-type counters
    (``<prefix>evaluations_total``, ``<prefix>incumbents_total``,
    ``<prefix>prunes_total``), one counter per prune reason
    (``<prefix>prune_<reason>_total``) and the wall-clock phase totals
    (``<prefix>phase_<phase>_seconds``).  ``registry`` is a
    :class:`repro.service.metrics.MetricsRegistry` (or anything with
    its ``counter(name, help)`` get-or-create API).
    """
    records = _records_of(source)
    registry.counter(
        prefix + "records_total", "Trace records exported."
    ).inc(len(records))
    type_names = {
        "evaluate": "evaluations_total",
        "incumbent": "incumbents_total",
        "prune": "prunes_total",
        "stop": "stops_total",
    }
    for record in records:
        kind = record.get("type")
        metric = type_names.get(kind)
        if metric is not None:
            registry.counter(
                prefix + metric, f"Trace {kind} records."
            ).inc()
        if kind == "prune":
            reason = record.get("reason", "unknown")
            registry.counter(
                prefix + f"prune_{reason}_total",
                f"Candidates pruned by rule {reason}.",
            ).inc()
        elif kind == "evaluate":
            registry.counter(
                prefix + "solver_calls_total",
                "Binding-solver invocations seen in traces.",
            ).inc(record.get("solver_calls", 0))
        elif kind == "phase_totals":
            for phase, totals in sorted(
                (record.get("phases") or {}).items()
            ):
                registry.counter(
                    prefix + f"phase_{phase}_seconds",
                    f"Wall-clock seconds charged to the {phase} phase.",
                ).inc(max(0.0, float(totals.get("seconds", 0.0))))
