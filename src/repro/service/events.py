"""Streaming job observation: an in-process event bus with fan-out.

The service publishes one dictionary per observable moment of a job's
life — ``submitted``, ``slice_start``, ``progress`` (with throughput
and ETA), ``incumbent`` (a new Pareto point), ``preempted``,
``resumed``, ``completed``, ``failed``, ``cancelled``, ``recovered``,
``shed`` (evicted by admission control under overload), ``hung`` (a
slice preempted by the watchdog) — and the bus fans each event out to
every matching subscriber.

Subscribers are queue-backed and independent: a slow consumer never
blocks the scheduler (events beyond ``max_pending`` are dropped
oldest-first and counted on the subscription, never silently), and
subscriptions can filter by job id and/or event kind.  The service
additionally journals every event to the job's ``events/<id>.jsonl``
file so ``repro watch`` can stream from another process.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: Event kinds the service publishes (superset of the explore-progress
#: kinds; service events carry ``job`` and ``t`` fields as well).
SERVICE_EVENT_KINDS = (
    "submitted",
    "slice_start",
    "progress",
    "incumbent",
    "preempted",
    "resumed",
    "completed",
    "failed",
    "cancelled",
    "recovered",
    "shed",
    "hung",
)


class Subscription:
    """One subscriber's bounded event queue."""

    def __init__(
        self,
        bus: "EventBus",
        job_id: Optional[str],
        kinds: Optional[Sequence[str]],
        max_pending: int,
    ) -> None:
        self._bus = bus
        self.job_id = job_id
        self.kinds = frozenset(kinds) if kinds is not None else None
        self._queue: deque = deque()
        self._max_pending = max_pending
        self._condition = threading.Condition()
        self._closed = False
        #: Events dropped because the queue overflowed (never silent).
        self.dropped = 0

    def _matches(self, event: Dict[str, Any]) -> bool:
        if self.job_id is not None and event.get("job") != self.job_id:
            return False
        if self.kinds is not None and event.get("kind") not in self.kinds:
            return False
        return True

    def _offer(self, event: Dict[str, Any]) -> None:
        with self._condition:
            if self._closed:
                return
            if len(self._queue) >= self._max_pending:
                self._queue.popleft()
                self.dropped += 1
            self._queue.append(event)
            self._condition.notify_all()

    def pop(self, timeout: Optional[float] = 0.0) -> Optional[Dict[str, Any]]:
        """The next event, or ``None`` (queue empty / closed).

        ``timeout=0`` polls; a positive timeout blocks up to that many
        seconds; ``None`` blocks until an event arrives or the
        subscription closes.
        """
        with self._condition:
            if not self._queue and not self._closed and timeout != 0.0:
                self._condition.wait_for(
                    lambda: self._queue or self._closed, timeout
                )
            if self._queue:
                return self._queue.popleft()
            return None

    def drain(self) -> List[Dict[str, Any]]:
        """Every pending event, without blocking."""
        with self._condition:
            events = list(self._queue)
            self._queue.clear()
            return events

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        """Iterate events until the subscription is closed and drained."""
        while True:
            event = self.pop(timeout=None)
            if event is None:
                return
            yield event

    def close(self) -> None:
        self._bus.unsubscribe(self)
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EventBus:
    """Fans published events out to every matching subscription."""

    #: Default per-subscription queue bound.
    MAX_PENDING_DEFAULT = 10_000

    def __init__(self) -> None:
        self._subscriptions: List[Subscription] = []
        self._lock = threading.Lock()

    def subscribe(
        self,
        job_id: Optional[str] = None,
        kinds: Optional[Sequence[str]] = None,
        max_pending: int = MAX_PENDING_DEFAULT,
    ) -> Subscription:
        """A new subscription, optionally filtered by job and kinds."""
        subscription = Subscription(self, job_id, kinds, max_pending)
        with self._lock:
            self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                pass

    def publish(self, event: Dict[str, Any]) -> None:
        with self._lock:
            subscribers = list(self._subscriptions)
        for subscription in subscribers:
            if subscription._matches(event):
                subscription._offer(event)

    def close(self) -> None:
        with self._lock:
            subscribers = list(self._subscriptions)
        for subscription in subscribers:
            subscription.close()
