"""The in-memory job object of the exploration service."""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.result import ExplorationResult
from ..errors import ReproError
from ..io.job_io import JOB_STATES, TERMINAL_STATES
from ..spec import SpecificationGraph
from ..trace import compute_trace_id

#: ``explore()`` keyword arguments a submission may set.  Execution
#: geometry (parallel/workers/pool), checkpointing and budgets are the
#: service's own levers — a job describes *what* to explore, the
#: service decides *how*.
SUBMIT_OPTIONS = (
    "util_bound",
    "max_cost",
    "max_candidates",
    "use_possible_filter",
    "use_estimation",
    "prune_comm",
    "check_utilization",
    "weighted",
    "backend",
    "keep_ties",
    "timing_mode",
    "require_units",
    "forbid_units",
    "batch_size",
    "engine",
    # A shard descriptor dict (repro.distributed.Shard.to_dict): the
    # job explores only its shard of the possible-allocation space.
    # Incompatible with max_candidates (positions differ per shard).
    "shard",
    # Not an explore() kwarg: asks the service to record the job's
    # search trace ("spans" or "audit", see repro.trace) into
    # job-<id>.trace.jsonl.  Stripped before explore_batched().
    "trace",
)


class ServiceError(ReproError):
    """A service request is malformed or the service cannot honour it."""


def validate_options(options: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Check a submission's explore options against :data:`SUBMIT_OPTIONS`."""
    options = dict(options or {})
    unknown = set(options) - set(SUBMIT_OPTIONS)
    if unknown:
        raise ServiceError(
            f"unknown explore option(s) {sorted(unknown)!r}; "
            f"a job may set {SUBMIT_OPTIONS}"
        )
    trace = options.get("trace")
    if trace is not None and trace not in ("spans", "audit"):
        raise ServiceError(
            f"trace option must be 'spans' or 'audit', got {trace!r}"
        )
    shard = options.get("shard")
    if shard is not None:
        if hasattr(shard, "to_dict"):
            # Ledger records are JSON; journal the descriptor form.
            shard = options["shard"] = shard.to_dict()
        if not isinstance(shard, dict):
            raise ServiceError(
                f"shard option must be a shard descriptor object, "
                f"got {type(shard).__name__}"
            )
        if options.get("max_candidates") is not None:
            raise ServiceError(
                "max_candidates is incompatible with a sharded job: "
                "it counts enumeration positions, which differ per shard"
            )
    return options


class Job:
    """One named exploration job owned by the service."""

    __slots__ = (
        "job_id",
        "name",
        "spec",
        "options",
        "priority",
        "state",
        "submitted_at",
        "started_at",
        "finished_at",
        "slices",
        "preemptions",
        "evaluations",
        "candidates",
        "checkpoints",
        "error",
        "result",
        "recovered",
        "trace_id",
    )

    def __init__(
        self,
        job_id: str,
        name: str,
        spec: SpecificationGraph,
        options: Dict[str, Any],
        priority: float,
        submitted_at: float,
    ) -> None:
        self.job_id = job_id
        self.name = name
        self.spec = spec
        self.options = validate_options(options)
        self.priority = priority
        self.state = "queued"
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Scheduler slices this job has run.
        self.slices = 0
        #: Times a slice ended on the preemption budget (checkpointed
        #: and re-queued rather than finished).
        self.preemptions = 0
        #: Full candidate evaluations performed so far (the slice
        #: budget currency).
        self.evaluations = 0
        #: Candidates replayed so far.
        self.candidates = 0
        #: Checkpoint records written for this job so far.
        self.checkpoints = 0
        self.error: Optional[str] = None
        #: The exploration result (terminal ``completed`` state only).
        self.result: Optional[ExplorationResult] = None
        #: Whether this job was restored from the ledger by a restart.
        self.recovered = False
        #: Deterministic trace id of the job's specification — the same
        #: spec explored solo, batched, or under the service carries the
        #: same id, so traces and job events can be correlated.
        self.trace_id = compute_trace_id(spec)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str) -> None:
        if state not in JOB_STATES:
            raise ServiceError(f"unknown job state {state!r}")
        if self.terminal:
            raise ServiceError(
                f"job {self.job_id!r} is already {self.state}"
            )
        self.state = state

    def counters(self) -> Dict[str, Any]:
        """The progress counters journaled with each state record."""
        return {
            "slices": self.slices,
            "preemptions": self.preemptions,
            "evaluations": self.evaluations,
            "candidates": self.candidates,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id!r}, name={self.name!r}, "
            f"state={self.state!r}, priority={self.priority}, "
            f"slices={self.slices})"
        )
