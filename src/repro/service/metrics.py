"""Service-wide metrics: counters, gauges, histograms; JSON + Prometheus.

A tiny, dependency-free metrics registry in the Prometheus data model.
The exploration service registers its instruments here (queue depth,
wait/slice times, evaluation throughput, preemptions, retries, ...)
and exports two snapshot forms:

* :meth:`MetricsRegistry.as_dict` — JSON-ready, for dashboards and the
  benchmarks;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP``/``# TYPE`` comments, ``_bucket``/
  ``_sum``/``_count`` histogram series with cumulative ``le`` buckets),
  validated against the format grammar in
  ``tests/test_service_metrics.py``.

The registry is deliberately synchronous and lock-protected: the
service mutates metrics from its scheduler thread and exports from
any thread.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

#: Prometheus metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets (seconds): spans sub-millisecond slices
#: to multi-minute waits.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 300.0,
)


class MetricError(ReproError):
    """A metric was declared or used inconsistently."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(
            f"invalid metric name {name!r} (must match "
            f"{_NAME_RE.pattern})"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help_text: str) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self._value += amount

    def set_to(self, total: float) -> None:
        """Synchronise with an externally accumulated monotone total.

        Collectors that mirror another component's lifetime counters
        (warm-store hits, fleet heartbeats, ...) set the absolute value
        instead of computing deltas; monotonicity is still enforced.
        """
        total = float(total)
        if total < self._value:
            raise MetricError(
                f"counter {self.name!r} cannot decrease "
                f"(set_to({total!r}) < {self._value!r})"
            )
        self._value = total

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self._value}

    def render(self) -> List[str]:
        return [f"{self.name} {_format_value(self._value)}"]


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help_text: str) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self._value}

    def render(self) -> List[str]:
        return [f"{self.name} {_format_value(self._value)}"]


class Histogram:
    """A distribution with cumulative buckets, a sum and a count.

    Bucket bounds are upper-inclusive (`le`) as in Prometheus; the
    implicit ``+Inf`` bucket always equals the observation count.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "_raw_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help_text
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise MetricError(
                f"histogram {name!r} buckets must be non-empty and "
                f"sorted, got {bounds!r}"
            )
        self.bounds: Tuple[float, ...] = bounds
        # Per-bucket (non-cumulative) counts; ``bucket_counts`` exposes
        # the cumulative Prometheus view.
        self._raw_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        i = bisect_left(self.bounds, value)
        if i < len(self._raw_counts):
            self._raw_counts[i] += 1

    @property
    def bucket_counts(self) -> List[int]:
        """Cumulative per-bucket counts (the Prometheus ``le`` view)."""
        cumulative = []
        total = 0
        for raw in self._raw_counts:
            total += raw
            cumulative.append(total)
        return cumulative

    def restore(
        self,
        cumulative_counts: Sequence[int],
        total_sum: float,
        count: int,
    ) -> None:
        """Overwrite state from a snapshot (cumulative bucket counts).

        Used when reconstructing a registry from an exported document
        (``repro telemetry diff``) and when folding externally
        accumulated distributions (the phase profiler) into a registry.
        """
        if len(cumulative_counts) != len(self.bounds):
            raise MetricError(
                f"histogram {self.name!r} snapshot has "
                f"{len(cumulative_counts)} buckets, expected "
                f"{len(self.bounds)}"
            )
        previous = 0
        for i, cumulative in enumerate(cumulative_counts):
            if cumulative < previous:
                raise MetricError(
                    f"histogram {self.name!r} snapshot buckets are not "
                    f"cumulative"
                )
            self._raw_counts[i] = cumulative - previous
            previous = cumulative
        self.sum = float(total_sum)
        self.count = int(count)

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bucket bound).

        Good enough for operational percentiles (p50/p99 in the
        service bench); exact values require the raw samples.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        for bound, cumulative in zip(self.bounds, self.bucket_counts):
            if cumulative >= target:
                return bound
        return float("inf")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": {
                _format_value(bound): cumulative
                for bound, cumulative in zip(
                    self.bounds, self.bucket_counts
                )
            },
            "sum": self.sum,
            "count": self.count,
        }

    def render(self) -> List[str]:
        lines = []
        for bound, cumulative in zip(self.bounds, self.bucket_counts):
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}"
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_format_value(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without the dot)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """A named collection of instruments with snapshot exports."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, Any]" = {}
        self._lock = threading.Lock()

    def _register(self, metric):
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise MetricError(
                        f"metric {metric.name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get-or-create a counter."""
        return self._register(Counter(name, help_text))

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get-or-create a gauge."""
        return self._register(Gauge(name, help_text))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get-or-create a histogram."""
        return self._register(Histogram(name, help_text, buckets))

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of every instrument (sorted by name)."""
        with self._lock:
            return {
                name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)
            }

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    escaped = metric.help.replace("\\", "\\\\").replace(
                        "\n", "\\n"
                    )
                    lines.append(f"# HELP {name} {escaped}")
                lines.append(f"# TYPE {name} {metric.kind}")
                lines.extend(metric.render())
        return "\n".join(lines) + "\n"
