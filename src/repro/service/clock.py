"""Clocks of the exploration service (real and seeded-deterministic).

Every time-dependent scheduling decision — priority aging, wait-time
accounting, slice accounting — reads the service's
:class:`ServiceClock`, never ``time`` directly.  Production uses
:class:`MonotonicClock`; tests use :class:`ManualClock`, whose time
advances only when the scheduler charges it, so schedules (which job
runs which slice, in which order) are exactly reproducible and can be
asserted literally — see ``tests/test_service_scheduler.py``.
"""

from __future__ import annotations

import time


class ServiceClock:
    """The clock interface scheduling decisions are made against."""

    def now(self) -> float:
        """The current time in seconds (monotonic within a clock)."""
        raise NotImplementedError

    def advance(self, seconds: float) -> None:
        """Charge simulated elapsed time (no-op on real clocks)."""
        raise NotImplementedError


class MonotonicClock(ServiceClock):
    """Real wall-clock time (``time.monotonic``); ``advance`` is a
    no-op because real time advances by itself."""

    __slots__ = ()

    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> None:
        pass


class ManualClock(ServiceClock):
    """A deterministic clock that moves only when told to.

    The service charges one virtual slice duration per scheduling
    decision, so under a manual clock wait times, aging and slice
    accounting are exact integers of the chosen granularity —
    independent of machine speed, pool geometry and OS scheduling.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards: {seconds!r}")
        self._now += seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManualClock(now={self._now!r})"
