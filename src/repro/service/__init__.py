"""The exploration service: multi-job queue, scheduler, observation.

An in-process service (:class:`ExplorationService`) that accepts many
named exploration jobs, runs them over one shared bounded worker pool
under a deterministic stride scheduler with checkpoint-preemption
time-slicing, and exposes streaming per-job events plus a service-wide
metrics registry (JSON + Prometheus text).  The durable substrate —
job ledger, spool, checkpoints, event files — is
:mod:`repro.io.job_io`; see ``docs/service.md`` for the design.
"""

from .clock import ManualClock, MonotonicClock, ServiceClock
from .events import SERVICE_EVENT_KINDS, EventBus, Subscription
from .job import SUBMIT_OPTIONS, Job, ServiceError, validate_options
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .scheduler import STRIDE_SCALE, SchedulerError, StrideScheduler
from .service import (
    CHECKPOINT_EVERY_DEFAULT,
    PROGRESS_EVERY_DEFAULT,
    SLICE_EVALUATIONS_DEFAULT,
    ExplorationService,
)

__all__ = [
    "CHECKPOINT_EVERY_DEFAULT",
    "Counter",
    "EventBus",
    "ExplorationService",
    "Gauge",
    "Histogram",
    "Job",
    "ManualClock",
    "MetricError",
    "MetricsRegistry",
    "MonotonicClock",
    "PROGRESS_EVERY_DEFAULT",
    "SERVICE_EVENT_KINDS",
    "SLICE_EVALUATIONS_DEFAULT",
    "STRIDE_SCALE",
    "SUBMIT_OPTIONS",
    "SchedulerError",
    "ServiceClock",
    "ServiceError",
    "StrideScheduler",
    "Subscription",
    "validate_options",
]
