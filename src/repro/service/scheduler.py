"""Deterministic fair-share priority scheduling (stride + aging).

The service multiplexes many exploration jobs over one bounded worker
pool by time-slicing; this module decides *which job runs the next
slice*.  The policy is stride scheduling — the deterministic
counterpart of lottery scheduling — with optional priority aging:

* every runnable job holds a *pass* value; the scheduler always picks
  the job with the smallest pass (ties broken by submission sequence,
  so schedules are total orders);
* charging a slice advances the job's pass by ``STRIDE_SCALE /
  priority`` — over time each job receives pool time proportional to
  its priority (fair share), and a job that waits keeps its low pass
  and eventually wins (no starvation);
* with ``aging_rate > 0`` the *effective* pass sinks further the
  longer a job has waited since its last slice, boosting long-waiting
  low-priority jobs ahead of their proportional turn.

Every input is integer-or-clock-derived and the clock is injectable
(:mod:`repro.service.clock`), so under a :class:`ManualClock` the full
schedule of a job mix is a pure function of (priorities, submission
order, aging rate) — the unit tests assert exact schedules literally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ReproError
from .clock import ServiceClock

#: Pass increment of a priority-1 job per charged slice.  Large enough
#: that fractional strides (1/priority) stay exact in double precision
#: for every realistic priority.
STRIDE_SCALE = float(1 << 16)


class SchedulerError(ReproError):
    """A scheduling request referenced an unknown job or bad priority."""


class _Entry:
    __slots__ = ("job_id", "priority", "seq", "pass_value", "wait_since")

    def __init__(
        self,
        job_id: str,
        priority: float,
        seq: int,
        pass_value: float,
        wait_since: float,
    ) -> None:
        self.job_id = job_id
        self.priority = priority
        self.seq = seq
        self.pass_value = pass_value
        self.wait_since = wait_since


class StrideScheduler:
    """Deterministic stride scheduler over runnable job ids."""

    def __init__(
        self, clock: ServiceClock, aging_rate: float = 0.0
    ) -> None:
        if aging_rate < 0:
            raise SchedulerError(
                f"aging_rate must be >= 0, got {aging_rate!r}"
            )
        self._clock = clock
        self.aging_rate = aging_rate
        self._entries: Dict[str, _Entry] = {}
        self._seq = 0

    def add(self, job_id: str, priority: float = 1.0) -> None:
        """Make a job runnable.

        A newcomer starts at the minimum pass currently in the run
        queue (not zero): it competes fairly from now on instead of
        monopolising the pool until it catches up on history.
        """
        if priority <= 0:
            raise SchedulerError(
                f"priority must be > 0, got {priority!r}"
            )
        if job_id in self._entries:
            raise SchedulerError(f"job {job_id!r} already scheduled")
        floor = min(
            (e.pass_value for e in self._entries.values()), default=0.0
        )
        self._entries[job_id] = _Entry(
            job_id, priority, self._seq, floor, self._clock.now()
        )
        self._seq += 1

    def remove(self, job_id: str) -> None:
        if job_id not in self._entries:
            raise SchedulerError(f"job {job_id!r} is not scheduled")
        del self._entries[job_id]

    def _effective_pass(self, entry: _Entry, now: float) -> float:
        return entry.pass_value - self.aging_rate * max(
            0.0, now - entry.wait_since
        )

    def pick(self) -> Optional[str]:
        """The job that should run the next slice (``None`` when idle).

        Picking does not consume anything; call :meth:`charge` after
        the slice ran (or :meth:`remove` when the job finished).
        """
        if not self._entries:
            return None
        now = self._clock.now()
        best = min(
            self._entries.values(),
            key=lambda e: (self._effective_pass(e, now), e.seq),
        )
        return best.job_id

    def charge(self, job_id: str, slices: float = 1.0) -> None:
        """Account ``slices`` of pool time against a job."""
        entry = self._entries.get(job_id)
        if entry is None:
            raise SchedulerError(f"job {job_id!r} is not scheduled")
        if slices < 0:
            raise SchedulerError(f"slices must be >= 0, got {slices!r}")
        entry.pass_value += slices * STRIDE_SCALE / entry.priority
        entry.wait_since = self._clock.now()

    def waiting_since(self, job_id: str) -> float:
        """When the job last ran (or was enqueued)."""
        entry = self._entries.get(job_id)
        if entry is None:
            raise SchedulerError(f"job {job_id!r} is not scheduled")
        return entry.wait_since

    def job_ids(self) -> List[str]:
        """Runnable job ids in submission order."""
        return [
            e.job_id
            for e in sorted(self._entries.values(), key=lambda e: e.seq)
        ]

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)
