"""The in-process exploration service: many jobs, one worker pool.

An :class:`ExplorationService` owns a service directory (the durable
job ledger and per-job checkpoints — see :mod:`repro.io.job_io`), a
shared bounded :class:`~repro.parallel.pool.WorkerPool`, a
deterministic :class:`~repro.service.scheduler.StrideScheduler`, an
:class:`~repro.service.events.EventBus` and a
:class:`~repro.service.metrics.MetricsRegistry`, and multiplexes any
number of named exploration jobs over them by time-slicing:

* :meth:`submit` journals a job (spec + explore options + priority)
  and makes it runnable;
* :meth:`step` runs exactly one scheduling decision — pick the
  smallest-pass job, run one slice of its exploration bounded by
  ``slice_evaluations`` full candidate evaluations, then either
  complete the job or *preempt* it by letting the PR-2 checkpoint
  machinery journal its state (the next slice resumes
  fingerprint-identically via
  :func:`repro.resilience.resume_explore`);
* :meth:`run` steps until the queue drains (ingesting spooled
  ``repro submit`` files between steps).

Because a slice is "resume from the journal, stop on a cumulative
evaluation budget", preemption needs no cooperation from the explore
loop and a ``kill -9`` between (or during) slices is indistinguishable
from a preemption: a restarted service re-reads its ledger, re-queues
every non-terminal job and resumes each from its checkpoint — the
differential tests assert the resulting fronts are identical to solo
uninterrupted ``explore()`` runs.

Determinism: every scheduling input (aging, wait times, slice
accounting) reads the injectable service clock; under a
:class:`~repro.service.clock.ManualClock` the full schedule is a pure
function of the job mix, asserted literally in the tests.
"""

from __future__ import annotations

import json
import logging
import os
import re
import time
from typing import Any, Dict, List, Optional

from ..core.result import ExplorationResult
from ..errors import CheckpointError, HangError, OverloadedError, ReproError
from ..io import job_io
from ..io.json_io import spec_from_dict, spec_to_dict
from ..io.result_io import dump_result, load_result
from ..parallel.batched import explore_batched
from ..parallel.pool import WorkerPool
from ..resilience.checkpoint import resume_explore
from ..resilience.journal import JournalWriter, read_journal
from ..spec import SpecificationGraph
from ..supervision.admission import AdmissionController
from ..supervision.watchdog import run_bounded
from .clock import ManualClock, MonotonicClock, ServiceClock
from .events import EventBus, Subscription
from ..trace import Tracer, bridge_trace_metrics, write_trace
from .job import Job, ServiceError, validate_options
from .metrics import MetricsRegistry
from .scheduler import StrideScheduler

logger = logging.getLogger(__name__)

#: Default slice budget: full candidate evaluations per scheduling
#: decision.  Small enough that a 2-worker pool interleaves many jobs
#: responsively, large enough to amortise the checkpoint fsync.
SLICE_EVALUATIONS_DEFAULT = 32

#: Default checkpoint cadence (replayed candidates) inside a slice —
#: denser than the explore default because slices are short and a kill
#: should lose little work.
CHECKPOINT_EVERY_DEFAULT = 32

#: Default cadence (replayed candidates) of per-job ``progress`` events.
PROGRESS_EVERY_DEFAULT = 64


class ExplorationService:
    """Schedules many named EXPLORE jobs over one shared worker pool."""

    def __init__(
        self,
        directory: str,
        workers: Optional[int] = None,
        pool_kind: str = "thread",
        slice_evaluations: int = SLICE_EVALUATIONS_DEFAULT,
        checkpoint_every: int = CHECKPOINT_EVERY_DEFAULT,
        progress_every: Optional[int] = PROGRESS_EVERY_DEFAULT,
        clock: Optional[ServiceClock] = None,
        aging_rate: float = 0.0,
        max_queued: Optional[int] = None,
        overload_policy: str = "reject",
        slice_timeout: Optional[float] = None,
        warm_store: Optional[str] = "auto",
    ) -> None:
        if slice_evaluations < 1:
            raise ServiceError(
                f"slice_evaluations must be a positive integer, "
                f"got {slice_evaluations!r}"
            )
        if slice_timeout is not None and slice_timeout <= 0:
            raise ServiceError(
                f"slice_timeout must be > 0 seconds (or None for "
                f"unsupervised slices), got {slice_timeout!r}"
            )
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        os.makedirs(job_io.events_dir(directory), exist_ok=True)
        #: Warm-start store shared by every job on this host
        #: (:mod:`repro.store`): ``"auto"`` (default) places it at
        #: ``<directory>/warmstore``, any other string is used as the
        #: store directory, ``None`` disables persistence.  Jobs on the
        #: same specification structure share one content-addressed
        #: namespace, so tenant A's completed exploration warms tenant
        #: B's — with byte-identical results either way.
        self.warm_store: Optional[str] = (
            os.path.join(directory, "warmstore")
            if warm_store == "auto"
            else warm_store
        )
        self.slice_evaluations = slice_evaluations
        self.checkpoint_every = checkpoint_every
        self.progress_every = progress_every
        #: Admission control: the runnable queue is bounded at
        #: ``max_queued`` with an explicit overload policy ("reject"
        #: raises :class:`~repro.errors.OverloadedError`; "shed"
        #: cancels the lowest-priority queued job with a journaled
        #: ``shed`` event).  ``None`` keeps the historical unbounded
        #: queue.
        self.admission = AdmissionController(max_queued, overload_policy)
        #: Wall-clock watchdog budget per slice (``None`` = off): a
        #: slice that exceeds it is preempted with a typed
        #: :class:`~repro.errors.HangError` and the job quarantined
        #: (failed, checkpoint kept) instead of wedging the scheduler.
        self.slice_timeout = slice_timeout
        self.clock: ServiceClock = clock if clock is not None else MonotonicClock()
        self.pool = WorkerPool(workers=workers, kind=pool_kind)
        self.bus = EventBus()
        # The unified telemetry plane (imported lazily: repro.telemetry
        # builds on repro.service.metrics, so a module-level import
        # here would be circular).  ``self.metrics`` keeps its historic
        # name/API; it is now a collector-refreshing MetricRegistry
        # carrying the service instruments, breaker gauges, trace
        # bridge, process resources, phase histograms and — when a
        # warm store is configured — the store's lifetime counters.
        from ..telemetry import MetricRegistry, Telemetry

        self.telemetry = Telemetry(registry=MetricRegistry())
        self.metrics = self.telemetry.registry
        self.scheduler = StrideScheduler(self.clock, aging_rate)
        self.jobs: Dict[str, Job] = {}
        self._seq = 0
        self._event_files: Dict[str, Any] = {}
        self._stats_seen: Dict[str, Dict[str, float]] = {}
        self._tracers: Dict[str, Tracer] = {}
        self._design_space: Dict[str, int] = {}
        self._runtime: Dict[str, float] = {}
        self._slice_started: Dict[str, float] = {}
        self._instruments()
        if self.warm_store:
            from ..store import open_store
            from ..telemetry import store_collector

            # ``open_store`` interns per absolute path, so this is the
            # same object the compiled evaluators attach to — its
            # lifetime counters are the true totals behind the
            # per-slice delta counters (``repro_warm_*_total``).
            self.metrics.register_collector(
                store_collector(open_store(self.warm_store))
            )
        ledger = job_io.ledger_path(directory)
        if os.path.exists(ledger):
            recovered = job_io.read_job_ledger(ledger)
            # A kill mid-append can leave a torn final line; chop it so
            # new records start on a clean boundary.
            _, valid_length = read_journal(ledger)
            self._ledger = JournalWriter(ledger, truncate_to=valid_length)
        else:
            recovered = {}
            self._ledger = JournalWriter(ledger, fresh=True)
            self._ledger.append("header", job_io.ledger_header(), sync=True)
        self._recover(recovered)

    # --- metrics instruments -------------------------------------------

    def _instruments(self) -> None:
        m = self.metrics
        self.m_submitted = m.counter(
            "repro_jobs_submitted_total", "Jobs accepted by the service"
        )
        self.m_completed = m.counter(
            "repro_jobs_completed_total", "Jobs finished successfully"
        )
        self.m_failed = m.counter(
            "repro_jobs_failed_total", "Jobs ended by an error"
        )
        self.m_cancelled = m.counter(
            "repro_jobs_cancelled_total", "Jobs cancelled before completion"
        )
        self.m_recovered = m.counter(
            "repro_jobs_recovered_total",
            "Live jobs re-queued from the ledger after a restart",
        )
        self.m_rejected = m.counter(
            "repro_jobs_rejected_total",
            "Submissions refused because the admission queue was full",
        )
        self.m_shed = m.counter(
            "repro_jobs_shed_total",
            "Queued jobs shed (cancelled) to admit higher-priority work",
        )
        self.m_hangs = m.counter(
            "repro_hangs_total",
            "Slices preempted by the watchdog (job quarantined)",
        )
        self.m_queue_depth = m.gauge(
            "repro_queue_depth", "Runnable jobs in the scheduler"
        )
        self.m_running = m.gauge(
            "repro_jobs_running", "Jobs currently holding the pool (0/1)"
        )
        self.m_slices = m.counter(
            "repro_slices_total", "Scheduling slices executed"
        )
        self.m_preemptions = m.counter(
            "repro_preemptions_total",
            "Slices ended by checkpoint-preemption (job re-queued)",
        )
        self.m_evaluations = m.counter(
            "repro_evaluations_total",
            "Full candidate evaluations performed across all jobs",
        )
        self.m_checkpoints = m.counter(
            "repro_checkpoints_total", "Checkpoint records journaled"
        )
        self.m_pool_retries = m.counter(
            "repro_pool_retries_total",
            "Worker jobs retried after transient pool failures",
        )
        self.m_quarantined = m.counter(
            "repro_quarantined_total",
            "Candidates quarantined after repeated worker failures",
        )
        self.m_wait = m.histogram(
            "repro_wait_seconds",
            "Queue wait time between slices of a job",
        )
        self.m_slice_time = m.histogram(
            "repro_slice_seconds", "Wall-clock duration of one slice"
        )
        self.m_eval_rate = m.gauge(
            "repro_evaluations_per_second",
            "Evaluation throughput of the most recent slice",
        )
        self.m_warm_hits = m.counter(
            "repro_warm_hits_total",
            "Binding verdicts replayed from the warm-start store",
        )
        self.m_warm_misses = m.counter(
            "repro_warm_misses_total",
            "Warm-store lookups that fell through to a cold solve",
        )
        self.m_warm_corruptions = m.counter(
            "repro_warm_corruptions_total",
            "Warm-store entries rejected as corrupt (re-solved cold)",
        )

    # --- durable records and events ------------------------------------

    def _journal_state(self, job: Job, sync: bool = False, **fields) -> None:
        payload = job_io.state_payload(
            job.job_id, job.state, **{**job.counters(), **fields}
        )
        self._ledger.append("state", payload, sync=sync)

    def _emit(self, job_id: str, kind: str, **fields: Any) -> None:
        event = {"kind": kind, "job": job_id, "t": self.clock.now()}
        job = self.jobs.get(job_id)
        if job is not None:
            event["trace"] = job.trace_id
        event.update(fields)
        self.bus.publish(event)
        handle = self._event_files.get(job_id)
        if handle is None:
            handle = open(
                job_io.events_path(self.directory, job_id),
                "a",
                encoding="utf-8",
            )
            self._event_files[job_id] = handle
        handle.write(json.dumps(event, sort_keys=True) + "\n")
        handle.flush()

    # --- submission and recovery ---------------------------------------

    def _next_job_id(self) -> str:
        job_id = f"j{self._seq:04d}"
        self._seq += 1
        return job_id

    def submit(
        self,
        spec: SpecificationGraph,
        name: Optional[str] = None,
        priority: float = 1.0,
        options: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Accept a job: journal it durably and make it runnable.

        Submissions pass admission control first: when the runnable
        queue holds ``max_queued`` jobs, the overload policy either
        refuses this submission (:class:`~repro.errors.OverloadedError`,
        CLI exit code 4) or sheds the lowest-priority queued job to
        make room.  Either way overload is loud — typed errors,
        ``shed`` events, and the ``repro_jobs_rejected_total`` /
        ``repro_jobs_shed_total`` counters.
        """
        if priority <= 0:
            raise ServiceError(f"priority must be > 0, got {priority!r}")
        options = validate_options(options)
        queued = [
            (
                job_id,
                self.jobs[job_id].priority,
                self.jobs[job_id].submitted_at,
            )
            for job_id in self.scheduler.job_ids()
        ]
        try:
            decision = self.admission.admit(queued, priority)
        except OverloadedError:
            self.m_rejected.inc()
            raise
        if decision.victim is not None:
            self._shed(decision.victim, priority)
        job_id = self._next_job_id()
        job = Job(
            job_id,
            name or spec.name,
            spec,
            options,
            priority,
            self.clock.now(),
        )
        self._ledger.append(
            "job",
            job_io.job_payload(
                job_id,
                job.name,
                priority,
                spec_to_dict(spec),
                options,
                job.submitted_at,
            ),
            sync=True,
        )
        self.jobs[job_id] = job
        self.scheduler.add(job_id, priority)
        self.m_submitted.inc()
        self.m_queue_depth.set(len(self.scheduler))
        logger.info(
            "job %s (%s) submitted: priority=%g trace=%s",
            job_id,
            job.name,
            priority,
            options.get("trace", "off"),
        )
        self._emit(
            job_id,
            "submitted",
            name=job.name,
            priority=priority,
            spec=spec.name,
        )
        return job

    def ingest_spool(self) -> List[Job]:
        """Adopt every spooled ``repro submit`` file into the ledger."""
        adopted = []
        for path, document in job_io.read_submissions(self.directory):
            spec = spec_from_dict(document["spec"])
            job = self.submit(
                spec,
                name=document.get("name"),
                priority=float(document.get("priority", 1.0)),
                options=document.get("options"),
            )
            adopted.append(job)
            os.unlink(path)
        return adopted

    def _recover(self, entries: Dict[str, job_io.JobLedgerEntry]) -> None:
        """Rebuild jobs from the ledger; re-queue every live one."""
        for entry in entries.values():
            spec = spec_from_dict(entry.spec_document)
            job = Job(
                entry.job_id,
                entry.name,
                spec,
                entry.options,
                entry.priority,
                entry.submitted_at,
            )
            job.state = entry.state
            job.slices = int(entry.fields.get("slices", 0))
            job.preemptions = int(entry.fields.get("preemptions", 0))
            job.evaluations = int(entry.fields.get("evaluations", 0))
            job.candidates = int(entry.fields.get("candidates", 0))
            job.error = entry.fields.get("error")
            self.jobs[entry.job_id] = job
            match = re.fullmatch(r"j(\d+)", entry.job_id)
            if match:
                self._seq = max(self._seq, int(match.group(1)) + 1)
            if job.state in job_io.LIVE_STATES:
                # A job caught mid-run by the crash is simply queued
                # again; its checkpoint journal carries the exploration
                # state and the next slice resumes it.
                job.state = "queued"
                job.recovered = True
                self.scheduler.add(entry.job_id, entry.priority)
                logger.info(
                    "job %s (%s) recovered from the ledger: "
                    "%d slice(s), %d evaluation(s)",
                    entry.job_id,
                    job.name,
                    job.slices,
                    job.evaluations,
                )
                self.m_recovered.inc()
                self._emit(
                    entry.job_id,
                    "recovered",
                    name=job.name,
                    slices=job.slices,
                    evaluations=job.evaluations,
                )
        self.m_queue_depth.set(len(self.scheduler))

    # --- queries --------------------------------------------------------

    def job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}") from None

    def list_jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        return [self.jobs[k] for k in sorted(self.jobs)]

    def subscribe(
        self, job_id: Optional[str] = None, kinds=None
    ) -> Subscription:
        """Stream service events (optionally one job's / some kinds)."""
        return self.bus.subscribe(job_id=job_id, kinds=kinds)

    def result(self, job_id: str) -> ExplorationResult:
        """A completed job's result (reloaded from disk after a
        restart)."""
        job = self.job(job_id)
        if job.result is None and job.state == "completed":
            job.result = load_result(
                job_io.result_path(self.directory, job_id)
            )
        if job.result is None:
            raise ServiceError(
                f"job {job_id!r} has no result (state {job.state!r})"
            )
        return job.result

    def _shed(self, job_id: str, admitted_priority: float) -> None:
        """Shed one queued job to make room for a higher-priority one.

        The victim ends ``cancelled`` with a journaled ``shed`` event;
        its checkpoint journal stays on disk, so resubmitting the same
        specification resumes where the shed job left off.
        """
        job = self.job(job_id)
        job.transition("cancelled")
        job.finished_at = self.clock.now()
        if job_id in self.scheduler:
            self.scheduler.remove(job_id)
        self._journal_state(job, sync=True, reason="shed")
        self.m_shed.inc()
        self.m_queue_depth.set(len(self.scheduler))
        logger.warning(
            "job %s (%s) shed: queue full, displaced by a "
            "priority-%g submission",
            job_id, job.name, admitted_priority,
        )
        self._emit(
            job_id,
            "shed",
            priority=job.priority,
            displaced_by_priority=admitted_priority,
        )

    def cancel(self, job_id: str) -> None:
        """Cancel a queued job (its checkpoint remains on disk)."""
        job = self.job(job_id)
        if job.terminal:
            raise ServiceError(f"job {job_id!r} is already {job.state}")
        job.transition("cancelled")
        job.finished_at = self.clock.now()
        if job_id in self.scheduler:
            self.scheduler.remove(job_id)
        self._journal_state(job, sync=True)
        self.m_cancelled.inc()
        self.m_queue_depth.set(len(self.scheduler))
        self._emit(job_id, "cancelled")

    # --- the scheduling step -------------------------------------------

    def _progress_forwarder(self, job: Job):
        """Adapt explore-progress events into job events + metrics."""

        def forward(event: Dict[str, Any]) -> None:
            kind = event.get("kind")
            if kind == "explore_start":
                self._design_space[job.job_id] = event["design_space_size"]
            elif kind == "incumbent":
                self._emit(
                    job.job_id,
                    "incumbent",
                    cost=event["cost"],
                    flexibility=event["flexibility"],
                    units=event["units"],
                    candidates=event["candidates"],
                    evaluations=event["evaluations"],
                )
            elif kind == "progress":
                fields = {
                    "candidates": event["candidates"],
                    "evaluations": event["evaluations"],
                    "feasible": event["feasible"],
                    "flexibility": event["flexibility"],
                }
                fields["eta_seconds"] = self._eta(
                    job.job_id, event["candidates"]
                )
                self._emit(job.job_id, "progress", **fields)

        return forward

    def _eta(self, job_id: str, candidates: int) -> Optional[float]:
        """Crude remaining-time estimate from enumeration progress."""
        total = self._design_space.get(job_id)
        elapsed = self._runtime.get(job_id, 0.0)
        slice_started = self._slice_started.get(job_id)
        if slice_started is not None:
            elapsed += time.perf_counter() - slice_started
        if not total or not candidates or elapsed <= 0.0:
            return None
        rate = candidates / elapsed
        return round((total - candidates) / rate, 6)

    def _tracer_for(self, job: Job) -> Optional[Tracer]:
        """The job's per-service-lifetime tracer (``None`` untraced).

        ``record_truncation`` is off so preemptions leave no logical
        mark: a job sliced N times accumulates exactly the records of
        one uninterrupted run.
        """
        level = job.options.get("trace")
        if level is None:
            return None
        tracer = self._tracers.get(job.job_id)
        if tracer is None:
            tracer = Tracer(
                level=level, clock=self.clock, trace_id=job.trace_id
            )
            tracer.record_truncation = False
            self._tracers[job.job_id] = tracer
        return tracer

    def _run_slice(self, job: Job, budget: int) -> ExplorationResult:
        """One checkpointed slice of a job, bounded by ``budget``
        cumulative evaluations."""
        checkpoint = job_io.checkpoint_path(self.directory, job.job_id)
        forward = self._progress_forwarder(job)
        tracer = self._tracer_for(job)
        if os.path.exists(checkpoint):
            try:
                return resume_explore(
                    checkpoint,
                    pool=self.pool,
                    progress=forward,
                    progress_every=self.progress_every,
                    max_evaluations=budget,
                    tracer=tracer,
                    telemetry=self.telemetry,
                    # The store is host configuration, like the pool:
                    # the service's setting overrides the journaled
                    # path (results are store-independent).
                    warm_store=self.warm_store,
                )
            except CheckpointError:
                # Torn beyond use (e.g. killed before the header hit
                # the disk): start over — the fresh run rewrites it.
                pass
        options = {k: v for k, v in job.options.items() if k != "trace"}
        return explore_batched(
            job.spec,
            parallel="serial",
            pool=self.pool,
            checkpoint=checkpoint,
            checkpoint_every=self.checkpoint_every,
            max_evaluations=budget,
            progress=forward,
            progress_every=self.progress_every,
            tracer=tracer,
            telemetry=self.telemetry,
            warm_store=self.warm_store,
            **options,
        )

    def step(self) -> Optional[str]:
        """Run one scheduling decision; returns the job id, or ``None``
        when the queue is idle."""
        job_id = self.scheduler.pick()
        if job_id is None:
            return None
        job = self.jobs[job_id]
        now = self.clock.now()
        wait = max(0.0, now - self.scheduler.waiting_since(job_id))
        self.m_wait.observe(wait)
        first_slice = job.slices == 0 and not job.recovered
        if job.state == "queued":
            job.transition("running")
            if first_slice:
                job.started_at = now
                self._journal_state(job)
        self.m_running.set(1)
        self._emit(
            job_id,
            "slice_start",
            slice=job.slices + 1,
            wait_seconds=round(wait, 9),
            budget=self.slice_evaluations,
        )
        started = time.perf_counter()
        self._slice_started[job_id] = started
        budget = job.evaluations + self.slice_evaluations
        try:
            result = run_bounded(
                lambda: self._run_slice(job, budget),
                self.slice_timeout,
                name=f"job {job_id} slice {job.slices + 1}",
            )
        except HangError as error:
            # A wedged evaluation: the watchdog preempted the slice
            # (typed, loud) and the job is quarantined — its checkpoint
            # survives for a resubmission to resume from.
            self.m_hangs.inc()
            self._emit(
                job_id,
                "hung",
                slice=job.slices + 1,
                timeout_seconds=self.slice_timeout,
                error=str(error),
            )
            self._finish_failed(job, error)
            return job_id
        except ReproError as error:
            self._finish_failed(job, error)
            return job_id
        finally:
            elapsed = time.perf_counter() - started
            self._slice_started.pop(job_id, None)
            self._runtime[job_id] = self._runtime.get(job_id, 0.0) + elapsed
            self.m_running.set(0)
            self.m_slices.inc()
            self.m_slice_time.observe(elapsed)
            self.clock.advance(1.0)  # one virtual slice on manual clocks
        self._charge_stats(job, result, elapsed)
        tracer = self._tracers.get(job_id)
        if tracer is not None:
            # Rewrite after every slice so the on-disk trace always
            # reflects the job's cumulative logical history.
            write_trace(
                tracer, job_io.trace_path(self.directory, job_id)
            )
        job.slices += 1
        self.scheduler.charge(job_id)
        if result.completed:
            self._finish_completed(job, result)
        else:
            job.preemptions += 1
            self.m_preemptions.inc()
            job.state = "queued"
            # Journal the counters so a restart budgets resumed slices
            # correctly (the checkpoint holds the exploration state).
            self._journal_state(job)
            self._emit(
                job_id,
                "preempted",
                evaluations=job.evaluations,
                candidates=job.candidates,
                reason=result.gap.reason if result.gap else None,
                flexibility=(
                    result.gap.achieved_flexibility if result.gap else 0.0
                ),
            )
        return job_id

    def _charge_stats(
        self, job: Job, result: ExplorationResult, elapsed: float
    ) -> None:
        """Move per-job stat deltas into the service-wide metrics."""
        stats = result.stats.as_dict()
        seen = self._stats_seen.setdefault(job.job_id, {})

        def delta(name: str) -> float:
            fresh = float(stats.get(name, 0.0)) - seen.get(name, 0.0)
            seen[name] = float(stats.get(name, 0.0))
            return max(0.0, fresh)

        evaluations = delta("estimate_exceeded")
        self.m_evaluations.inc(evaluations)
        self.m_checkpoints.inc(delta("checkpoints_written"))
        self.m_pool_retries.inc(delta("pool_retries"))
        self.m_quarantined.inc(delta("quarantined"))
        # Cache counters are per-slice deltas already (they are not
        # journaled across preemptions), so they are charged directly.
        cache = result.stats.cache_dict()
        self.m_warm_hits.inc(cache["warm_hits"])
        self.m_warm_misses.inc(cache["warm_misses"])
        self.m_warm_corruptions.inc(cache["warm_corruptions"])
        if elapsed > 0:
            self.m_eval_rate.set(evaluations / elapsed)
        job.evaluations = int(stats.get("estimate_exceeded", 0))
        job.candidates = int(stats.get("candidates_enumerated", 0))
        job.checkpoints = int(stats.get("checkpoints_written", 0))

    def _finish_completed(
        self, job: Job, result: ExplorationResult
    ) -> None:
        job.transition("completed")
        job.result = result
        job.finished_at = self.clock.now()
        dump_result(
            result, job_io.result_path(self.directory, job.job_id)
        )
        self._journal_state(
            job,
            sync=True,
            front=[[p.cost, p.flexibility] for p in result.points],
        )
        self.scheduler.remove(job.job_id)
        self.m_completed.inc()
        self.m_queue_depth.set(len(self.scheduler))
        tracer = self._tracers.get(job.job_id)
        if tracer is not None:
            bridge_trace_metrics(tracer, self.metrics)
        logger.info(
            "job %s (%s) completed: %d point(s), %d evaluation(s), "
            "%d slice(s)",
            job.job_id,
            job.name,
            len(result.points),
            job.evaluations,
            job.slices,
        )
        self._emit(
            job.job_id,
            "completed",
            front=[[p.cost, p.flexibility] for p in result.points],
            evaluations=job.evaluations,
            slices=job.slices,
            preemptions=job.preemptions,
        )

    def _finish_failed(self, job: Job, error: BaseException) -> None:
        job.transition("failed")
        job.error = repr(error)
        job.finished_at = self.clock.now()
        self._journal_state(job, sync=True, error=job.error)
        logger.warning(
            "job %s (%s) failed: %s", job.job_id, job.name, job.error
        )
        self.scheduler.remove(job.job_id)
        self.m_failed.inc()
        self.m_queue_depth.set(len(self.scheduler))
        self._emit(job.job_id, "failed", error=job.error)

    # --- the service loop ----------------------------------------------

    def run(
        self,
        max_slices: Optional[int] = None,
        poll_seconds: float = 0.0,
    ) -> int:
        """Step until the queue drains; returns the slice count.

        ``max_slices`` bounds the work (the kill-and-restart tests use
        it to stop mid-run); ``poll_seconds > 0`` keeps the service
        alive that much longer when idle, re-scanning the spool for
        late submissions before giving up.
        """
        executed = 0
        while max_slices is None or executed < max_slices:
            self.ingest_spool()
            if self.step() is None:
                if poll_seconds > 0:
                    time.sleep(poll_seconds)
                    if self.ingest_spool():
                        continue
                break
            executed += 1
        self.export_metrics()
        return executed

    # --- exports and shutdown ------------------------------------------

    def export_metrics(self) -> None:
        """Write the JSON and Prometheus metric snapshots into the
        service directory."""
        with open(
            job_io.metrics_json_path(self.directory), "w", encoding="utf-8"
        ) as handle:
            json.dump(self.metrics.as_dict(), handle, indent=2, sort_keys=True)
        with open(
            job_io.metrics_prometheus_path(self.directory),
            "w",
            encoding="utf-8",
        ) as handle:
            handle.write(self.metrics.to_prometheus())

    def close(self) -> None:
        """Shut down: export metrics, close the ledger, event files,
        bus, and the shared pool.  Idempotent."""
        try:
            self.export_metrics()
        except OSError:  # pragma: no cover - directory vanished
            pass
        self._ledger.close()
        for handle in self._event_files.values():
            handle.close()
        self._event_files.clear()
        self.bus.close()
        self.pool.shutdown()

    def __enter__(self) -> "ExplorationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "CHECKPOINT_EVERY_DEFAULT",
    "ExplorationService",
    "ManualClock",
    "PROGRESS_EVERY_DEFAULT",
    "SLICE_EVALUATIONS_DEFAULT",
]
