"""Exception hierarchy for the ``repro`` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish model errors from solver errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ModelError(ReproError):
    """A hierarchical graph or specification graph is malformed.

    Raised while *building* models, e.g. duplicate names, edges that
    reference unknown nodes, or port mappings onto undeclared ports.
    """


class ValidationError(ModelError):
    """A completed model failed structural validation."""


class ActivationError(ReproError):
    """A hierarchical activation violates the activation rules 1-4."""


class BindingError(ReproError):
    """A binding request is malformed or provably infeasible."""


class InfeasibleError(ReproError):
    """No feasible implementation exists for the requested activation."""


class TimingError(ReproError):
    """A timing specification is malformed (e.g. non-positive period)."""


class ExplorationError(ReproError):
    """The design-space exploration was configured inconsistently."""


class SerializationError(ReproError):
    """A document could not be parsed into a model (or vice versa)."""


class WorkerError(ReproError):
    """A candidate-evaluation worker failed."""


class TransientWorkerError(WorkerError):
    """A worker failure that is expected to succeed on retry.

    Raised (or injected by the fault harness) for flaky-infrastructure
    conditions: lost pool messages, spurious resource exhaustion,
    worker preemption.  The batched explorer retries these with
    exponential backoff before falling back to inline evaluation.
    """


class PermanentWorkerError(WorkerError):
    """A worker failure that retrying cannot fix.

    The batched explorer quarantines the candidate (recorded in the
    run statistics, never silently dropped) and evaluates it inline as
    a last resort.
    """


class CheckpointError(ReproError):
    """A checkpoint journal is missing, corrupt, or inconsistent."""


class TraceError(ReproError):
    """A trace was configured inconsistently or failed validation."""


class ProtocolError(ReproError):
    """A distributed worker message is truncated, garbled or has an
    unsupported format/version.

    The shard-worker wire protocol (:mod:`repro.distributed.protocol`)
    rejects every malformed frame loudly with this error — corruption
    is never silently dropped, mirroring the CRC-journal contract of
    :mod:`repro.resilience.journal`.
    """


class HangError(ReproError):
    """A supervised activity stopped making observable progress.

    Raised by the supervision plane (:mod:`repro.supervision`) when a
    watchdog's heartbeat timeout elapses: a shard worker that accepted
    a run but stopped heartbeating, or a service job slice that wedged
    inside an evaluation.  A hang is distinct from a *death*
    (``ConnectionError`` — the peer is gone) and from mere slowness
    (heartbeats still arriving): the activity is alive but not
    progressing, so the supervisor preempts it rather than waiting
    forever.
    """


class OverloadedError(ReproError):
    """The service declined work because its admission queue is full.

    Raised by :class:`repro.service.ExplorationService` under the
    ``"reject"`` overload policy when a submission arrives with
    ``max_queued`` jobs already queued.  Overload is a visible,
    recoverable state — the caller backs off and resubmits — never
    unbounded queue growth.  The CLI maps it to exit code 4.
    """
