"""The distributed-EXPLORE coordinator: partition, dispatch, merge.

:func:`explore_sharded` is the one-call front door.  It partitions the
possible-allocation space (:mod:`repro.distributed.partition`), writes
a shard manifest pinning the partition to the specification
(:mod:`repro.io.shard_io`), dispatches every shard as an independent
job, and replay-merges the per-shard checkpoint journals into the
single-host result (:mod:`repro.distributed.merge`).  Three dispatch
modes share the same durable substrate — one
``repro/explore-checkpoint`` journal per shard in ``workdir``:

``inline``
    Shards run sequentially in this process via ``explore_batched``.
    The zero-infrastructure mode: same journals, same merge, no
    sockets.  With ``resume=True`` a re-run picks every shard up from
    its newest fsync'd snapshot.

``service``
    Shards are submitted as jobs to a fresh
    :class:`~repro.service.ExplorationService` rooted under
    ``workdir/service`` and run under its stride scheduler with
    checkpoint preemption; the merge reads the per-job journals.

``remote``
    Shards are sent to ``shard-worker`` servers (``workers=`` a list
    of ``host:port`` addresses) over the CRC-framed protocol of
    :mod:`repro.distributed.protocol`.  Connection-level failures
    (dead or restarting worker) are retried with bounded attempts,
    rotating across workers; a restarted worker resumes from its own
    journal, so the retried reply is the journal an uninterrupted run
    would have produced.  A shard whose retries are exhausted is
    declared *lost* and the merge degrades to the exact single-host
    prefix with a provably sound :class:`OptimalityGap` — never a
    silently wrong front.

Whatever the mode, a fully-completed sharded run returns a result
byte-identical (front, statistics except wall-clock, progress events,
logical trace) to ``explore(spec, engine="compiled", ...)`` on one
host — see the soundness argument in :mod:`repro.distributed.merge`.
"""

from __future__ import annotations

import logging
import os
import socket
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.result import ExplorationResult
from ..errors import (
    CheckpointError,
    ExplorationError,
    HangError,
    ProtocolError,
)
from ..io import shard_io
from ..spec import SpecificationGraph
from ..supervision.watchdog import (
    HEARTBEAT_SECONDS_DEFAULT,
    HEARTBEAT_TIMEOUT_DEFAULT,
    Watchdog,
)
from .partition import Shard, make_partition
from .protocol import MessageStream, connect, parse_address

logger = logging.getLogger(__name__)

#: Dispatch modes of :func:`explore_sharded`.
DISPATCH_MODES = ("inline", "service", "remote")

#: Default bounded-retry policy for remote dispatch.
RETRY_ATTEMPTS_DEFAULT = 3
RETRY_DELAY_DEFAULT = 0.5

#: How a failed remote attempt is classified (typed, per attempt, in
#: :attr:`ShardOutcome.failures`): the peer is *hung* (reachable yet
#: silent past the heartbeat timeout), *dead* (the OS says the
#: connection is gone), or spoke garbage (*protocol*).  A *slow* peer —
#: heartbeats keep arriving — is never failed over.
FAILURE_KINDS = ("hung", "dead", "protocol", "refused")

#: The manifest filename inside a coordinator workdir.
MANIFEST_NAME = "shards.json"


def shard_journal_path(workdir: str, shard: Shard) -> str:
    """The coordinator-side checkpoint journal path of one shard."""
    return os.path.join(workdir, f"shard-{shard.index:03d}.checkpoint")


class ShardOutcome:
    """What happened to one shard during a sharded exploration."""

    __slots__ = (
        "shard", "journal_path", "elapsed_seconds", "attempts",
        "worker", "resumed", "lost", "cursor", "completed",
        "heartbeats", "hangs", "failures", "resources",
    )

    def __init__(self, shard: Shard, journal_path: str) -> None:
        self.shard = shard
        self.journal_path = journal_path
        self.elapsed_seconds = 0.0
        self.attempts = 0
        self.worker: Optional[str] = None
        self.resumed = False
        self.lost = False
        self.cursor: Optional[int] = None
        self.completed = False
        #: Heartbeat frames received across all attempts.
        self.heartbeats = 0
        #: Attempts failed over because the worker went silent (hung).
        self.hangs = 0
        #: One ``{"worker", "kind", "error"}`` record per failed
        #: attempt (``kind`` is one of :data:`FAILURE_KINDS`) — the
        #: typed hung-vs-dead-vs-garbled story of this shard.
        self.failures: List[Dict[str, Any]] = []
        #: Newest worker resource snapshot (RSS/CPU/GC) seen on a
        #: heartbeat or the final reply; ``{}`` from workers predating
        #: the telemetry plane (the key is version-tolerant).
        self.resources: Dict[str, Any] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard.index,
            "strategy": self.shard.strategy,
            "elapsed_seconds": self.elapsed_seconds,
            "attempts": self.attempts,
            "worker": self.worker,
            "resumed": self.resumed,
            "lost": self.lost,
            "cursor": self.cursor,
            "completed": self.completed,
            "heartbeats": self.heartbeats,
            "hangs": self.hangs,
            "failures": list(self.failures),
            "resources": dict(self.resources),
        }


class ShardedExploration:
    """The return value of :func:`explore_sharded`.

    ``result`` is the merged :class:`ExplorationResult`; ``outcomes``
    record the per-shard dispatch story (timing, retries, which worker
    served it, whether it was lost) for the benchmark harness and for
    operators debugging a degraded run.
    """

    __slots__ = (
        "result", "shards", "outcomes", "manifest_path", "workdir",
        "mode", "strategy", "merge_seconds", "elapsed_seconds",
    )

    def __init__(
        self,
        result: ExplorationResult,
        shards: Sequence[Shard],
        outcomes: Sequence[ShardOutcome],
        manifest_path: str,
        workdir: str,
        mode: str,
        merge_seconds: float,
        elapsed_seconds: float,
    ) -> None:
        self.result = result
        self.shards = list(shards)
        self.outcomes = list(outcomes)
        self.manifest_path = manifest_path
        self.workdir = workdir
        self.mode = mode
        self.strategy = self.shards[0].strategy if self.shards else None
        self.merge_seconds = merge_seconds
        self.elapsed_seconds = elapsed_seconds

    @property
    def lost_shards(self) -> List[Shard]:
        return [o.shard for o in self.outcomes if o.lost]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "strategy": self.strategy,
            "shard_count": len(self.shards),
            "merge_seconds": self.merge_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "completed": self.result.completed,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def _prepare_partition(
    spec: SpecificationGraph,
    workdir: str,
    shards: int,
    strategy: str,
    resume: bool,
    options: Dict[str, Any],
) -> Tuple[List[Shard], str]:
    """Build (or reload) the partition and pin it in the manifest.

    A resumed coordinator must replay the *same* partition — shard
    journals are meaningless against any other — so the manifest is
    the source of truth once written.
    """
    from ..io.json_io import spec_to_dict

    manifest_path = os.path.join(workdir, MANIFEST_NAME)
    digest = shard_io.spec_digest(spec_to_dict(spec))
    if resume and os.path.exists(manifest_path):
        loaded, document = shard_io.load_manifest(manifest_path)
        if document.get("spec_digest") != digest:
            raise CheckpointError(
                f"shard manifest {manifest_path!r} pins a different "
                f"specification (digest {document.get('spec_digest')!r}, "
                f"this spec is {digest!r})"
            )
        if document.get("strategy") != strategy or len(loaded) != shards:
            raise CheckpointError(
                f"shard manifest {manifest_path!r} pins "
                f"{document.get('count')}x{document.get('strategy')!r} "
                f"but this run asked for {shards}x{strategy!r}; "
                f"use a fresh workdir to change the partition"
            )
        return loaded, manifest_path
    partition = make_partition(
        spec,
        shards,
        strategy,
        require_units=options.get("require_units"),
        forbid_units=options.get("forbid_units"),
    )
    if not resume:
        # A fresh (non-resuming) run must not merge stale journals.
        for shard in partition:
            stale = shard_journal_path(workdir, shard)
            if os.path.exists(stale):
                os.unlink(stale)
    shard_io.dump_manifest(
        manifest_path, shard_io.manifest_to_dict(spec, partition, options)
    )
    return partition, manifest_path


def _run_inline(
    spec: SpecificationGraph,
    outcomes: Sequence[ShardOutcome],
    resume: bool,
    checkpoint_every: Optional[int],
    options: Dict[str, Any],
) -> None:
    from ..parallel.batched import explore_batched
    from ..resilience.checkpoint import load_checkpoint, resume_explore

    for outcome in outcomes:
        started = time.perf_counter()
        outcome.attempts = 1
        result = None
        if resume and os.path.exists(outcome.journal_path):
            try:
                # This run's anytime budgets apply to the continuation
                # (None lifts a budget journaled by the previous run).
                result = resume_explore(
                    outcome.journal_path,
                    max_evaluations=options.get("max_evaluations"),
                    deadline_seconds=options.get("deadline_seconds"),
                )
                outcome.resumed = True
            except CheckpointError:
                logger.warning(
                    "coordinator: journal %s unusable, rerunning shard %d",
                    outcome.journal_path, outcome.shard.index,
                )
        if result is None:
            run_options = dict(options)
            explore_batched(
                spec,
                shard=outcome.shard,
                checkpoint=outcome.journal_path,
                checkpoint_every=checkpoint_every,
                parallel=run_options.pop("parallel", "serial"),
                **run_options,
            )
        loaded = load_checkpoint(outcome.journal_path)
        outcome.cursor = loaded.cursor
        outcome.completed = loaded.completed
        outcome.worker = "inline"
        outcome.elapsed_seconds = time.perf_counter() - started


def _run_service(
    spec: SpecificationGraph,
    workdir: str,
    outcomes: Sequence[ShardOutcome],
    checkpoint_every: Optional[int],
    options: Dict[str, Any],
) -> None:
    """Dispatch shards as jobs of a workdir-local exploration service.

    Each shard becomes one job; the stride scheduler interleaves them
    in checkpointed slices (exercising shard preemption), and the
    per-job journals are linked back to the coordinator's canonical
    ``shard-NNN.checkpoint`` names for the merge.
    """
    from ..io import job_io
    from ..resilience.checkpoint import load_checkpoint
    from ..service import ExplorationService

    service_dir = os.path.join(workdir, "service")
    # Unset (None) options are dropped — the service validates job
    # options strictly, and a real value it cannot carry (e.g. a
    # per-shard deadline) must still be rejected loudly.
    job_options = {
        key: value for key, value in options.items()
        if key not in ("parallel", "workers") and value is not None
    }
    kwargs: Dict[str, Any] = {"progress_every": None}
    if checkpoint_every is not None:
        kwargs["checkpoint_every"] = checkpoint_every
    service = ExplorationService(service_dir, **kwargs)
    try:
        jobs = []
        for outcome in outcomes:
            submitted = dict(job_options)
            submitted["shard"] = outcome.shard.to_dict()
            job = service.submit(
                spec,
                name=f"shard-{outcome.shard.index:03d}",
                options=submitted,
            )
            jobs.append(job)
        service.run()
        for outcome, job in zip(outcomes, jobs):
            outcome.attempts = 1
            outcome.worker = f"service:{job.job_id}"
            if job.state != "completed":
                raise ExplorationError(
                    f"shard {outcome.shard.index} job {job.job_id!r} "
                    f"ended in state {job.state!r}"
                )
            source = job_io.checkpoint_path(service_dir, job.job_id)
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
            with open(outcome.journal_path, "w", encoding="utf-8") as handle:
                handle.write(text)
            loaded = load_checkpoint(outcome.journal_path)
            outcome.cursor = loaded.cursor
            outcome.completed = loaded.completed
            # Accumulated slice runtime under the stride scheduler.
            outcome.elapsed_seconds = service._runtime.get(job.job_id, 0.0)
    finally:
        service.close()


def _remote_request(
    address: Tuple[str, int],
    job: str,
    spec_doc: Dict[str, Any],
    outcome: ShardOutcome,
    checkpoint_every: Optional[int],
    options: Dict[str, Any],
    timeout: Optional[float],
    heartbeat_seconds: Optional[float] = None,
    heartbeat_timeout: float = HEARTBEAT_TIMEOUT_DEFAULT,
    telemetry=None,
) -> Dict[str, Any]:
    """One run round-trip to one worker (raises on any failure).

    With heartbeats enabled (``heartbeat_seconds``), the reply phase is
    a receive *loop* bounded per frame by ``heartbeat_timeout`` — the
    coordinator never blocks indefinitely on a single end-of-run
    receive.  ``heartbeat`` frames re-arm the watchdog (a beating
    worker is *slow*, never failed over, however long the run takes);
    silence past the timeout raises a typed
    :class:`~repro.errors.HangError` (*hung*), while a dropped
    connection stays a :class:`ConnectionError` (*dead*) — both feed
    the caller's retry/failover path, distinguishably.
    """
    key = f"{address[0]}:{address[1]}"
    stream: MessageStream = connect(address, timeout=timeout)
    try:
        run_payload = {
            "job": job,
            "spec": spec_doc,
            "shard": outcome.shard.to_dict(),
            "options": options,
            "checkpoint_every": checkpoint_every,
        }
        if heartbeat_seconds:
            run_payload["heartbeat_seconds"] = heartbeat_seconds
        stream.send("run", run_payload)
        if heartbeat_seconds:
            watchdog = Watchdog(timeout_seconds=heartbeat_timeout)
            watchdog.arm(key)
            stream.settimeout(heartbeat_timeout)
            while True:
                try:
                    message_type, payload = stream.receive()
                except socket.timeout:
                    raise HangError(
                        f"worker {key} went silent on shard "
                        f"{outcome.shard.index}: no frame for "
                        f"{heartbeat_timeout:g}s after "
                        f"{watchdog.beats(key)} heartbeat(s) "
                        f"(last: {watchdog.info(key) or 'none'})"
                    ) from None
                if message_type != "heartbeat":
                    break
                beat = payload if isinstance(payload, dict) else {}
                watchdog.beat(
                    key,
                    cursor=beat.get("cursor"),
                    evaluations=beat.get("evaluations"),
                )
                outcome.heartbeats += 1
                resources = beat.get("resources")
                if isinstance(resources, dict):
                    # Additive telemetry key — absent from old workers.
                    outcome.resources = resources
                if telemetry is not None:
                    telemetry.record_beat(outcome.shard.index, beat)
        else:
            message_type, payload = stream.receive()
    finally:
        stream.close()
    if message_type == "error":
        kind = payload.get("kind") if isinstance(payload, dict) else None
        message = payload.get("message") if isinstance(payload, dict) else None
        # The worker ran and refused: a typed, permanent failure —
        # retrying would refuse identically, so surface it now.
        raise ExplorationError(
            f"worker {address[0]}:{address[1]} failed shard "
            f"{outcome.shard.index}: {kind}: {message}"
        )
    if message_type != "result" or not isinstance(payload, dict):
        raise ProtocolError(
            f"expected result from worker, got {message_type!r}"
        )
    return payload


def _classify_failure(error: BaseException) -> str:
    """Which :data:`FAILURE_KINDS` a failed remote attempt is."""
    if isinstance(error, (HangError, socket.timeout)):
        return "hung"
    if isinstance(error, ProtocolError):
        return "protocol"
    return "dead"


def _pick_address(
    addresses: Sequence[Tuple[str, int]],
    base: int,
    breakers,
) -> Tuple[str, int]:
    """The rotation address, skipped past open circuit breakers.

    Starting at ``base`` (the deterministic shard/attempt rotation),
    return the first address whose breaker admits work.  When *every*
    breaker is open, fall back to the rotation address anyway — losing
    a shard because all peers recently failed is strictly worse than
    probing one of them early.
    """
    for offset in range(len(addresses)):
        address = addresses[(base + offset) % len(addresses)]
        if breakers is None or breakers.allow(
            f"{address[0]}:{address[1]}"
        ):
            return address
    return addresses[base % len(addresses)]


def _run_remote(
    spec: SpecificationGraph,
    outcomes: Sequence[ShardOutcome],
    workers: Sequence[Union[str, Tuple[str, int]]],
    checkpoint_every: Optional[int],
    options: Dict[str, Any],
    retry_attempts: int,
    retry_delay: float,
    timeout: Optional[float],
    heartbeat_seconds: Optional[float] = None,
    heartbeat_timeout: float = HEARTBEAT_TIMEOUT_DEFAULT,
    breakers=None,
    telemetry=None,
) -> None:
    from ..io.json_io import spec_to_dict
    from ..resilience.checkpoint import load_checkpoint

    if not workers:
        raise ExplorationError("remote dispatch needs at least one worker")
    addresses = [
        parse_address(w) if isinstance(w, str) else (str(w[0]), int(w[1]))
        for w in workers
    ]
    spec_doc = spec_to_dict(spec)
    # Job ids are namespaced by the spec digest: worker directories
    # outlive any one exploration, and a bare ``shard-NNN`` id would
    # let a worker resume the journal of a *previous, different* run.
    digest = shard_io.spec_digest(spec_doc)
    run_options = {
        key: value for key, value in options.items()
        if key not in ("parallel", "workers") and value is not None
    }
    for outcome in outcomes:
        started = time.perf_counter()
        job = f"{digest}-shard-{outcome.shard.index:03d}"
        reply = None
        for attempt in range(retry_attempts):
            # Rotate across workers (skipping open breakers): a dead
            # or hung host's shards fail over to its peers (which
            # start the shard fresh — equally sound, the journal is
            # complete either way).
            address = _pick_address(
                addresses, outcome.shard.index + attempt, breakers
            )
            key = f"{address[0]}:{address[1]}"
            outcome.attempts = attempt + 1
            try:
                reply = _remote_request(
                    address, job, spec_doc, outcome,
                    checkpoint_every, run_options, timeout,
                    heartbeat_seconds=heartbeat_seconds,
                    heartbeat_timeout=heartbeat_timeout,
                    telemetry=telemetry,
                )
                outcome.worker = key
                if breakers is not None:
                    breakers.record_success(key)
                break
            except (HangError, ProtocolError, ConnectionError,
                    OSError) as error:
                # The worker died, went silent, or spoke garbage.  Its
                # journal survives, so the retry resumes rather than
                # repeats.  The kind is recorded — hung-vs-dead-vs-
                # garbled matter to operators and to the breakers.
                kind = _classify_failure(error)
                if kind == "hung":
                    outcome.hangs += 1
                outcome.failures.append({
                    "worker": key, "kind": kind, "error": str(error),
                })
                if breakers is not None:
                    breakers.record_failure(key)
                logger.warning(
                    "coordinator: shard %d attempt %d via %s "
                    "failed (%s): %s",
                    outcome.shard.index, attempt + 1, key, kind, error,
                )
                if attempt + 1 < retry_attempts:
                    time.sleep(retry_delay)
        if reply is None:
            # Retries exhausted: the shard is lost.  The merge will
            # degrade to a sound gap instead of a wrong front.
            outcome.lost = True
            logger.error(
                "coordinator: shard %d lost after %d attempts",
                outcome.shard.index, outcome.attempts,
            )
        else:
            with open(outcome.journal_path, "w", encoding="utf-8") as handle:
                handle.write(reply["journal"])
            # Trust but verify: the returned journal must journal THIS
            # spec and shard — a confused worker must fail loudly here,
            # not produce a plausible merge of someone else's run.
            loaded = load_checkpoint(outcome.journal_path)
            if shard_io.spec_digest(spec_to_dict(loaded.spec)) != digest:
                raise ExplorationError(
                    f"worker {outcome.worker} returned a journal for a "
                    f"different specification (job {job!r})"
                )
            if loaded.params.get("shard") != outcome.shard.to_dict():
                raise ExplorationError(
                    f"worker {outcome.worker} returned a journal for a "
                    f"different shard (job {job!r})"
                )
            outcome.cursor = reply.get("cursor")
            outcome.completed = bool(reply.get("completed"))
            outcome.resumed = bool(reply.get("resumed"))
            resources = reply.get("resources")
            if isinstance(resources, dict):
                outcome.resources = resources
        outcome.elapsed_seconds = time.perf_counter() - started
        if telemetry is not None:
            telemetry.record_outcome(outcome)


def explore_sharded(
    spec: SpecificationGraph,
    shards: int = 4,
    strategy: str = "band",
    mode: str = "inline",
    workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
    workdir: Optional[str] = None,
    resume: bool = True,
    checkpoint_every: Optional[int] = None,
    retry_attempts: int = RETRY_ATTEMPTS_DEFAULT,
    retry_delay: float = RETRY_DELAY_DEFAULT,
    timeout: Optional[float] = None,
    heartbeat_seconds: Optional[float] = HEARTBEAT_SECONDS_DEFAULT,
    heartbeat_timeout: float = HEARTBEAT_TIMEOUT_DEFAULT,
    breakers=None,
    trace: Optional[list] = None,
    progress=None,
    progress_every: Optional[int] = None,
    tracer=None,
    telemetry=None,
    **options: Any,
) -> ShardedExploration:
    """Distributed EXPLORE: partition, dispatch, replay-merge.

    Parameters
    ----------
    shards, strategy:
        Partition geometry — ``strategy`` is ``"band"`` (total-cost
        intervals) or ``"prefix"`` (allocation-bit patterns over the
        most balanced BDD variables); see
        :func:`repro.distributed.make_partition`.
    mode, workers:
        Dispatch mode (``"inline"``, ``"service"`` or ``"remote"``);
        ``workers`` lists ``host:port`` shard-worker addresses and is
        required (only) for remote dispatch.
    workdir, resume:
        Durable state root: the shard manifest plus one checkpoint
        journal per shard.  With ``resume=True`` (default) an
        interrupted coordinator re-run reuses the pinned partition and
        every finished or partial journal; ``resume=False`` starts
        clean.  Defaults to a fresh temporary directory.
    retry_attempts, retry_delay, timeout:
        Remote fault policy — bounded per-shard retries rotating over
        the worker list, then the shard is declared lost and the merge
        returns the sound degraded result (``completed=False`` plus an
        :class:`OptimalityGap` accepted by ``verify_gap``).
    heartbeat_seconds, heartbeat_timeout, breakers:
        The remote supervision plane (:mod:`repro.supervision`).
        Workers stream ``heartbeat`` frames every ``heartbeat_seconds``
        while a shard runs; a worker silent past ``heartbeat_timeout``
        is declared *hung* (typed in ``outcome.failures``) and failed
        over — a beating worker is merely *slow* and never preempted.
        ``heartbeat_seconds=None`` disables beats (legacy single
        end-of-run receive, bounded only by ``timeout``).  ``breakers``
        is an optional
        :class:`~repro.supervision.BreakerRegistry`; by default a
        fresh one supervises this run, so a repeatedly failing worker
        address stops receiving shards until its cool-down probe
        succeeds — pass a shared registry to carry breaker state (and
        its metrics export) across runs.
    trace, progress, progress_every, tracer:
        Observability of the *merged* (global) exploration, identical
        in meaning to the ``explore()`` parameters.
    telemetry:
        An optional :class:`repro.telemetry.FleetTelemetry`: every
        worker heartbeat and every finished shard outcome is folded in
        as it arrives, so ``telemetry.registry`` exports live
        ``repro_shard_<n>_*`` and ``repro_fleet_*`` metrics (worker
        RSS/CPU snapshots ride the heartbeat frames — old workers
        interoperate, their beats just carry no resources).  Strictly
        wall-clock-side: the merged result is byte-identical with or
        without it.
    options:
        Result-affecting explore options (``util_bound``, ``max_cost``,
        ``backend``, ``engine``, ``keep_ties``, ...), applied uniformly
        to every shard.  ``max_candidates`` is rejected (it counts
        enumeration positions, which differ per shard).
    """
    from .merge import merge_shard_checkpoints

    if mode not in DISPATCH_MODES:
        raise ExplorationError(
            f"unknown dispatch mode {mode!r}; expected one of "
            f"{DISPATCH_MODES}"
        )
    if mode != "remote" and workers:
        raise ExplorationError(
            f"workers= is only meaningful with mode='remote', "
            f"got mode={mode!r}"
        )
    if options.get("max_candidates") is not None:
        raise ExplorationError(
            "max_candidates is incompatible with sharding: it counts "
            "enumeration positions, which differ per shard"
        )
    options.pop("max_candidates", None)
    started = time.perf_counter()
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-shards-")
    else:
        os.makedirs(workdir, exist_ok=True)
    partition, manifest_path = _prepare_partition(
        spec, workdir, shards, strategy, resume, options
    )
    outcomes = [
        ShardOutcome(shard, shard_journal_path(workdir, shard))
        for shard in partition
    ]
    if mode == "inline":
        _run_inline(spec, outcomes, resume, checkpoint_every, options)
    elif mode == "service":
        _run_service(spec, workdir, outcomes, checkpoint_every, options)
    else:
        if breakers is None:
            from ..supervision.breaker import BreakerRegistry

            # With fleet telemetry attached, breaker gauges join the
            # same unified registry (one /metrics-style export).
            breakers = BreakerRegistry(
                metrics=telemetry.registry
                if telemetry is not None
                else None
            )
        _run_remote(
            spec, outcomes, workers or (), checkpoint_every, options,
            retry_attempts, retry_delay, timeout,
            heartbeat_seconds=heartbeat_seconds,
            heartbeat_timeout=heartbeat_timeout,
            breakers=breakers,
            telemetry=telemetry,
        )
    if telemetry is not None and mode != "remote":
        # Inline/service dispatch produces no heartbeats; the outcomes
        # still feed the fleet view.
        for outcome in outcomes:
            telemetry.record_outcome(outcome)
    merge_started = time.perf_counter()
    merged = merge_shard_checkpoints(
        [o.journal_path for o in outcomes if not o.lost],
        lost_shards=[o.shard for o in outcomes if o.lost],
        trace=trace,
        progress=progress,
        progress_every=progress_every,
        tracer=tracer,
        engine=options.get("engine"),
    )
    finished = time.perf_counter()
    return ShardedExploration(
        merged,
        partition,
        outcomes,
        manifest_path,
        workdir,
        mode,
        merge_seconds=finished - merge_started,
        elapsed_seconds=finished - started,
    )
