"""The shard-worker wire protocol (CRC-framed JSON messages).

Messages reuse the journal record encoding of
:mod:`repro.resilience.journal`: one newline-terminated JSON object
``{"t": <type>, "p": <payload>, "c": <crc32 of canonical [t, p]>}``
per message.  Unlike the journal — where a torn *final* line is the
expected signature of a killed writer and is silently discarded — a
wire message is a complete request/response unit, so *every* framing
defect (truncation, garbling, checksum mismatch, oversized or
unknown-type frames) raises a typed
:class:`~repro.errors.ProtocolError`; corruption is never silently
dropped.  The handshake pins ``PROTOCOL_FORMAT``/``PROTOCOL_VERSION``
so incompatible peers are rejected before any work is exchanged.

Message flow (coordinator = client, shard worker = server)::

    client: hello {format, version}
    server: hello {format, version, pid}
    client: run   {job, spec, shard, options, checkpoint_every,
                   heartbeat_seconds}
    server: heartbeat {job, cursor, evaluations[, resources]}
                                                   (0..n, while running)
    server: result {result: <result-JSON-v2>, journal: <checkpoint
                    journal text>, job, cursor, completed[, resources]}
         or error  {kind, message}
    client: ping {} / shutdown {}      (liveness / orderly stop)
    server: pong {} / bye {}

``heartbeat`` frames are the liveness channel of the supervision plane
(:mod:`repro.supervision`): the worker streams them at
``heartbeat_seconds`` intervals while a run is in progress, carrying
the shard cursor and evaluation count, so the coordinator can
distinguish a *slow* worker (beats keep arriving) from a *hung* one
(silence past the heartbeat timeout) from a *dead* one (connection
error) — and never blocks indefinitely on a single end-of-run receive.

``resources`` is an *additive, optional* telemetry key on heartbeat
and result payloads: a worker-side process snapshot (RSS/CPU/GC,
:class:`repro.telemetry.ResourceSampler`) feeding the coordinator's
:class:`repro.telemetry.FleetTelemetry`.  Payloads are open objects,
so the key needs no version bump — old workers omit it, old
coordinators ignore it; liveness and results never depend on it.

The ``result`` payload speaks the two existing on-disk formats
(``docs/formats.md``): the result document is result-JSON-v2 and the
journal text is a verbatim ``repro/explore-checkpoint`` journal, which
the coordinator re-validates record-by-record (CRC) before merging.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import ProtocolError
from ..resilience.journal import encode_record, record_crc


def _faults():
    """The fault-injection seams (lazy import keeps the wire layer free
    of any resilience-package import cost on the hot path)."""
    from ..resilience import faults

    return faults

#: Wire-format identifier exchanged in the hello handshake.
PROTOCOL_FORMAT = "repro/shard-protocol"
#: Current wire-format version.
PROTOCOL_VERSION = 1

#: Message types a well-formed peer may send.
MESSAGE_TYPES = (
    "hello", "run", "result", "error", "ping", "pong", "shutdown", "bye",
    "heartbeat",
)

#: Upper bound on one frame (a shard journal for a huge space is tens
#: of MB; beyond this the frame is hostile or corrupt).
MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_message(message_type: str, payload: Any) -> bytes:
    """One CRC-framed wire message (newline-terminated UTF-8)."""
    if message_type not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {message_type!r}")
    return encode_record(message_type, payload).encode("utf-8")


def decode_message(line: bytes) -> Tuple[str, Any]:
    """Parse and verify one received frame.

    Raises :class:`ProtocolError` — loudly, with the defect named — on
    a truncated frame (no trailing newline), undecodable bytes, invalid
    JSON, a missing/unknown type, or a CRC mismatch.
    """
    if not line:
        raise ProtocolError("connection closed mid-message (empty frame)")
    if not line.endswith(b"\n"):
        raise ProtocolError(
            f"truncated message frame ({len(line)} bytes, no newline)"
        )
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"garbled message frame: {error}") from None
    if not isinstance(document, dict):
        raise ProtocolError(
            f"message frame is not an object: {type(document).__name__}"
        )
    message_type = document.get("t")
    if not isinstance(message_type, str) or "p" not in document:
        raise ProtocolError("message frame lacks type/payload fields")
    if message_type not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {message_type!r}")
    if record_crc(message_type, document["p"]) != document.get("c"):
        raise ProtocolError(
            f"message checksum mismatch on {message_type!r} frame "
            f"(corrupted in transit)"
        )
    return message_type, document["p"]


def hello_payload() -> Dict[str, Any]:
    import os

    return {
        "format": PROTOCOL_FORMAT,
        "version": PROTOCOL_VERSION,
        "pid": os.getpid(),
    }


def check_hello(payload: Any) -> None:
    """Validate a peer's hello; wrong format/version is a loud error."""
    if not isinstance(payload, dict):
        raise ProtocolError("hello payload is not an object")
    if payload.get("format") != PROTOCOL_FORMAT:
        raise ProtocolError(
            f"peer speaks {payload.get('format')!r}, "
            f"expected {PROTOCOL_FORMAT!r}"
        )
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {payload.get('version')!r} "
            f"(this side speaks {PROTOCOL_VERSION})"
        )


class MessageStream:
    """Framed messages over one connected socket.

    The ``"net"`` fault seam (:func:`repro.resilience.faults.maybe_action`)
    fires once per sent frame: ``delay`` sleeps ``delay_seconds`` before
    sending, ``stall`` wedges the link for ``stall_seconds`` (the
    heartbeat watchdog's job to catch), ``truncate`` delivers half the
    frame and drops the connection (the peer sees a torn frame →
    :class:`ProtocolError`), ``duplicate`` delivers the frame twice,
    ``reset`` drops the connection without sending a byte
    (:class:`ConnectionResetError` on this side).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")

    def send(self, message_type: str, payload: Any) -> None:
        frame = encode_message(message_type, payload)
        fault = _faults().maybe_action("net", message=message_type)
        if fault == "delay":
            time.sleep(_faults().active_plan().delay_seconds)
        elif fault == "stall":
            time.sleep(_faults().active_plan().stall_seconds)
        elif fault == "truncate":
            self._sock.sendall(frame[: max(1, len(frame) // 2)])
            self.close()
            raise ConnectionResetError(
                f"injected mid-frame truncation on {message_type!r}"
            )
        elif fault == "duplicate":
            self._sock.sendall(frame + frame)
            return
        elif fault == "reset":
            self.close()
            raise ConnectionResetError(
                f"injected connection reset before {message_type!r}"
            )
        self._sock.sendall(frame)

    def settimeout(self, timeout: Optional[float]) -> None:
        """(Re)bound every subsequent socket operation by ``timeout``."""
        self._sock.settimeout(timeout)

    def receive(self) -> Tuple[str, Any]:
        line = self._reader.readline(MAX_FRAME_BYTES + 1)
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"message frame exceeds {MAX_FRAME_BYTES} bytes"
            )
        return decode_message(line)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "MessageStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Default bound on the TCP connect + hello exchange.  A worker that
#: cannot complete a two-frame handshake in this window is effectively
#: down; without a finite default, a silently dropped SYN-ACK or a
#: wedged accept loop blocks the coordinator forever.
HANDSHAKE_TIMEOUT_DEFAULT = 10.0


def connect(
    address: Tuple[str, int],
    timeout: Optional[float] = None,
    handshake_timeout: Optional[float] = HANDSHAKE_TIMEOUT_DEFAULT,
) -> MessageStream:
    """Open a handshaken client connection to a shard worker.

    The connect + hello exchange is bounded by ``handshake_timeout``
    (finite by default; a caller-supplied finite ``timeout`` tightens it
    further); once the peer has proven protocol-compatible, the socket
    is rebound to ``timeout`` — the caller's policy for the run phase,
    where the heartbeat watchdog takes over liveness.
    """
    if handshake_timeout is None:
        effective = timeout
    elif timeout is None:
        effective = handshake_timeout
    else:
        effective = min(timeout, handshake_timeout)
    sock = socket.create_connection(address, timeout=effective)
    stream = MessageStream(sock)
    try:
        stream.send("hello", hello_payload())
        message_type, payload = stream.receive()
        if message_type == "error":
            raise ProtocolError(
                f"worker rejected handshake: {payload.get('message')!r}"
                if isinstance(payload, dict) else "worker rejected handshake"
            )
        if message_type != "hello":
            raise ProtocolError(
                f"expected hello from worker, got {message_type!r}"
            )
        check_hello(payload)
        stream.settimeout(timeout)
    except BaseException:
        stream.close()
        raise
    return stream


def parse_address(text: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)``, loudly validated."""
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise ProtocolError(
            f"worker address {text!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ProtocolError(
            f"worker address {text!r} has a non-numeric port"
        ) from None
