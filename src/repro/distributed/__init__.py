"""Distributed sharded EXPLORE with proven-sound front merging.

The possible-allocation space is partitioned into disjoint, exhaustive
shards (:mod:`~repro.distributed.partition`), each shard runs as an
independent checkpointed exploration (in-process, under the
exploration service, or on remote shard workers —
:mod:`~repro.distributed.coordinator` /
:mod:`~repro.distributed.worker`), and the per-shard journals are
replay-merged (:mod:`~repro.distributed.merge`) into a result
byte-identical to the single-host run — or, when a shard is lost, the
exact single-host prefix with a provably sound
:class:`~repro.core.result.OptimalityGap`.
"""

from .coordinator import (
    DISPATCH_MODES,
    RETRY_ATTEMPTS_DEFAULT,
    RETRY_DELAY_DEFAULT,
    ShardedExploration,
    ShardOutcome,
    explore_sharded,
    shard_journal_path,
)
from .merge import (
    SHARD_GAP_REASON,
    ShardRun,
    combine_gaps,
    merge_fronts,
    merge_shard_checkpoints,
    merge_shard_runs,
)
from .partition import (
    BAND_PROBE_LIMIT,
    PARTITION_STRATEGIES,
    Shard,
    cost_bands,
    make_partition,
    owner_index,
    prefix_balance_scores,
    prefix_shards,
    validate_partition,
)
from .protocol import (
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    PROTOCOL_FORMAT,
    PROTOCOL_VERSION,
    MessageStream,
    check_hello,
    connect,
    decode_message,
    encode_message,
    hello_payload,
    parse_address,
)
from .worker import WORKER_RUN_OPTIONS, run_request, serve

__all__ = [
    "BAND_PROBE_LIMIT",
    "DISPATCH_MODES",
    "MAX_FRAME_BYTES",
    "MESSAGE_TYPES",
    "PARTITION_STRATEGIES",
    "PROTOCOL_FORMAT",
    "PROTOCOL_VERSION",
    "RETRY_ATTEMPTS_DEFAULT",
    "RETRY_DELAY_DEFAULT",
    "SHARD_GAP_REASON",
    "WORKER_RUN_OPTIONS",
    "MessageStream",
    "Shard",
    "ShardOutcome",
    "ShardRun",
    "ShardedExploration",
    "check_hello",
    "combine_gaps",
    "connect",
    "cost_bands",
    "decode_message",
    "encode_message",
    "explore_sharded",
    "hello_payload",
    "make_partition",
    "merge_fronts",
    "merge_shard_checkpoints",
    "merge_shard_runs",
    "owner_index",
    "parse_address",
    "prefix_balance_scores",
    "prefix_shards",
    "run_request",
    "serve",
    "shard_journal_path",
    "validate_partition",
]
