"""Provably sound merging of per-shard exploration results.

Exactness is the product.  A shard run (``explore(shard=...)``) is the
batched replay loop over the sub-stream of candidates its shard owns,
journaling one :class:`~repro.parallel.worker.CandidateOutcome` per
distinct canonical signature it consumes.  The merge replays the
*global* candidate enumeration — the same deterministic cost order the
single-host loop walks — looking every incumbent-independent outcome
up in the shard journals instead of recomputing it, and making every
incumbent-dependent decision (estimate pruning, tie handling, Pareto
recording, early stops) with the single-host code shape.  The merged
front, statistics, progress events and logical trace are therefore
byte-identical to the uninterrupted single-host run — the property the
differential tests in ``tests/test_distributed.py`` enforce over the
randspec corpus and both case studies.

Why the shard journals always contain what the merge needs
----------------------------------------------------------
A shard's replay runs over a *prefix-closed filtered* sub-stream: every
shard candidate preceding a candidate *c* in the shard's order also
precedes *c* globally.  The shard incumbent is built from a subset of
the evaluations the global run has seen by *c*, so at every position
``f_entry(shard dispatch) <= f_cur(shard) <= f_cur(global)``.  Whenever
the global replay needs an evaluation (``estimate > f_cur(global)``, or
``>=`` under ``keep_ties``) the owning shard's dispatch bound was no
larger, hence the shard evaluated speculatively and journaled the
outcome — the same monotonicity argument that makes the single-host
batched replay exact (:mod:`repro.parallel.batched`), applied
per shard.  A shard stopping early at the global bound ``f_max`` is
covered too: the global run reaches ``f_max`` at a position no later
than the shard's (its incumbent is never smaller), so candidates past
a shard's stop point are never requested.

Soundness under loss (the combined :class:`OptimalityGap`)
----------------------------------------------------------
When a shard is unfinished — truncated by a budget, or lost with at
most a partial journal — the merge replays the global order up to the
first candidate owned by an unfinished shard beyond its durable cursor
and stalls there, returning ``completed=False`` and a gap whose
``next_cost_bound`` is that candidate's cost.  Costs are non-
decreasing, so the stall cost is exactly ``min`` over unfinished
shards of the cost of their next unprocessed candidate: nothing any
unfinished shard could still contribute lies below the bound, and the
merged prefix equals a single-host run truncated at the same position
— which is why :func:`repro.resilience.verify_gap` accepts the merged
gap against the full run (tested).
"""

from __future__ import annotations

import json
import time
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.explorer import prepare_exploration, validate_explore_options
from ..core.pareto import final_front
from ..core.progress import ProgressEmitter
from ..core.result import (
    ExplorationResult,
    ExplorationStats,
    OptimalityGap,
)
from ..errors import CheckpointError, ExplorationError
from ..parallel.cache import EvaluationCache
from ..parallel.signature import canonical_signature
from ..parallel.worker import CandidateOutcome, EvalParams
from ..spec import SpecificationGraph
from ..timing import PAPER_UTILIZATION_BOUND
from .partition import Shard, owner_index, validate_partition

#: The result-affecting ``explore`` parameters a merge must share with
#: the shard runs it combines (the checkpoint-header subset that the
#: resume machinery also freezes).
RESULT_PARAMS = (
    "util_bound",
    "max_cost",
    "use_possible_filter",
    "use_estimation",
    "prune_comm",
    "check_utilization",
    "weighted",
    "backend",
    "keep_ties",
    "timing_mode",
    "require_units",
    "forbid_units",
)

#: Gap reason recorded when the merge stalls on an unfinished shard.
SHARD_GAP_REASON = "shard_incomplete"


class ShardRun:
    """What the merge needs from one shard's execution.

    ``cursor`` — candidates of the shard's sub-stream durably consumed
    (the newest fsync'd checkpoint's cursor); ``None`` means unbounded
    (only legal for completed runs).  ``completed`` — whether the shard
    ran its sub-stream to a sound stop (exhaustion or an early stop).
    """

    __slots__ = ("shard", "cache", "cursor", "completed", "source", "_seen")

    def __init__(
        self,
        shard: Shard,
        cache: EvaluationCache,
        cursor: Optional[int],
        completed: bool,
        source: str = "<memory>",
    ) -> None:
        if not completed and cursor is None:
            raise ExplorationError(
                "an unfinished shard run needs a durable cursor; "
                "run it with a checkpoint journal"
            )
        self.shard = shard
        self.cache = cache
        self.cursor = cursor
        self.completed = completed
        self.source = source
        self._seen = 0

    @classmethod
    def lost(cls, shard: Shard) -> "ShardRun":
        """A shard whose worker (and journal) is permanently gone."""
        return cls(shard, EvaluationCache(), 0, False, source="<lost>")

    @classmethod
    def from_checkpoint(cls, path: str) -> Tuple["ShardRun", Any]:
        """Load a shard run from its checkpoint journal.

        Returns ``(run, loaded)`` where ``loaded`` is the underlying
        :class:`~repro.resilience.checkpoint.LoadedCheckpoint` (the
        caller validates spec/parameter consistency across shards).
        """
        from ..resilience.checkpoint import load_checkpoint

        loaded = load_checkpoint(path)
        shard_doc = loaded.params.get("shard")
        if shard_doc is None:
            raise CheckpointError(
                f"checkpoint {path!r} is not a shard run (no shard "
                f"recorded in its header)"
            )
        return (
            cls(
                Shard.from_dict(shard_doc),
                loaded.cache,
                loaded.cursor,
                loaded.completed,
                source=path,
            ),
            loaded,
        )


def _lookup(
    runs: Sequence[ShardRun],
    owner: int,
    signature: FrozenSet[str],
) -> Optional[CandidateOutcome]:
    """The journaled outcome for a signature, preferring evaluated
    records (outcomes are deterministic, so any evaluated record of the
    same signature is *the* record the serial loop would compute)."""
    best = runs[owner].cache.get(signature)
    if best is not None and best.evaluated:
        return best
    for run in runs:
        entry = run.cache.get(signature)
        if entry is not None:
            if entry.evaluated:
                return entry
            if best is None:
                best = entry
    return best


def merge_shard_runs(
    spec: SpecificationGraph,
    runs: Sequence[ShardRun],
    util_bound: float = PAPER_UTILIZATION_BOUND,
    max_cost: Optional[float] = None,
    use_possible_filter: bool = True,
    use_estimation: bool = True,
    prune_comm: bool = True,
    check_utilization: bool = True,
    weighted: bool = False,
    backend: str = "csp",
    keep_ties: bool = False,
    timing_mode: Optional[str] = None,
    require_units: Optional[Iterable[str]] = None,
    forbid_units: Optional[Iterable[str]] = None,
    engine: Optional[str] = None,
    trace: Optional[list] = None,
    progress=None,
    progress_every: Optional[int] = None,
    tracer=None,
) -> ExplorationResult:
    """Replay-merge shard runs into the single-host exploration result.

    The parameters must equal the ones the shard runs used (the
    checkpoint-based entry point :func:`merge_shard_checkpoints`
    extracts and cross-checks them automatically).  When every shard
    completed, the returned result — front, statistics (except
    wall-clock), progress events, logical trace — is byte-identical to
    ``explore(spec, ...)`` on one host; otherwise the result is the
    exact single-host prefix up to the first unprocessed candidate of
    an unfinished shard, with ``completed=False`` and the combined
    :class:`~repro.core.result.OptimalityGap` (see module docstring).
    """
    validate_explore_options(backend, timing_mode, engine=engine)
    ordered = validate_partition([run.shard for run in runs])
    by_index: List[ShardRun] = list(runs)
    by_index.sort(key=lambda run: run.shard.index)
    if [run.shard for run in by_index] != ordered:
        raise ExplorationError("shard runs do not form the validated partition")
    for run in by_index:
        run._seen = 0
    emitter = ProgressEmitter(progress, progress_every)
    params = EvalParams(
        util_bound=util_bound,
        check_utilization=check_utilization,
        weighted=weighted,
        backend=backend,
        timing_mode=timing_mode,
        use_possible_filter=use_possible_filter,
        use_estimation=use_estimation,
        prune_comm=prune_comm,
        keep_ties=keep_ties,
        engine=engine,
    )
    evaluator = params.evaluator(spec)
    setup = prepare_exploration(
        spec, require_units, forbid_units, max_cost, weighted,
        evaluator=evaluator,
    )
    for run in by_index:
        run.shard.validate_for(setup.extra_names)
    required = setup.required
    started = time.perf_counter()
    stats = ExplorationStats()
    stats.design_space_size = 1 << len(setup.extra_names)
    f_max = setup.f_max
    f_cur = 0.0
    points: List = []
    audit = tracer is not None and tracer.audit
    emitter.start(stats.design_space_size, f_max)
    if tracer is not None:
        tracer.start(stats.design_space_size, f_max)

    def note(kind: str, **fields) -> None:
        if trace is not None:
            fields["kind"] = kind
            trace.append(fields)

    truncation: Optional[OptimalityGap] = None
    # --- the single-host replay, outcomes looked up in shard journals
    for extra_cost, extras in evaluator.enumerator(
        setup.extra_names, include_empty=bool(required)
    ):
        cost = setup.required_cost + extra_cost
        if f_cur >= f_max:
            if not keep_ties or not points or cost > points[-1].cost:
                if tracer is not None:
                    tracer.stop(
                        "flexibility_bound_reached",
                        cost=cost,
                        f_max=f_max,
                        candidates=stats.candidates_enumerated,
                    )
                break
        if max_cost is not None and cost > max_cost:
            if tracer is not None:
                tracer.stop(
                    "cost_bound",
                    cost=cost,
                    max_cost=max_cost,
                    candidates=stats.candidates_enumerated,
                )
            break
        owner = owner_index(ordered, cost, extras)
        run = by_index[owner]
        run._seen += 1
        if not run.completed and run._seen > run.cursor:
            # First candidate no shard durably processed: everything
            # unexplored (in this shard and, by cost order, in every
            # other unfinished shard) costs at least `cost`.
            truncation = OptimalityGap(
                next_cost_bound=cost,
                flexibility_bound=f_max,
                achieved_flexibility=f_cur,
                reason=SHARD_GAP_REASON,
            )
            if tracer is not None:
                tracer.stop(
                    SHARD_GAP_REASON,
                    shard=owner,
                    next_cost_bound=cost,
                    candidates=stats.candidates_enumerated,
                )
            break
        stats.candidates_enumerated += 1
        emitter.candidate(
            stats.candidates_enumerated,
            stats.estimate_exceeded,
            stats.feasible_implementations,
            f_cur,
        )
        units = required | extras if required else extras
        signature = canonical_signature(spec, units)
        outcome = _lookup(by_index, owner, signature)
        if outcome is None:
            raise ExplorationError(
                f"internal: shard {owner} journal has no outcome for a "
                f"candidate it owns (units {sorted(units)!r}); the "
                f"journals do not belong to this partition/specification"
            )
        if use_possible_filter:
            if not outcome.possible:
                if audit:
                    tracer.prune("impossible_allocation", cost, units)
                continue
            stats.possible_allocations += 1
        if prune_comm and outcome.comm_pruned:
            stats.pruned_comm += 1
            if audit:
                tracer.prune("useless_comm", cost, units)
            continue
        if use_estimation:
            stats.estimates_computed += 1
            estimate = outcome.estimate
            if estimate < f_cur or (estimate == f_cur and not keep_ties):
                note(
                    "estimate_pruned",
                    cost=cost,
                    units=units,
                    estimate=estimate,
                    incumbent=f_cur,
                )
                if audit:
                    tracer.prune(
                        "estimate_below_incumbent",
                        cost,
                        units,
                        estimate=estimate,
                        incumbent=f_cur,
                    )
                continue
            if (
                keep_ties
                and estimate == f_cur
                and points
                and cost > points[-1].cost
            ):
                note(
                    "tie_cost_pruned",
                    cost=cost,
                    units=units,
                    estimate=estimate,
                    incumbent=f_cur,
                )
                if audit:
                    tracer.prune(
                        "tie_higher_cost",
                        cost,
                        units,
                        estimate=estimate,
                        incumbent=f_cur,
                    )
                continue
        stats.estimate_exceeded += 1
        if not outcome.evaluated:
            raise ExplorationError(
                "internal: shard journal holds no speculative evaluation "
                "for a candidate passing the incumbent bound (violated "
                "monotonicity invariant)"
            )
        stats.solver_invocations += outcome.solver_calls
        implementation = outcome.implementation_for(
            units, spec.units.total_cost(units)
        )
        if tracer is not None:
            tracer.evaluate(
                cost,
                units,
                outcome.estimate if use_estimation else None,
                outcome.solver_calls,
                implementation is not None,
                implementation.flexibility
                if implementation is not None
                else 0.0,
                f_cur,
            )
        if implementation is None:
            if audit:
                tracer.prune(
                    evaluator.infeasibility_reason(units),
                    cost,
                    units,
                    estimate=(
                        outcome.estimate if use_estimation else None
                    ),
                    incumbent=f_cur,
                )
            continue
        stats.feasible_implementations += 1
        if implementation.flexibility > f_cur:
            points.append(implementation)
            f_cur = implementation.flexibility
            emitter.incumbent(
                implementation.cost,
                implementation.flexibility,
                implementation.units,
                stats.candidates_enumerated,
                stats.estimate_exceeded,
            )
            if tracer is not None:
                tracer.incumbent(
                    implementation.cost,
                    implementation.flexibility,
                    implementation.units,
                    stats.candidates_enumerated,
                    stats.estimate_exceeded,
                )
        elif (
            keep_ties
            and points
            and implementation.flexibility == f_cur
            and implementation.cost == points[-1].cost
            and implementation.units != points[-1].units
        ):
            points.append(implementation)
            emitter.incumbent(
                implementation.cost,
                implementation.flexibility,
                implementation.units,
                stats.candidates_enumerated,
                stats.estimate_exceeded,
            )
            if tracer is not None:
                tracer.incumbent(
                    implementation.cost,
                    implementation.flexibility,
                    implementation.units,
                    stats.candidates_enumerated,
                    stats.estimate_exceeded,
                )
        elif audit:
            tracer.prune(
                "not_improving",
                cost,
                units,
                estimate=(
                    outcome.estimate if use_estimation else None
                ),
                achieved=implementation.flexibility,
                incumbent=f_cur,
            )

    front = final_front(points)
    if (
        audit
        and len(front) < len(points)
        and (truncation is None or tracer.record_truncation)
    ):
        survivors = {id(p) for p in front}
        for p in points:
            if id(p) not in survivors:
                tracer.prune(
                    "dominated", p.cost, p.units, flexibility=p.flexibility
                )
    stats.elapsed_seconds = time.perf_counter() - started
    emitter.end(
        truncation is None,
        truncation.reason if truncation is not None else None,
        stats.candidates_enumerated,
        stats.estimate_exceeded,
        len(front),
    )
    if tracer is not None:
        tracer.end(
            truncation is None,
            truncation.reason if truncation is not None else None,
            stats.candidates_enumerated,
            stats.estimate_exceeded,
            stats.feasible_implementations,
            len(front),
            [list(p.point) for p in front],
        )
    return ExplorationResult(
        front,
        stats,
        f_max,
        completed=truncation is None,
        gap=truncation,
    )


def _canonical_spec(document: Dict[str, Any]) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def merge_shard_checkpoints(
    paths: Sequence[str],
    lost_shards: Sequence[Shard] = (),
    trace: Optional[list] = None,
    progress=None,
    progress_every: Optional[int] = None,
    tracer=None,
    engine: Optional[str] = None,
) -> ExplorationResult:
    """Merge shard checkpoint journals into one exploration result.

    Loads every journal, cross-checks that all shards explored the same
    specification with the same result-affecting parameters (loud
    :class:`~repro.errors.CheckpointError` otherwise), and replays the
    merge.  ``lost_shards`` declares partition members whose journals
    are permanently gone — the merge then degrades to the exact prefix
    before their first unprocessed candidate (``completed=False`` with
    a sound combined gap) instead of failing.
    """
    from ..io.json_io import spec_to_dict

    if not paths and not lost_shards:
        raise CheckpointError("no shard checkpoints to merge")
    runs: List[ShardRun] = [ShardRun.lost(s) for s in lost_shards]
    spec: Optional[SpecificationGraph] = None
    spec_doc: Optional[str] = None
    params: Optional[Dict[str, Any]] = None
    for path in paths:
        run, loaded = ShardRun.from_checkpoint(path)
        runs.append(run)
        doc = _canonical_spec(spec_to_dict(loaded.spec))
        relevant = {
            name: loaded.params.get(name) for name in RESULT_PARAMS
        }
        if spec is None:
            spec, spec_doc, params = loaded.spec, doc, relevant
        else:
            if doc != spec_doc:
                raise CheckpointError(
                    f"shard checkpoint {path!r} explored a different "
                    f"specification than its siblings"
                )
            if relevant != params:
                changed = sorted(
                    name for name in RESULT_PARAMS
                    if relevant[name] != params[name]
                )
                raise CheckpointError(
                    f"shard checkpoint {path!r} used different "
                    f"result-affecting parameter(s) {changed!r}"
                )
    if spec is None:
        raise CheckpointError(
            "cannot merge: every shard of the partition is lost"
        )
    return merge_shard_runs(
        spec,
        runs,
        engine=engine,
        trace=trace,
        progress=progress,
        progress_every=progress_every,
        tracer=tracer,
        **params,
    )


def combine_gaps(gaps: Sequence[OptimalityGap]) -> OptimalityGap:
    """The sound combination of per-shard optimality gaps.

    Anything an unfinished shard could still produce costs at least its
    own ``next_cost_bound`` and reaches at most its
    ``flexibility_bound``; over a disjoint, exhaustive partition the
    combined bounds are therefore the ``min`` and ``max`` respectively.
    """
    if not gaps:
        raise ExplorationError("combine_gaps needs at least one gap")
    return OptimalityGap(
        next_cost_bound=min(g.next_cost_bound for g in gaps),
        flexibility_bound=max(g.flexibility_bound for g in gaps),
        achieved_flexibility=max(g.achieved_flexibility for g in gaps),
        reason=SHARD_GAP_REASON,
    )


def merge_fronts(
    results: Sequence[ExplorationResult],
) -> ExplorationResult:
    """Front-level union of shard results (the cheap, lossy merge).

    Unlike :func:`merge_shard_runs` this needs only the shard
    *results*, not their journals: it unions the points, re-applies the
    dominance filter, sums the per-shard effort counters and combines
    the gaps of unfinished shards.  The (cost, flexibility) front is
    sound — every merged point was feasible, every gap bound holds —
    but byte-level identity with the single-host run is *not*
    guaranteed: without ``keep_ties`` the single-host loop keeps the
    first-enumerated representative per point and counts only the work
    its own incumbent admitted, neither of which survives a union.
    Use the replay merge when exactness matters.
    """
    if not results:
        raise ExplorationError("merge_fronts needs at least one result")
    merged: List = []
    for result in results:
        merged.extend(result.points)
    merged.sort(key=lambda p: (p.cost, p.flexibility))
    front = final_front(merged)
    stats = ExplorationStats()
    for result in results:
        for name in ExplorationStats.__slots__:
            if name in ("events", "elapsed_seconds"):
                continue
            setattr(
                stats, name,
                getattr(stats, name) + getattr(result.stats, name),
            )
        stats.elapsed_seconds += result.stats.elapsed_seconds
        stats.events.extend(result.stats.events)
    stats.design_space_size = max(
        result.stats.design_space_size for result in results
    )
    f_max = max(result.max_flexibility_bound for result in results)
    achieved = max((p.flexibility for p in front), default=0.0)
    gaps = [r.gap for r in results if r.gap is not None]
    completed = all(r.completed for r in results)
    gap = None
    if not completed:
        combined = combine_gaps(gaps) if gaps else OptimalityGap(
            next_cost_bound=min(p.cost for p in front) if front else 0.0,
            flexibility_bound=f_max,
            achieved_flexibility=achieved,
            reason=SHARD_GAP_REASON,
        )
        gap = OptimalityGap(
            next_cost_bound=combined.next_cost_bound,
            flexibility_bound=combined.flexibility_bound,
            achieved_flexibility=achieved,
            reason=combined.reason,
        )
    return ExplorationResult(
        front, stats, f_max, completed=completed, gap=gap,
    )
