"""Disjoint, exhaustive partitions of the possible-allocation space.

A :class:`Shard` is a membership predicate over candidates ``(total
cost, extra units)``; a partition is a list of shards that together
tile the whole candidate space.  Two strategies are provided:

* **cost bands** — shard *i* owns the candidates whose total allocation
  cost falls in the half-open interval ``[lo_i, hi_i)``.  Boundaries
  are chosen from cost quantiles of a deterministic probe of the
  enumeration, so bands are roughly balanced in candidate count;
  adjacent bands share a boundary (``hi_i == lo_{i+1}``), the first
  starts at ``0.0`` and the last is unbounded, which makes the family
  disjoint and exhaustive *by construction*.

* **allocation prefixes** — for ``2^p`` shards, ``p`` freely
  allocatable units are fixed per shard to one of the ``2^p``
  true/false patterns.  The ``p`` units are picked by balance of the
  compiled kernel's BDD-lowered possible-allocation expression
  (:func:`repro.core.candidates.possible_allocation_expr` compiled via
  :func:`repro.boolexpr.expr_to_bdd`): for each unit the partition
  compares the model counts of the positive and negative cofactors and
  greedily keeps the units splitting the *possible* space most evenly,
  so shards receive comparable shares of the non-pruned work.  All
  ``2^p`` patterns of a fixed unit tuple are trivially disjoint and
  exhaustive.

Shards filter the shared cost-ordered candidate stream rather than
enumerating a private sub-lattice, so the candidates a shard owns
appear in exactly the global enumeration order — the property the
deterministic merge replay (:mod:`repro.distributed.merge`) relies on.
Empty shards (an empty band, or a prefix pattern with no possible
allocation) are legal and merge as no-ops.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ExplorationError
from ..spec import SpecificationGraph

#: Supported partition strategies.
PARTITION_STRATEGIES = ("band", "prefix")

#: Candidates probed (at most) when placing cost-band boundaries.
BAND_PROBE_LIMIT = 4096


class Shard:
    """One member of a disjoint, exhaustive candidate partition.

    Immutable value object; compare/serialise via :meth:`to_dict`.
    """

    __slots__ = (
        "strategy", "index", "count",
        "cost_lo", "cost_hi", "prefix_units", "pattern",
    )

    def __init__(
        self,
        strategy: str,
        index: int,
        count: int,
        cost_lo: float = 0.0,
        cost_hi: Optional[float] = None,
        prefix_units: Sequence[str] = (),
        pattern: int = 0,
    ) -> None:
        if strategy not in PARTITION_STRATEGIES:
            raise ExplorationError(
                f"unknown shard strategy {strategy!r}; "
                f"expected one of {PARTITION_STRATEGIES}"
            )
        if not 0 <= index < count:
            raise ExplorationError(
                f"shard index {index!r} outside partition of {count!r}"
            )
        if strategy == "band":
            if cost_hi is not None and cost_hi < cost_lo:
                raise ExplorationError(
                    f"empty-inverted cost band [{cost_lo!r}, {cost_hi!r})"
                )
        else:
            if len(set(prefix_units)) != len(prefix_units):
                raise ExplorationError(
                    f"duplicate prefix units {list(prefix_units)!r}"
                )
            if not 0 <= pattern < (1 << len(prefix_units)):
                raise ExplorationError(
                    f"prefix pattern {pattern!r} outside "
                    f"2^{len(prefix_units)} patterns"
                )
        self.strategy = strategy
        self.index = index
        self.count = count
        self.cost_lo = float(cost_lo)
        self.cost_hi = None if cost_hi is None else float(cost_hi)
        self.prefix_units = tuple(prefix_units)
        self.pattern = int(pattern)

    # -- membership -----------------------------------------------------

    def accepts(self, cost: float, extras: FrozenSet[str]) -> bool:
        """Whether the candidate ``(total cost, extra units)`` is owned
        by this shard."""
        if self.strategy == "band":
            if cost < self.cost_lo:
                return False
            return self.cost_hi is None or cost < self.cost_hi
        for bit, name in enumerate(self.prefix_units):
            if bool(self.pattern >> bit & 1) != (name in extras):
                return False
        return True

    def filter_stream(
        self,
        stream: Iterable[Tuple[float, FrozenSet[str]]],
        required_cost: float,
    ) -> Iterator[Tuple[float, FrozenSet[str]]]:
        """The shard's sub-stream of a cost-ordered candidate stream.

        Yields the owned ``(extra_cost, extras)`` pairs in their
        original (global) order.  A bounded cost band stops consuming
        the moment the stream reaches ``cost_hi`` — costs never
        decrease, so nothing owned can follow.
        """
        if self.strategy == "band":
            hi = self.cost_hi
            for extra_cost, extras in stream:
                cost = required_cost + extra_cost
                if hi is not None and cost >= hi:
                    return
                if cost >= self.cost_lo:
                    yield extra_cost, extras
            return
        for extra_cost, extras in stream:
            if self.accepts(required_cost + extra_cost, extras):
                yield extra_cost, extras

    def validate_for(self, extra_names: Iterable[str]) -> None:
        """Check the shard is applicable to a run's free unit set."""
        missing = set(self.prefix_units) - set(extra_names)
        if missing:
            raise ExplorationError(
                f"shard prefix unit(s) {sorted(missing)!r} are not "
                f"freely allocatable in this run (required/forbidden "
                f"units cannot be prefix variables)"
            )

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the shard-manifest entry, see
        ``docs/formats.md``)."""
        document: Dict[str, Any] = {
            "strategy": self.strategy,
            "index": self.index,
            "count": self.count,
        }
        if self.strategy == "band":
            document["cost_lo"] = self.cost_lo
            document["cost_hi"] = self.cost_hi
        else:
            document["prefix_units"] = list(self.prefix_units)
            document["pattern"] = self.pattern
        return document

    @classmethod
    def from_dict(cls, document: Any) -> "Shard":
        """Rebuild a shard from its dictionary form (loudly typed)."""
        if not isinstance(document, dict):
            raise ExplorationError(
                f"shard document must be a mapping, got "
                f"{type(document).__name__}"
            )
        try:
            strategy = document["strategy"]
            index = int(document["index"])
            count = int(document["count"])
            if strategy == "band":
                hi = document.get("cost_hi")
                return cls(
                    strategy, index, count,
                    cost_lo=float(document.get("cost_lo", 0.0)),
                    cost_hi=None if hi is None else float(hi),
                )
            return cls(
                strategy, index, count,
                prefix_units=[str(n) for n in document["prefix_units"]],
                pattern=int(document["pattern"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ExplorationError(
                f"malformed shard document: {error!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.strategy == "band":
            return (
                f"Shard(band {self.index}/{self.count} "
                f"[{self.cost_lo:g}, "
                f"{'inf' if self.cost_hi is None else f'{self.cost_hi:g}'}))"
            )
        bits = "".join(
            "1" if self.pattern >> i & 1 else "0"
            for i in range(len(self.prefix_units))
        )
        return (
            f"Shard(prefix {self.index}/{self.count} "
            f"{list(self.prefix_units)}={bits})"
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Shard) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash((
            self.strategy, self.index, self.count,
            self.cost_lo, self.cost_hi, self.prefix_units, self.pattern,
        ))


def validate_partition(shards: Sequence[Shard]) -> List[Shard]:
    """Check that ``shards`` is a disjoint, exhaustive partition.

    Returns the shards sorted by index.  The check is structural —
    cost bands must tile ``[0, inf)`` seamlessly, prefix patterns must
    cover all ``2^p`` assignments of one unit tuple — so a passing
    family is disjoint and exhaustive for *every* specification, not
    just a sampled one.
    """
    if not shards:
        raise ExplorationError("a partition needs at least one shard")
    ordered = sorted(shards, key=lambda s: s.index)
    count = ordered[0].count
    strategy = ordered[0].strategy
    if len(ordered) != count:
        raise ExplorationError(
            f"partition has {len(ordered)} shard(s) but declares "
            f"count={count}"
        )
    if [s.index for s in ordered] != list(range(count)):
        raise ExplorationError(
            f"shard indices {[s.index for s in ordered]!r} are not "
            f"0..{count - 1}"
        )
    if any(s.strategy != strategy or s.count != count for s in ordered):
        raise ExplorationError(
            "shards of one partition must share strategy and count"
        )
    if strategy == "band":
        if ordered[0].cost_lo != 0.0:
            raise ExplorationError(
                f"first cost band starts at {ordered[0].cost_lo!r}, "
                f"not 0.0 — candidates below it would be lost"
            )
        if ordered[-1].cost_hi is not None:
            raise ExplorationError(
                f"last cost band ends at {ordered[-1].cost_hi!r} — "
                f"candidates above it would be lost"
            )
        for left, right in zip(ordered, ordered[1:]):
            if left.cost_hi != right.cost_lo:
                raise ExplorationError(
                    f"cost bands {left.index} and {right.index} do not "
                    f"tile: [{left.cost_lo!r}, {left.cost_hi!r}) then "
                    f"[{right.cost_lo!r}, {right.cost_hi!r})"
                )
    else:
        units = ordered[0].prefix_units
        if any(s.prefix_units != units for s in ordered):
            raise ExplorationError(
                "prefix shards of one partition must fix the same units"
            )
        if count != 1 << len(units):
            raise ExplorationError(
                f"{count} prefix shard(s) cannot cover the "
                f"2^{len(units)} patterns of {list(units)!r}"
            )
        patterns = sorted(s.pattern for s in ordered)
        if patterns != list(range(count)):
            raise ExplorationError(
                f"prefix patterns {patterns!r} do not cover "
                f"0..{count - 1} exactly once"
            )
    return ordered


def owner_index(
    shards: Sequence[Shard], cost: float, extras: FrozenSet[str]
) -> int:
    """The index of the (unique) shard owning a candidate.

    ``shards`` must be a validated partition in index order.  Raises
    :class:`ExplorationError` when no shard accepts the candidate —
    impossible for a family that passed :func:`validate_partition`,
    kept as a loud invariant check."""
    first = shards[0]
    if first.strategy == "band":
        for shard in shards:
            if shard.accepts(cost, extras):
                return shard.index
        raise ExplorationError(
            f"no cost band owns candidate cost {cost!r}"
        )
    pattern = 0
    for bit, name in enumerate(first.prefix_units):
        if name in extras:
            pattern |= 1 << bit
    for shard in shards:
        if shard.pattern == pattern:
            return shard.index
    raise ExplorationError(
        f"no prefix shard owns pattern {pattern!r}"
    )


# ----------------------------------------------------------------------
# Partition construction
# ----------------------------------------------------------------------

def _exploration_frame(
    spec: SpecificationGraph,
    require_units: Optional[Iterable[str]],
    forbid_units: Optional[Iterable[str]],
) -> Tuple[FrozenSet[str], List[str], float]:
    """(required, extra names, required cost) as EXPLORE resolves them."""
    from ..core.explorer import prepare_exploration

    setup = prepare_exploration(
        spec, require_units, forbid_units, max_cost=0.0, weighted=False
    )
    return setup.required, setup.extra_names, setup.required_cost


def cost_bands(
    spec: SpecificationGraph,
    count: int,
    require_units: Optional[Iterable[str]] = None,
    forbid_units: Optional[Iterable[str]] = None,
    probe_limit: int = BAND_PROBE_LIMIT,
) -> List[Shard]:
    """A ``count``-way cost-band partition with quantile boundaries.

    Probes the first ``probe_limit`` candidates of the deterministic
    enumeration and places boundaries at cost quantiles, so bands hold
    comparable candidate counts when the probe covers the space (and a
    reasonable estimate when it does not — only balance suffers, never
    correctness).  Duplicate quantiles collapse into empty bands.
    """
    if count < 1:
        raise ExplorationError(f"shard count must be >= 1, got {count!r}")
    required, extra_names, required_cost = _exploration_frame(
        spec, require_units, forbid_units
    )
    if count == 1:
        return [Shard("band", 0, 1)]
    from ..core.candidates import AllocationEnumerator

    stream = AllocationEnumerator(
        spec, extra_names, include_empty=bool(required)
    )
    costs: List[float] = []
    for extra_cost, _ in stream:
        costs.append(required_cost + extra_cost)
        if len(costs) >= probe_limit:
            break
    boundaries: List[float] = [0.0]
    if costs:
        for i in range(1, count):
            position = min(len(costs) - 1, i * len(costs) // count)
            boundaries.append(max(boundaries[-1], costs[position]))
    else:
        boundaries.extend([0.0] * (count - 1))
    return [
        Shard(
            "band", i, count,
            cost_lo=boundaries[i],
            cost_hi=boundaries[i + 1] if i + 1 < count else None,
        )
        for i in range(count)
    ]


def prefix_balance_scores(
    spec: SpecificationGraph,
    extra_names: Sequence[str],
) -> Dict[str, int]:
    """Per-unit imbalance of the possible-allocation space.

    Compiles the possible-allocation expression to a BDD (exactly the
    lowering the compiled kernel uses) and scores each freely
    allocatable unit by ``|#models(u=1) - #models(u=0)|`` — the smaller
    the score, the more evenly fixing that unit splits the space of
    possible allocations.
    """
    from ..boolexpr import expr_to_bdd
    from ..core.candidates import possible_allocation_expr

    expr = possible_allocation_expr(spec)
    order = sorted(spec.units.names())
    manager, root = expr_to_bdd(expr, order)
    scores: Dict[str, int] = {}
    for name in extra_names:
        positive = manager.sat_count(manager.restrict(root, {name: True}))
        negative = manager.sat_count(manager.restrict(root, {name: False}))
        scores[name] = abs(positive - negative)
    return scores


def prefix_shards(
    spec: SpecificationGraph,
    count: int,
    require_units: Optional[Iterable[str]] = None,
    forbid_units: Optional[Iterable[str]] = None,
) -> List[Shard]:
    """A ``2^p``-way allocation-prefix partition, BDD-balanced.

    ``count`` must be a power of two; the ``p = log2(count)`` fixed
    units are the freely allocatable units whose positive/negative
    cofactors of the possible-allocation BDD have the most even model
    counts (ties broken by name, so the partition is deterministic).
    """
    if count < 1:
        raise ExplorationError(f"shard count must be >= 1, got {count!r}")
    if count & (count - 1):
        raise ExplorationError(
            f"prefix partitions need a power-of-two shard count, "
            f"got {count!r}"
        )
    _, extra_names, _ = _exploration_frame(
        spec, require_units, forbid_units
    )
    p = count.bit_length() - 1
    if p > len(extra_names):
        raise ExplorationError(
            f"cannot fix {p} prefix unit(s): only {len(extra_names)} "
            f"freely allocatable unit(s)"
        )
    if p == 0:
        return [Shard("prefix", 0, 1)]
    scores = prefix_balance_scores(spec, extra_names)
    chosen = sorted(extra_names, key=lambda n: (scores[n], n))[:p]
    return [
        Shard("prefix", pattern, count,
              prefix_units=chosen, pattern=pattern)
        for pattern in range(count)
    ]


def make_partition(
    spec: SpecificationGraph,
    count: int,
    strategy: str = "band",
    require_units: Optional[Iterable[str]] = None,
    forbid_units: Optional[Iterable[str]] = None,
) -> List[Shard]:
    """Build and validate a partition with the named strategy."""
    if strategy == "band":
        shards = cost_bands(spec, count, require_units, forbid_units)
    elif strategy == "prefix":
        shards = prefix_shards(spec, count, require_units, forbid_units)
    else:
        raise ExplorationError(
            f"unknown shard strategy {strategy!r}; "
            f"expected one of {PARTITION_STRATEGIES}"
        )
    return validate_partition(shards)
