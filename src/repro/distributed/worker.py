"""The shard-worker server: one host's share of a distributed EXPLORE.

A worker owns a directory of per-job checkpoint journals and serves
``run`` requests over the CRC-framed protocol of
:mod:`repro.distributed.protocol`.  Each request names a job id, ships
the full specification document, a shard descriptor and the explore
options; the worker runs ``explore_batched(shard=...)`` journaling
into ``<directory>/<job>.checkpoint`` and replies with the result
document *and* the verbatim journal text.  Everything durable lives in
the journal, so a worker killed mid-run (``kill -9``) loses nothing
the protocol cannot recover: re-sending the same ``run`` request to a
restarted worker resumes from the newest fsync'd snapshot
(:func:`repro.resilience.resume_explore`) and returns the same journal
an uninterrupted worker would have produced.

Malformed frames never kill the server: the offending connection gets
a best-effort ``error`` reply and is closed, the listener keeps
serving (the defect is still loud — typed, logged, and visible to the
client as a :class:`~repro.errors.ProtocolError`).
"""

from __future__ import annotations

import logging
import os
import re
import socket
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import CheckpointError, ProtocolError, ReproError
from .protocol import (
    MessageStream,
    check_hello,
    hello_payload,
)

logger = logging.getLogger(__name__)

#: Progress-event cadence (enumerated candidates) feeding the heartbeat
#: sender.  Deliberately fine-grained — the sender rate-limits by wall
#: clock, so a finer cadence costs a dict lookup, not wire traffic.
HEARTBEAT_PROGRESS_EVERY = 64

#: Options a run request may carry (the result-affecting explore
#: parameters plus per-run geometry; unknown keys are rejected loudly).
WORKER_RUN_OPTIONS = (
    "util_bound",
    "max_cost",
    "use_possible_filter",
    "use_estimation",
    "prune_comm",
    "check_utilization",
    "weighted",
    "backend",
    "keep_ties",
    "timing_mode",
    "require_units",
    "forbid_units",
    "batch_size",
    "engine",
    "parallel",
    "workers",
    "deadline_seconds",
    "max_evaluations",
    "trace",
)

_JOB_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def checkpoint_path(directory: str, job: str) -> str:
    """The worker-side journal path of a job (id validated: a job id
    is a filename component, never a path)."""
    if not _JOB_ID.match(job):
        raise ProtocolError(f"invalid job id {job!r}")
    return os.path.join(directory, f"{job}.checkpoint")


def _journal_mismatch(path: str, spec, shard) -> Optional[str]:
    """Why an existing journal does NOT belong to this run (or None).

    A worker directory outlives any one exploration, so a journal found
    under the requested job id may be a leftover from a different spec
    or partition.  Resuming it would be silently wrong; the caller
    starts fresh instead.  An unreadable journal returns None — the
    resume path's own validation handles (and logs) that case.
    """
    from ..io.json_io import spec_to_dict
    from ..io.shard_io import spec_digest
    from ..resilience.checkpoint import load_checkpoint

    try:
        loaded = load_checkpoint(path)
    except CheckpointError:
        return None
    if spec_digest(spec_to_dict(loaded.spec)) != \
            spec_digest(spec_to_dict(spec)):
        return "journals a different specification"
    if loaded.params.get("shard") != shard.to_dict():
        return "journals a different shard"
    return None


def run_request(
    directory: str,
    payload: Any,
    heartbeat: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Execute one validated ``run`` request; returns the reply payload.

    ``heartbeat`` (when given) is called with ``{"cursor": ...,
    "evaluations": ...}`` at every progress event of the underlying
    exploration — the liveness seam :func:`_serve_connection` wires to
    ``heartbeat`` wire frames.  Heartbeats prove *progress*, not mere
    process liveness: an evaluation wedged inside one candidate stops
    the beats, which is exactly what the coordinator's watchdog is
    there to catch.
    """
    from ..io.json_io import spec_from_dict
    from ..io.result_io import result_to_dict
    from ..parallel.batched import explore_batched
    from ..resilience.checkpoint import load_checkpoint, resume_explore
    from ..trace import Tracer
    from .partition import Shard

    if not isinstance(payload, dict):
        raise ProtocolError("run payload is not an object")
    try:
        job = payload["job"]
        spec_doc = payload["spec"]
        shard_doc = payload["shard"]
    except KeyError as error:
        raise ProtocolError(f"run payload lacks {error.args[0]!r}") from None
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        raise ProtocolError("run options must be an object")
    unknown = set(options) - set(WORKER_RUN_OPTIONS)
    if unknown:
        raise ProtocolError(
            f"unknown run option(s) {sorted(unknown)!r}; "
            f"a run may set {WORKER_RUN_OPTIONS}"
        )
    options = dict(options)
    trace_level = options.pop("trace", None)
    path = checkpoint_path(directory, str(job))
    spec = spec_from_dict(spec_doc)
    shard = Shard.from_dict(shard_doc)
    tracer = None
    if trace_level is not None:
        # Shard-tagged spans: the worker's own observability channel
        # (the merged trace is reconstructed coordinator-side, untagged).
        tracer = Tracer(
            level=trace_level,
            tags={
                "shard": shard.index,
                "shards": shard.count,
                "strategy": shard.strategy,
            },
        )
    progress_cb = None
    progress_every = None
    if heartbeat is not None:
        progress_every = HEARTBEAT_PROGRESS_EVERY

        def progress_cb(event: Dict[str, Any]) -> None:
            heartbeat({
                "cursor": event.get("candidates"),
                "evaluations": event.get("evaluations"),
            })

    resumed = False
    result = None
    if os.path.exists(path):
        stale = _journal_mismatch(path, spec, shard)
        if stale is not None:
            # A journal under this job id from a *different*
            # exploration (worker directory reused across runs):
            # resuming it would return the wrong run's result.  Start
            # fresh — the new journal truncates the stale one.
            logger.warning(
                "worker: journal %s is stale (%s), starting fresh",
                path, stale,
            )
        else:
            try:
                # The request's anytime budgets govern the continuation
                # (None lifts a budget journaled by an earlier attempt).
                result = resume_explore(
                    path,
                    tracer=tracer,
                    progress=progress_cb,
                    progress_every=progress_every,
                    max_evaluations=options.get("max_evaluations"),
                    deadline_seconds=options.get("deadline_seconds"),
                )
                resumed = True
            except CheckpointError:
                logger.warning(
                    "worker: journal %s unusable, starting fresh", path
                )
    if result is None:
        result = explore_batched(
            spec,
            shard=shard,
            checkpoint=path,
            checkpoint_every=payload.get("checkpoint_every"),
            parallel=options.pop("parallel", "serial"),
            tracer=tracer,
            progress=progress_cb,
            progress_every=progress_every,
            **options,
        )
    loaded = load_checkpoint(path)
    with open(path, "r", encoding="utf-8") as handle:
        journal_text = handle.read()
    reply: Dict[str, Any] = {
        "job": job,
        "result": result_to_dict(result),
        "journal": journal_text,
        "cursor": loaded.cursor,
        "completed": loaded.completed,
        "resumed": resumed,
        "host": {"pid": os.getpid(), "name": socket.gethostname()},
    }
    try:
        # Final resource reading for the coordinator's fleet telemetry
        # (additive key: old coordinators ignore it).
        from ..telemetry import ResourceSampler

        reply["resources"] = ResourceSampler().snapshot()
    except Exception:  # pragma: no cover - OS accounting failure
        pass
    if tracer is not None:
        reply["trace"] = tracer.all_records()
    return reply


def _heartbeat_sender(
    stream: MessageStream, job: Any, interval: Any
) -> Optional[Callable[[Dict[str, Any]], None]]:
    """A rate-limited ``heartbeat``-frame sender (``None`` = disabled).

    Heartbeats are only sent when the coordinator asked for them
    (``heartbeat_seconds`` in the run payload) — an older coordinator
    does one end-of-run receive and must never see an unexpected frame.
    A send failure disables further beats but never aborts the run: the
    computation and its journal are worth finishing even if the
    coordinator is gone (a retry resumes from that journal).

    Each beat carries a ``resources`` snapshot (RSS/CPU/GC, see
    :class:`repro.telemetry.ResourceSampler`) next to the progress
    fields.  The key is additive and version-tolerant both ways: an
    old coordinator ignores it, and beats from an old worker simply
    lack it.  Snapshots are taken only for beats that actually go on
    the wire (the rate limit fires first), so the cost is bounded by
    ``heartbeat_seconds``, not by progress cadence.
    """
    if not isinstance(interval, (int, float)) or interval <= 0:
        return None
    from ..telemetry import ResourceSampler

    sampler = ResourceSampler()
    state = {"last": float("-inf"), "dead": False}

    def send(info: Dict[str, Any]) -> None:
        if state["dead"]:
            return
        now = time.monotonic()
        if now - state["last"] < interval:
            return
        state["last"] = now
        beat = {"job": job, **info}
        try:
            beat["resources"] = sampler.snapshot()
        except Exception:  # pragma: no cover - OS accounting failure
            pass  # liveness must never depend on resource accounting
        try:
            stream.send("heartbeat", beat)
        except OSError:
            state["dead"] = True
            logger.warning(
                "worker: heartbeat for job %r undeliverable; continuing "
                "the run without beats (journal survives for resume)",
                job,
            )

    return send


def _serve_connection(stream: MessageStream, directory: str) -> str:
    """Serve one connection; returns ``"shutdown"`` to stop the server."""
    message_type, payload = stream.receive()
    if message_type != "hello":
        raise ProtocolError(
            f"expected hello to open the connection, got {message_type!r}"
        )
    check_hello(payload)
    stream.send("hello", hello_payload())
    while True:
        message_type, payload = stream.receive()
        if message_type == "ping":
            stream.send("pong", {})
        elif message_type == "shutdown":
            stream.send("bye", {})
            return "shutdown"
        elif message_type == "run":
            job = payload.get("job") if isinstance(payload, dict) else None
            logger.info("worker: run job=%r", job)
            sender = _heartbeat_sender(
                stream,
                job,
                payload.get("heartbeat_seconds")
                if isinstance(payload, dict) else None,
            )
            stream.send("result", run_request(
                directory, payload, heartbeat=sender
            ))
        else:
            raise ProtocolError(
                f"unexpected {message_type!r} message from coordinator"
            )


def serve(
    directory: str,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: Optional[int] = None,
    ready=None,
) -> None:
    """Serve shard runs until a ``shutdown`` message (or request cap).

    ``port=0`` binds an ephemeral port; ``ready`` (when given) is
    called once with the bound ``(host, port)`` — the CLI prints it so
    scripts can discover the address.  One connection is served at a
    time: a worker process is one execution lane, parallelism comes
    from running several workers.
    """
    os.makedirs(directory, exist_ok=True)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(8)
    bound = listener.getsockname()
    logger.info("shard-worker listening on %s:%d dir=%s",
                bound[0], bound[1], directory)
    if ready is not None:
        ready(bound)
    served = 0
    try:
        while max_requests is None or served < max_requests:
            connection, peer = listener.accept()
            served += 1
            stream = MessageStream(connection)
            try:
                verdict = _serve_connection(stream, directory)
                if verdict == "shutdown":
                    return
            except ProtocolError as error:
                logger.error(
                    "worker: rejected connection from %s: %s", peer, error
                )
                _best_effort_error(stream, "ProtocolError", str(error))
            except ReproError as error:
                logger.error("worker: request from %s failed: %r",
                             peer, error)
                _best_effort_error(stream, type(error).__name__, str(error))
            except ConnectionError as error:
                logger.warning("worker: connection from %s dropped: %r",
                               peer, error)
            finally:
                stream.close()
    finally:
        listener.close()


def _best_effort_error(
    stream: MessageStream, kind: str, message: str
) -> None:
    try:
        stream.send("error", {"kind": kind, "message": message})
    except OSError:
        pass
