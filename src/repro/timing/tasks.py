"""Task-model extraction from flattened activations.

Every active leaf process becomes a :class:`Task`.  The activation
period is inherited from the nearest enclosing problem cluster carrying
a ``period`` attribute (the paper annotates the minimal output period on
the application: 240 ns for the game console, 300 ns for the TV
decoder); processes marked ``negligible`` are excluded from utilisation
estimation, exactly as the paper neglects the authentication and
controller processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..activation import FlatProblem
from ..spec import SpecificationGraph
from ..errors import TimingError


class Task:
    """One periodic task derived from an active leaf process."""

    __slots__ = ("name", "period", "negligible")

    def __init__(self, name: str, period: Optional[float], negligible: bool) -> None:
        self.name = name
        #: Activation period, or ``None`` when the process is unconstrained.
        self.period = period
        #: Excluded from utilisation estimation when True.
        self.negligible = negligible

    @property
    def loaded(self) -> bool:
        """True when the task contributes to utilisation estimates."""
        return self.period is not None and not self.negligible

    def utilization(self, latency: float) -> float:
        """Utilisation contribution for a given core execution time."""
        if not self.loaded:
            return 0.0
        assert self.period is not None
        if self.period <= 0:
            raise TimingError(
                f"task {self.name!r}: period must be positive"
            )
        return latency / self.period

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, period={self.period}, "
            f"negligible={self.negligible})"
        )


def task_set(spec: SpecificationGraph, flat: FlatProblem) -> Dict[str, Task]:
    """Tasks of all active leaves of ``flat``, keyed by process name."""
    timing = spec.process_timing()
    tasks: Dict[str, Task] = {}
    for leaf in flat.leaves:
        period, negligible = timing[leaf]
        if period is not None and period <= 0:
            raise TimingError(
                f"process {leaf!r}: inherited period must be positive, "
                f"got {period}"
            )
        tasks[leaf] = Task(leaf, period, negligible)
    return tasks


def loaded_tasks(spec: SpecificationGraph, flat: FlatProblem) -> List[Task]:
    """Only the tasks that carry load (periodic and not negligible)."""
    return [t for t in task_set(spec, flat).values() if t.loaded]
