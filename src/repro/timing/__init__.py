"""Performance substrate: task extraction, utilisation, RM bounds, scheduling."""

from .liu_layland import (
    ASYMPTOTIC_BOUND,
    PAPER_UTILIZATION_BOUND,
    liu_layland_bound,
    rm_schedulable,
)
from .list_scheduler import (
    Schedule,
    ScheduleEntry,
    list_schedule,
    makespan_of,
    schedule_meets_periods,
)
from .tasks import Task, loaded_tasks, task_set
from .utilization import (
    meets_utilization_bound,
    utilization_by_resource,
    utilization_violations,
)

__all__ = [
    "ASYMPTOTIC_BOUND",
    "PAPER_UTILIZATION_BOUND",
    "Schedule",
    "ScheduleEntry",
    "Task",
    "list_schedule",
    "liu_layland_bound",
    "loaded_tasks",
    "makespan_of",
    "meets_utilization_bound",
    "rm_schedulable",
    "schedule_meets_periods",
    "task_set",
    "utilization_by_resource",
    "utilization_violations",
]
