"""Per-resource utilisation estimation.

Section 5 of the paper: "we define a maximal processor utilization of
69%.  If the estimated utilization exceeds this upper bound, we reject
the implementation as infeasible."  Utilisation is accumulated per
resource leaf from the core execution times of the load-carrying
processes bound to it, divided by their activation periods.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..activation import FlatProblem
from ..errors import BindingError
from ..spec import SpecificationGraph
from .liu_layland import PAPER_UTILIZATION_BOUND
from .tasks import task_set


def utilization_by_resource(
    spec: SpecificationGraph,
    flat: FlatProblem,
    binding: Mapping[str, str],
) -> Dict[str, float]:
    """Utilisation per resource leaf under ``binding``.

    ``binding`` maps every active process to a resource leaf; processes
    missing from the binding raise :class:`~repro.errors.BindingError`.
    """
    tasks = task_set(spec, flat)
    result: Dict[str, float] = {}
    for leaf, task in tasks.items():
        resource = binding.get(leaf)
        if resource is None:
            raise BindingError(f"process {leaf!r} is unbound")
        if not task.loaded:
            continue
        latency = spec.mappings.latency(leaf, resource)
        result[resource] = result.get(resource, 0.0) + task.utilization(
            latency
        )
    return result


def utilization_violations(
    spec: SpecificationGraph,
    flat: FlatProblem,
    binding: Mapping[str, str],
    bound: float = PAPER_UTILIZATION_BOUND,
) -> List[str]:
    """Human-readable utilisation-bound violations (empty = accepted)."""
    violations = []
    for resource, value in sorted(
        utilization_by_resource(spec, flat, binding).items()
    ):
        if value > bound + 1e-12:
            violations.append(
                f"resource {resource!r}: utilisation {value:.3f} exceeds "
                f"bound {bound:.2f}"
            )
    return violations


def meets_utilization_bound(
    spec: SpecificationGraph,
    flat: FlatProblem,
    binding: Mapping[str, str],
    bound: float = PAPER_UTILIZATION_BOUND,
) -> bool:
    """The paper's accept/reject performance test."""
    return not utilization_violations(spec, flat, binding, bound)
