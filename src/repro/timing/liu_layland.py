"""Liu/Layland rate-monotonic schedulability bounds.

The paper "quickly estimate[s] the processor utilization and use[s] the
69% limit as defined in [Liu & Layland 1973] to accept or reject
implementations".  The 69% figure is the asymptotic limit
``lim_{n->inf} n(2^{1/n}-1) = ln 2 ~ 0.6931``; this module provides the
exact per-task-count bound as well.
"""

from __future__ import annotations

import math

#: The asymptotic utilisation limit used by the paper (Section 5).
PAPER_UTILIZATION_BOUND = 0.69

#: The exact asymptotic limit ``ln 2``.
ASYMPTOTIC_BOUND = math.log(2.0)


def liu_layland_bound(n: int) -> float:
    """The exact RM utilisation bound ``n (2^{1/n} - 1)`` for ``n`` tasks.

    ``n == 0`` returns 1.0 (an empty task set is trivially schedulable);
    negative ``n`` raises :class:`ValueError`.
    """
    if n < 0:
        raise ValueError(f"task count must be non-negative, got {n}")
    if n == 0:
        return 1.0
    return n * (2.0 ** (1.0 / n) - 1.0)


def rm_schedulable(utilization: float, n: int, exact: bool = False) -> bool:
    """Sufficient RM schedulability test for total ``utilization``.

    With ``exact=False`` (the paper's mode) the fixed 69% limit is used
    regardless of the task count; with ``exact=True`` the per-count
    bound :func:`liu_layland_bound` is used, which is less pessimistic
    for small task sets.
    """
    bound = liu_layland_bound(n) if exact else PAPER_UTILIZATION_BOUND
    return utilization <= bound + 1e-12
