"""Exact static list scheduling of a flattened activation.

The paper leaves exact scheduling as future work and uses the 69%
utilisation estimate instead; it cites Pop et al. (non-preemptive static
scheduling of process graphs) as a candidate technique.  This module
implements that extension: a deterministic non-preemptive list scheduler
over the flattened dependence graph, used by the ablation bench to
compare the quick estimate against an exact one-period schedulability
check.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Mapping, Tuple

from ..activation import FlatProblem
from ..errors import BindingError, TimingError
from ..spec import SpecificationGraph
from .tasks import task_set

logger = logging.getLogger(__name__)


class ScheduleEntry:
    """One scheduled process execution."""

    __slots__ = ("process", "resource", "start", "finish")

    def __init__(self, process: str, resource: str, start: float, finish: float) -> None:
        self.process = process
        self.resource = resource
        self.start = start
        self.finish = finish

    def __repr__(self) -> str:
        return (
            f"ScheduleEntry({self.process!r} on {self.resource!r}: "
            f"[{self.start}, {self.finish}))"
        )


class Schedule:
    """A complete static schedule of one activation period."""

    def __init__(self, entries: List[ScheduleEntry]) -> None:
        self.entries = entries

    @property
    def makespan(self) -> float:
        """Completion time of the last process (0 for empty schedules)."""
        return max((e.finish for e in self.entries), default=0.0)

    def by_resource(self) -> Dict[str, List[ScheduleEntry]]:
        """Entries grouped by resource, each group sorted by start time."""
        groups: Dict[str, List[ScheduleEntry]] = {}
        for entry in self.entries:
            groups.setdefault(entry.resource, []).append(entry)
        for group in groups.values():
            group.sort(key=lambda e: e.start)
        return groups

    def entry(self, process: str) -> ScheduleEntry:
        """The entry of ``process`` (raises :class:`KeyError` if absent)."""
        for candidate in self.entries:
            if candidate.process == process:
                return candidate
        raise KeyError(process)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"Schedule(|entries|={len(self)}, makespan={self.makespan})"


def list_schedule(
    spec: SpecificationGraph,
    flat: FlatProblem,
    binding: Mapping[str, str],
    comm_delay: float = 0.0,
) -> Schedule:
    """Non-preemptive list schedule of ``flat`` under ``binding``.

    Processes become ready when all predecessors have finished (plus
    ``comm_delay`` when predecessor and successor run on different
    resources — the paper's case study assumes zero external
    communication latency).  Among ready processes the one with the
    longest critical path is scheduled first (HLFET order).

    Raises :class:`~repro.errors.TimingError` on dependence cycles and
    :class:`~repro.errors.BindingError` on unbound processes.
    """
    for leaf in flat.leaves:
        if leaf not in binding:
            raise BindingError(f"process {leaf!r} is unbound")
    successors: Dict[str, List[str]] = {leaf: [] for leaf in flat.leaves}
    in_degree: Dict[str, int] = {leaf: 0 for leaf in flat.leaves}
    for src, dst in flat.edges:
        successors[src].append(dst)
        in_degree[dst] += 1

    latency = {
        leaf: spec.mappings.latency(leaf, binding[leaf])
        for leaf in flat.leaves
    }

    # Critical-path priorities (longest path to a sink, inclusive).
    priority: Dict[str, float] = {}

    def compute_priority(node: str, on_stack: Tuple[str, ...]) -> float:
        if node in on_stack:
            raise TimingError(
                f"dependence cycle through {node!r}; cannot schedule"
            )
        cached = priority.get(node)
        if cached is not None:
            return cached
        downstream = max(
            (
                compute_priority(nxt, on_stack + (node,))
                for nxt in successors[node]
            ),
            default=0.0,
        )
        priority[node] = latency[node] + downstream
        return priority[node]

    for leaf in flat.leaves:
        compute_priority(leaf, ())

    ready = [leaf for leaf in flat.leaves if in_degree[leaf] == 0]
    resource_free: Dict[str, float] = {}
    finish_time: Dict[str, float] = {}
    entries: List[ScheduleEntry] = []
    scheduled = 0
    while ready:
        ready.sort(key=lambda n: (-priority[n], n))
        node = ready.pop(0)
        resource = binding[node]
        data_ready = 0.0
        for src, dst in flat.edges:
            if dst != node:
                continue
            arrival = finish_time[src]
            if binding[src] != resource:
                arrival += comm_delay
            data_ready = max(data_ready, arrival)
        start = max(data_ready, resource_free.get(resource, 0.0))
        finish = start + latency[node]
        resource_free[resource] = finish
        finish_time[node] = finish
        entries.append(ScheduleEntry(node, resource, start, finish))
        scheduled += 1
        for nxt in successors[node]:
            in_degree[nxt] -= 1
            if in_degree[nxt] == 0:
                ready.append(nxt)
    if scheduled != len(flat.leaves):
        raise TimingError("dependence cycle detected; cannot schedule")
    return Schedule(entries)


def _drop_negligible(flat: FlatProblem, tasks) -> FlatProblem:
    """Reduced view without negligible processes.

    Negligible processes (authentication, controllers) execute at
    start-up or sporadically — the paper excludes them from the
    periodic load.  Dependencies through a dropped node are preserved
    transitively so the ordering of the remaining processes survives.
    """
    keep = tuple(
        leaf for leaf in flat.leaves if not tasks[leaf].negligible
    )
    dropped = {leaf for leaf in flat.leaves if tasks[leaf].negligible}
    edges = list(flat.edges)
    changed = True
    while changed:
        changed = False
        for node in list(dropped):
            incoming = [(s, d) for (s, d) in edges if d == node]
            outgoing = [(s, d) for (s, d) in edges if s == node]
            bridged = [
                (s, d2)
                for (s, _) in incoming
                for (_, d2) in outgoing
                if s != d2
            ]
            remaining = [
                (s, d) for (s, d) in edges if s != node and d != node
            ]
            if len(remaining) + len(bridged) != len(edges):
                changed = True
            edges = remaining + [
                e for e in bridged if e not in remaining
            ]
            dropped.discard(node)
    unique_edges = tuple(dict.fromkeys(edges))
    return FlatProblem(
        keep, unique_edges, dict(flat.selection), flat.activation
    )


def schedule_meets_periods(
    spec: SpecificationGraph,
    flat: FlatProblem,
    binding: Mapping[str, str],
    comm_delay: float = 0.0,
    include_negligible: bool = False,
) -> bool:
    """Exact one-period schedulability check.

    The schedule is accepted when every load-carrying process finishes
    within its activation period.  Negligible processes are excluded
    from the periodic schedule by default (the paper amortises
    authentication/controller work away); pass
    ``include_negligible=True`` to count them.  This is the exact
    counterpart of the utilisation estimate; the ablation bench
    compares the two.
    """
    tasks = task_set(spec, flat)
    if not include_negligible:
        flat = _drop_negligible(flat, tasks)
    schedule = list_schedule(spec, flat, binding, comm_delay)
    for process in flat.leaves:
        task = tasks[process]
        if task.period is None or task.negligible:
            continue
        if schedule.entry(process).finish > task.period + 1e-9:
            logger.debug(
                "schedule rejected: %s finishes at %g past period %g",
                process,
                schedule.entry(process).finish,
                task.period,
            )
            return False
    return True


def makespan_of(
    spec: SpecificationGraph,
    flat: FlatProblem,
    binding: Mapping[str, str],
    comm_delay: float = 0.0,
) -> float:
    """Convenience wrapper returning only the schedule makespan."""
    return list_schedule(spec, flat, binding, comm_delay).makespan
