"""Content addressing of specifications and binding-verdict keys.

The warm-start store never trusts a cached verdict because of where it
was found — it trusts it because of *what it is keyed by*.  Two layers
of digests make stale reuse structurally impossible:

* the **namespace digest** addresses the specification with every
  locally-patchable number removed: mapping latencies and architecture
  unit costs (exactly the fields :mod:`repro.analysis.patch` can
  rewrite).  Edits to those fields keep the namespace, so verdicts
  survive a latency sweep; any *structural* edit (a new unit, a moved
  cluster, a changed period) lands in a fresh namespace and starts
  cold — the conservative whole-spec fallback is automatic, not a
  code path;

* the **key digest** addresses one binding sub-problem by value: every
  input :meth:`repro.compiled.CompiledEvaluator._compute_verdict`
  reads — the run parameters, the ECS selection, the relevance
  projection (``usable & ecs.support``) and the projected per-leaf
  option records *including their utilisation increments* (which carry
  the latencies).  A latency edit changes the increments, hence the
  digest, hence the old entry is simply never looked up again.  For
  the two modes whose verdicts read the specification beyond the
  projection (``timing_mode="schedule"`` scheduling checks,
  ``backend="sat"`` whole-allocation encodings) the digest folds in
  the full spec digest and the full usable-unit set — maximally
  conservative, still never wrong.

Consequence: :mod:`repro.store.diff` invalidation is pure garbage
collection.  Correctness never depends on it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Tuple

#: Version of the key-digest scheme.  Bump on any change to what a key
#: or verdict payload encodes; old entries then become unreachable
#: (version skew is a cache miss, never a wrong answer).
KEY_VERSION = 1


def _canonical(document: Any) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _sha(document: Any, length: int) -> str:
    return hashlib.sha256(
        _canonical(document).encode("utf-8")
    ).hexdigest()[:length]


def full_spec_digest(spec) -> str:
    """The distributed-layer digest of the complete canonical document."""
    from ..io import spec_to_dict
    from ..io.shard_io import spec_digest

    return spec_digest(spec_to_dict(spec))


def _strip_scope_costs(scope_doc: Dict[str, Any]) -> None:
    for vertex in scope_doc.get("vertices", ()):
        attrs = vertex.get("attrs")
        if attrs:
            attrs.pop("cost", None)
    for interface in scope_doc.get("interfaces", ()):
        for cluster in interface.get("clusters", ()):
            attrs = cluster.get("attrs")
            if attrs:
                attrs.pop("cost", None)
            _strip_scope_costs(cluster)


def stripped_spec_doc(document: Dict[str, Any]) -> Dict[str, Any]:
    """A deep copy of a spec document with the locally-patchable
    numbers removed: mapping ``latency`` fields and architecture unit
    ``cost`` attributes (the two things :mod:`repro.analysis.patch`
    can rewrite)."""
    doc = json.loads(json.dumps(document))
    for mapping in doc.get("mappings", ()):
        mapping.pop("latency", None)
    architecture = doc.get("architecture")
    if isinstance(architecture, dict):
        _strip_scope_costs(architecture)
    return doc


def namespace_digest(spec) -> str:
    """16-hex-char address of the specification's *structure*.

    Stable under latency and unit-cost edits; changed by anything
    else.  One store namespace holds exactly one structure's verdicts.
    """
    from ..io import spec_to_dict

    return _sha(stripped_spec_doc(spec_to_dict(spec)), 16)


def key_digest(evaluator, info, usable: int) -> Tuple[str, Dict[str, Any]]:
    """Content digest + dependency metadata of one verdict key.

    ``evaluator`` is a :class:`repro.compiled.CompiledEvaluator`,
    ``info`` the :class:`~repro.compiled.spec.EcsInfo` being solved and
    ``usable`` the candidate's usable-unit mask.  Returns
    ``(digest, deps)`` where ``deps`` names the leaves and projected
    units the verdict depends on (the handle precise invalidation
    grabs; see :mod:`repro.store.diff`).

    Within one namespace the unit bit order, top-node indices and
    interface ids are deterministic functions of the structure, so the
    raw indices in :class:`~repro.compiled.spec.OptionRec` are stable
    digest material.
    """
    cs = evaluator.cs
    proj = usable & info.support
    proj_names = sorted(cs.names_of(proj))
    domains = []
    for recs in info.options:
        domains.append(
            [
                [
                    rec.resource,
                    rec.owner_bit,
                    rec.owner_top,
                    rec.iface_id,
                    1 if rec.loaded else 0,
                    rec.util_increment,
                ]
                for rec in recs
                if usable >> rec.owner_bit & 1
            ]
        )
    payload = [
        KEY_VERSION,
        [evaluator.util_bound, evaluator.backend, evaluator.timing_mode],
        sorted(info.selection.items()),
        list(info.leaves),
        proj_names,
        domains,
    ]
    if evaluator.timing_mode == "schedule" or evaluator.backend == "sat":
        # These verdicts read the specification beyond the projection
        # (exact scheduling; whole-allocation SAT encodings), so the
        # key pins the complete document and the complete usable set.
        # The full digest is a pure function of the frozen spec, so it
        # is computed once and memoised on the compiled spec (the same
        # lifetime as ``_warm_namespace``).
        full = getattr(cs, "_warm_full_digest", None)
        if full is None:
            full = full_spec_digest(evaluator.spec)
            cs._warm_full_digest = full
        payload.append(full)
        payload.append(sorted(cs.names_of(usable)))
    deps = {"l": list(info.leaves), "u": proj_names}
    return _sha(payload, 32), deps
