"""Structural spec diffing and precise store invalidation.

Content addressing (:mod:`repro.store.digest`) already guarantees that
an edited specification never *reads* a stale verdict — the edit
changes the key digests, so old entries are simply unreachable.  What
diffing adds is garbage collection with a proof obligation inverted:
instead of "which entries are still valid?" (dangerous to get wrong)
it answers "which entries can this edit possibly have touched?" and
drops exactly those, keeping the store from accumulating one dead
generation per latency sweep.

The classification mirrors what :mod:`repro.analysis.patch` can
express:

``identical``
    Same canonical document — nothing to do.
``local``
    Same structure (equal namespace digests), only mapping latencies
    and/or unit costs differ.  Costs never enter a verdict, so
    cost-only edits invalidate nothing.  A latency edit of mapping
    ``(process, resource)`` can only have touched entries whose
    dependency metadata lists both the process and the unit owning the
    resource — everything else is kept.
``structural``
    Different namespace digests.  The old namespace's entries are
    unreachable from the new spec by construction — the conservative
    whole-spec fallback is the addressing scheme itself, and nothing
    is dropped here (``gc`` evicts dead namespaces by size budget).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..io import spec_to_dict
from .digest import namespace_digest
from .store import WarmStore


class SpecEdit:
    """The classified difference between two frozen specifications."""

    __slots__ = (
        "kind",
        "old_namespace",
        "new_namespace",
        "latency_edits",
        "cost_edits",
    )

    def __init__(
        self,
        kind: str,
        old_namespace: str,
        new_namespace: str,
        latency_edits: List[Tuple[str, str]],
        cost_edits: List[str],
    ) -> None:
        #: ``"identical"``, ``"local"`` or ``"structural"``.
        self.kind = kind
        self.old_namespace = old_namespace
        self.new_namespace = new_namespace
        #: ``(process, resource)`` pairs whose mapping latency changed.
        self.latency_edits = latency_edits
        #: Unit names whose allocation cost changed.
        self.cost_edits = cost_edits

    def __repr__(self) -> str:
        return (
            f"SpecEdit(kind={self.kind!r}, "
            f"latency_edits={self.latency_edits!r}, "
            f"cost_edits={self.cost_edits!r})"
        )


def _scope_costs(scope_doc: Dict, out: Dict[str, float]) -> None:
    for vertex in scope_doc.get("vertices", ()):
        attrs = vertex.get("attrs") or {}
        if "cost" in attrs:
            out[vertex["name"]] = attrs["cost"]
    for interface in scope_doc.get("interfaces", ()):
        for cluster in interface.get("clusters", ()):
            attrs = cluster.get("attrs") or {}
            if "cost" in attrs:
                out[cluster["name"]] = attrs["cost"]
            _scope_costs(cluster, out)


def diff_specs(old_spec, new_spec) -> SpecEdit:
    """Classify the edit from ``old_spec`` to ``new_spec``."""
    old_doc = spec_to_dict(old_spec)
    new_doc = spec_to_dict(new_spec)
    old_ns = namespace_digest(old_spec)
    new_ns = namespace_digest(new_spec)
    if old_ns != new_ns:
        return SpecEdit("structural", old_ns, new_ns, [], [])
    latency_edits: List[Tuple[str, str]] = []
    old_lat = {
        (m["process"], m["resource"]): m.get("latency")
        for m in old_doc.get("mappings", ())
    }
    for mapping in new_doc.get("mappings", ()):
        key = (mapping["process"], mapping["resource"])
        if old_lat.get(key) != mapping.get("latency"):
            latency_edits.append(key)
    old_costs: Dict[str, float] = {}
    new_costs: Dict[str, float] = {}
    _scope_costs(old_doc.get("architecture", {}), old_costs)
    _scope_costs(new_doc.get("architecture", {}), new_costs)
    cost_edits = sorted(
        name
        for name in set(old_costs) | set(new_costs)
        if old_costs.get(name) != new_costs.get(name)
    )
    kind = "local" if latency_edits or cost_edits else "identical"
    return SpecEdit(kind, old_ns, new_ns, sorted(latency_edits), cost_edits)


def touched_keys(store: WarmStore, edit: SpecEdit, old_spec) -> List[str]:
    """Key digests in the old namespace the edit can have touched.

    A latency edit of ``(process, resource)`` reaches a verdict only
    through the utilisation increment of that mapping option, which the
    option carries only if the verdict's projection contains the unit
    owning ``resource`` *and* its ECS binds ``process`` — exactly the
    ``deps`` metadata each entry records.  Cost edits reach nothing
    (costs order the enumeration; they never enter a verdict).
    """
    if edit.kind != "local" or not edit.latency_edits:
        return []
    unit_of_leaf = old_spec.units.unit_of_leaf
    pairs = [
        (process, unit_of_leaf.get(resource))
        for process, resource in edit.latency_edits
    ]
    ns = store.namespace(edit.old_namespace)
    keys: List[str] = []
    for key, (deps, _payload) in ns.entries.items():
        leaves = deps.get("l") or ()
        units = deps.get("u") or ()
        for process, unit in pairs:
            if unit is None:
                # A latency edit on a resource no unit owns cannot have
                # produced any option record; conservatively drop the
                # entry anyway if the process appears.
                if process in leaves:
                    keys.append(key)
                    break
            elif process in leaves and unit in units:
                keys.append(key)
                break
    return keys


def invalidate(
    store: WarmStore, old_spec, new_spec, edit: Optional[SpecEdit] = None
) -> Dict[str, object]:
    """Drop every store entry the edit from old to new can have touched.

    Precise garbage collection, never a correctness mechanism (see the
    module docstring).  Returns a small report:
    ``{"kind", "invalidated", "namespace"}``.
    """
    if edit is None:
        edit = diff_specs(old_spec, new_spec)
    dropped = 0
    if edit.kind == "local":
        keys = touched_keys(store, edit, old_spec)
        if keys:
            dropped = store.drop(edit.old_namespace, keys)
    return {
        "kind": edit.kind,
        "invalidated": dropped,
        "namespace": edit.old_namespace,
    }
