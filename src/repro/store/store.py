"""The append-only, CRC-checksummed warm-start segment store.

Layout (see ``docs/formats.md``)::

    <root>/
      ns-<namespace digest>/        one directory per spec structure
        seg-<pid>-<n>.jsonl         append-only segments
        seg-compact-<n>.jsonl       compaction output

Every segment line is a :mod:`repro.resilience.journal` record —
``{"t": type, "p": payload, "c": crc32}`` — so the store inherits the
checkpoint substrate's durability properties: torn final lines are
harmless, bit rot fails the per-record checksum.  Unlike a checkpoint
journal, the store is a *cache*: a corrupt record is skipped (and
counted, loudly) instead of aborting the load, because the worst a
lost entry can cause is a cold re-evaluation.  The record types:

``header``
    First line of every segment: ``{"format", "version", "namespace"}``.
    A segment whose header is missing, version-skewed or from another
    namespace is ignored wholesale (counted in ``skewed_segments``).
``entry``
    One verdict: ``{"k": key digest, "deps": {"l": leaves, "u": units},
    "v": verdict payload}``.  Later segments win on duplicate keys.
``drop``
    Invalidation tombstone: ``{"k": [key digests]}`` — appended by
    :func:`repro.store.diff.invalidate`; compaction erases both the
    tombstone and its targets.

Writers append with per-process segment files (exclusive-create
naming), so service workers on one host share a store without write
interleaving.  Writes are best-effort: an ``OSError`` disables the
namespace's writer for the process lifetime and the run continues
cold-writing nothing — a full disk must never fail an exploration.

Compaction (:meth:`WarmStore.gc`) rewrites each namespace's live
entries into a single segment via temp-file + atomic rename and is
meant for quiescent stores (the ``repro cache gc`` CLI); concurrent
appenders would lose in-flight entries, never correctness.
"""

from __future__ import annotations

import logging
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..resilience.journal import _parse_line, encode_record

logger = logging.getLogger(__name__)

#: Segment-file format identifier (first record of every segment).
SEGMENT_FORMAT = "repro/warm-segment"
#: Current segment-file version.  Bumping it orphans old segments:
#: they are skipped loudly and eventually collected by ``gc``.
SEGMENT_VERSION = 1

_NS_PREFIX = "ns-"
_SEG_PREFIX = "seg-"
_SEG_SUFFIX = ".jsonl"


def _is_segment(name: str) -> bool:
    return name.startswith(_SEG_PREFIX) and name.endswith(_SEG_SUFFIX)


class _Namespace:
    """In-process view of one namespace directory (lazy-loaded)."""

    __slots__ = ("digest", "path", "entries", "_writer", "_writer_dead")

    def __init__(self, digest: str, path: str) -> None:
        self.digest = digest
        self.path = path
        #: key digest -> (deps, verdict payload)
        self.entries: Dict[str, Tuple[Dict[str, Any], Any]] = {}
        self._writer = None
        self._writer_dead = False

    # -- loading -----------------------------------------------------
    def load(self, store: "WarmStore") -> None:
        try:
            names = sorted(
                n for n in os.listdir(self.path) if _is_segment(n)
            )
        except OSError:
            return
        for name in names:
            self._load_segment(store, os.path.join(self.path, name))

    def _load_segment(self, store: "WarmStore", path: str) -> None:
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as error:
            logger.warning("warm store: cannot read %s: %s", path, error)
            store.skewed_segments += 1
            return
        lines = data.splitlines(keepends=True)
        if not lines:
            return
        head = _parse_line(lines[0])
        if (
            head is None
            or head[0] != "header"
            or not isinstance(head[1], dict)
            or head[1].get("format") != SEGMENT_FORMAT
            or head[1].get("version") != SEGMENT_VERSION
            or head[1].get("namespace") != self.digest
        ):
            logger.warning(
                "warm store: ignoring segment %s (missing, corrupt or "
                "version-skewed header)",
                path,
            )
            store.skewed_segments += 1
            return
        corrupt = 0
        for index, line in enumerate(lines[1:], start=1):
            parsed = _parse_line(line)
            if parsed is None:
                if index == len(lines) - 1:
                    continue  # torn final line (killed writer)
                corrupt += 1
                continue
            rtype, payload = parsed
            if rtype == "entry" and isinstance(payload, dict):
                key = payload.get("k")
                if isinstance(key, str):
                    self.entries[key] = (
                        payload.get("deps") or {},
                        payload.get("v"),
                    )
            elif rtype == "drop" and isinstance(payload, dict):
                for key in payload.get("k", ()):
                    self.entries.pop(key, None)
        if corrupt:
            logger.warning(
                "warm store: segment %s has %d corrupt record(s); "
                "skipped (affected keys re-evaluate cold)",
                path,
                corrupt,
            )
            store.corrupt_entries += corrupt

    # -- appending ---------------------------------------------------
    def _open_writer(self):
        if self._writer is not None or self._writer_dead:
            return self._writer
        os.makedirs(self.path, exist_ok=True)
        pid = os.getpid()
        for attempt in range(1000):
            name = f"{_SEG_PREFIX}{pid}-{attempt}{_SEG_SUFFIX}"
            path = os.path.join(self.path, name)
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                continue
            except OSError as error:
                logger.warning(
                    "warm store: cannot open segment in %s: %s "
                    "(persistence disabled for this process)",
                    self.path,
                    error,
                )
                self._writer_dead = True
                return None
            self._writer = os.fdopen(fd, "w", encoding="utf-8")
            self._append(
                "header",
                {
                    "format": SEGMENT_FORMAT,
                    "version": SEGMENT_VERSION,
                    "namespace": self.digest,
                },
            )
            return self._writer
        self._writer_dead = True
        return None

    def _append(self, rtype: str, payload: Any) -> bool:
        writer = self._open_writer()
        if writer is None:
            return False
        try:
            writer.write(encode_record(rtype, payload))
            writer.flush()
            return True
        except (OSError, ValueError) as error:
            logger.warning(
                "warm store: append to namespace %s failed: %s "
                "(persistence disabled for this process)",
                self.digest,
                error,
            )
            self._writer_dead = True
            try:
                writer.close()
            except OSError:
                pass
            self._writer = None
            return False

    def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except OSError:
                pass
            self._writer = None


class WarmStore:
    """A content-addressed verdict store rooted at one directory.

    Use :func:`open_store` rather than constructing directly — stores
    are interned per absolute path so every run, job and evaluator in
    one process shares a single in-memory view (and its counters).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._namespaces: Dict[str, _Namespace] = {}
        #: Cache-protocol counters (process-lifetime, monotone).
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Entries whose CRC or payload failed validation on load.
        self.corrupt_entries = 0
        #: Segments ignored wholesale (bad/missing/skewed header).
        self.skewed_segments = 0
        #: Entries dropped by diff-based invalidation.
        self.invalidated = 0
        #: Namespaces evicted by ``gc(max_bytes=...)``.
        self.evicted = 0

    # -- namespaces --------------------------------------------------
    def namespace(self, digest: str) -> _Namespace:
        ns = self._namespaces.get(digest)
        if ns is None:
            ns = _Namespace(
                digest, os.path.join(self.root, _NS_PREFIX + digest)
            )
            ns.load(self)
            self._namespaces[digest] = ns
        return ns

    def namespace_digests(self) -> List[str]:
        """Digests of every namespace present on disk."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            n[len(_NS_PREFIX):] for n in names if n.startswith(_NS_PREFIX)
        )

    def binding(self, digest: str) -> "WarmBinding":
        """An evaluator's handle into one namespace."""
        return WarmBinding(self, digest)

    # -- cache protocol ----------------------------------------------
    def get(self, digest: str, key: str) -> Any:
        entry = self.namespace(digest).entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry[1]

    def put(
        self, digest: str, key: str, deps: Dict[str, Any], payload: Any
    ) -> None:
        ns = self.namespace(digest)
        if key in ns.entries:
            return
        ns.entries[key] = (deps, payload)
        if ns._append("entry", {"k": key, "deps": deps, "v": payload}):
            self.writes += 1

    def drop(self, digest: str, keys: Iterable[str]) -> int:
        """Invalidate ``keys`` in a namespace (tombstone + in-memory).

        Returns the number of entries actually removed."""
        ns = self.namespace(digest)
        removed = [k for k in keys if ns.entries.pop(k, None) is not None]
        if removed:
            ns._append("drop", {"k": sorted(removed)})
            self.invalidated += len(removed)
        return len(removed)

    # -- maintenance -------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_entries": self.corrupt_entries,
            "skewed_segments": self.skewed_segments,
            "invalidated": self.invalidated,
            "evicted": self.evicted,
        }

    def stats(self) -> Dict[str, Any]:
        """Entry/byte accounting per namespace plus the counters."""
        namespaces = []
        total_entries = 0
        total_bytes = 0
        for digest in self.namespace_digests():
            ns = self.namespace(digest)
            size = _dir_bytes(ns.path)
            namespaces.append(
                {
                    "namespace": digest,
                    "entries": len(ns.entries),
                    "segments": _segment_count(ns.path),
                    "bytes": size,
                }
            )
            total_entries += len(ns.entries)
            total_bytes += size
        return {
            "root": self.root,
            "namespaces": namespaces,
            "entries": total_entries,
            "bytes": total_bytes,
            "counters": self.counters(),
        }

    def verify(self) -> Dict[str, Any]:
        """Strict CRC + header sweep of every segment on disk.

        Unlike loading (which tolerates damage by design), ``verify``
        reports it: the returned document lists every corrupt record
        and skewed segment so operators can tell bit rot from a clean
        store.  ``ok`` is ``False`` when anything failed.
        """
        problems: List[Dict[str, Any]] = []
        checked_segments = 0
        checked_entries = 0
        for digest in self.namespace_digests():
            ns_path = os.path.join(self.root, _NS_PREFIX + digest)
            try:
                names = sorted(
                    n for n in os.listdir(ns_path) if _is_segment(n)
                )
            except OSError as error:
                problems.append(
                    {"kind": "unreadable_namespace",
                     "namespace": digest, "error": str(error)}
                )
                continue
            for name in names:
                path = os.path.join(ns_path, name)
                checked_segments += 1
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError as error:
                    problems.append(
                        {"kind": "unreadable_segment", "segment": path,
                         "error": str(error)}
                    )
                    continue
                lines = data.splitlines(keepends=True)
                head = _parse_line(lines[0]) if lines else None
                if (
                    head is None
                    or head[0] != "header"
                    or not isinstance(head[1], dict)
                    or head[1].get("format") != SEGMENT_FORMAT
                    or head[1].get("version") != SEGMENT_VERSION
                    or head[1].get("namespace") != digest
                ):
                    problems.append(
                        {"kind": "skewed_segment", "segment": path}
                    )
                    continue
                for index, line in enumerate(lines[1:], start=1):
                    if _parse_line(line) is None:
                        if index == len(lines) - 1:
                            continue  # torn tail: benign
                        problems.append(
                            {"kind": "corrupt_record", "segment": path,
                             "line": index + 1}
                        )
                    else:
                        checked_entries += 1
        return {
            "root": self.root,
            "segments": checked_segments,
            "records": checked_entries,
            "problems": problems,
            "ok": not problems,
        }

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Compact every namespace; optionally enforce a size budget.

        Each namespace's live entries are rewritten into one fresh
        segment (temp file + atomic rename), erasing tombstones,
        duplicates, corrupt records and version-skewed segments.  When
        ``max_bytes`` is given and the compacted store still exceeds
        it, whole namespaces are evicted oldest-first (by directory
        mtime) until it fits — an evicted namespace just re-evaluates
        cold.  Call on a quiescent store (no concurrent appenders).
        """
        for ns in self._namespaces.values():
            ns.close()
        compacted = 0
        for digest in self.namespace_digests():
            ns = self._namespaces.pop(digest, None)
            if ns is not None:
                ns.close()
            ns = self.namespace(digest)  # fresh load of live entries
            self._compact_namespace(ns)
            compacted += 1
        evicted: List[str] = []
        if max_bytes is not None:
            ordered = sorted(
                self.namespace_digests(),
                key=lambda d: _dir_mtime(
                    os.path.join(self.root, _NS_PREFIX + d)
                ),
            )
            while ordered and _dir_bytes(self.root) > max_bytes:
                digest = ordered.pop(0)
                ns = self._namespaces.pop(digest, None)
                if ns is not None:
                    ns.close()
                _remove_tree(os.path.join(self.root, _NS_PREFIX + digest))
                evicted.append(digest)
        self.evicted += len(evicted)
        return {
            "root": self.root,
            "compacted": compacted,
            "evicted": evicted,
            "bytes": _dir_bytes(self.root),
        }

    def _compact_namespace(self, ns: _Namespace) -> None:
        try:
            names = sorted(
                n for n in os.listdir(ns.path) if _is_segment(n)
            )
        except OSError:
            return
        seq = 0
        while True:
            out_name = f"{_SEG_PREFIX}compact-{seq}{_SEG_SUFFIX}"
            if out_name not in names:
                break
            seq += 1
        out_path = os.path.join(ns.path, out_name)
        tmp_path = out_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(
                encode_record(
                    "header",
                    {
                        "format": SEGMENT_FORMAT,
                        "version": SEGMENT_VERSION,
                        "namespace": ns.digest,
                    },
                )
            )
            for key in sorted(ns.entries):
                deps, payload = ns.entries[key]
                handle.write(
                    encode_record(
                        "entry", {"k": key, "deps": deps, "v": payload}
                    )
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, out_path)
        for name in names:
            try:
                os.unlink(os.path.join(ns.path, name))
            except OSError:
                pass

    def close(self) -> None:
        for ns in self._namespaces.values():
            ns.close()


class WarmBinding:
    """One evaluator's handle into one store namespace."""

    __slots__ = ("store", "digest")

    def __init__(self, store: WarmStore, digest: str) -> None:
        self.store = store
        self.digest = digest

    def get(self, key: str) -> Any:
        return self.store.get(self.digest, key)

    def put(self, key: str, deps: Dict[str, Any], payload: Any) -> None:
        self.store.put(self.digest, key, deps, payload)


# --- process-wide interning ------------------------------------------------

_STORES: Dict[str, WarmStore] = {}


def open_store(path: str) -> WarmStore:
    """The process-wide :class:`WarmStore` for ``path`` (interned).

    Every explore run, service job and pool worker naming the same
    directory shares one store instance, its read cache and its
    counters — the "named jobs on one host share one store" contract.
    """
    key = os.path.abspath(path)
    store = _STORES.get(key)
    if store is None:
        store = WarmStore(key)
        _STORES[key] = store
    return store


def _reset_stores() -> None:
    """Test seam: drop the process-wide intern table so a fresh
    ``open_store`` re-reads the disk state."""
    for store in _STORES.values():
        store.close()
    _STORES.clear()


# --- small filesystem helpers ----------------------------------------------

def _segment_count(path: str) -> int:
    try:
        return sum(1 for n in os.listdir(path) if _is_segment(n))
    except OSError:
        return 0


def _dir_bytes(path: str) -> int:
    total = 0
    for dirpath, _dirnames, filenames in os.walk(path):
        for name in filenames:
            try:
                total += os.path.getsize(os.path.join(dirpath, name))
            except OSError:
                pass
    return total


def _dir_mtime(path: str) -> float:
    try:
        return os.path.getmtime(path)
    except OSError:
        return 0.0


def _remove_tree(path: str) -> None:
    for dirpath, dirnames, filenames in os.walk(path, topdown=False):
        for name in filenames:
            try:
                os.unlink(os.path.join(dirpath, name))
            except OSError:
                pass
        for name in dirnames:
            try:
                os.rmdir(os.path.join(dirpath, name))
            except OSError:
                pass
    try:
        os.rmdir(path)
    except OSError:
        pass


def describe_store(document: Dict[str, Any]) -> str:
    """Human-readable one-paragraph rendering of :meth:`WarmStore.stats`."""
    lines = [
        f"warm store {document['root']}",
        f"  entries:    {document['entries']}",
        f"  bytes:      {document['bytes']}",
        f"  namespaces: {len(document['namespaces'])}",
    ]
    for ns in document["namespaces"]:
        lines.append(
            f"    {ns['namespace']}: {ns['entries']} entries, "
            f"{ns['segments']} segment(s), {ns['bytes']} bytes"
        )
    counters = document["counters"]
    lines.append(
        "  session:    "
        + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    )
    return "\n".join(lines)


__all__ = [
    "SEGMENT_FORMAT",
    "SEGMENT_VERSION",
    "WarmStore",
    "WarmBinding",
    "open_store",
    "describe_store",
]
