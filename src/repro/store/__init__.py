"""Persistent warm-start exploration: the content-addressed verdict
store (``explore(warm_store=...)``).

The compiled kernel (:mod:`repro.compiled`) memoises binding verdicts
across candidates; this package makes that memo durable across
*processes* and across *spec edits*:

* :mod:`repro.store.digest` — content addressing.  A namespace digest
  pins the specification structure (latencies and unit costs
  stripped); a key digest pins every input of one verdict.  Stale
  reuse is structurally impossible: an edit changes the digests, so
  old entries are never looked up.
* :mod:`repro.store.store` — the append-only, CRC-checksummed segment
  store with an in-process read cache, loud corruption/version-skew
  detection (corrupt ⇒ cold re-evaluation, never wrong) and atomic
  compaction/GC.
* :mod:`repro.store.diff` — structural spec diffing that maps an edit
  to the entries it can have touched and drops exactly those (precise
  GC; the conservative whole-spec fallback is the addressing itself).

Wired through ``explore(warm_store=...)``, the batched/parallel
explorer, checkpoint/resume and the exploration service (named jobs on
one host share one store).  Warm results are byte-identical to cold —
differentially tested over the randspec corpus and randomized edit
chains.  See ``docs/performance.md`` (soundness) and
``docs/formats.md`` (segment layout).
"""

from .diff import SpecEdit, diff_specs, invalidate, touched_keys
from .digest import (
    KEY_VERSION,
    full_spec_digest,
    key_digest,
    namespace_digest,
)
from .store import (
    SEGMENT_FORMAT,
    SEGMENT_VERSION,
    WarmBinding,
    WarmStore,
    describe_store,
    open_store,
)

__all__ = [
    "KEY_VERSION",
    "SEGMENT_FORMAT",
    "SEGMENT_VERSION",
    "SpecEdit",
    "WarmBinding",
    "WarmStore",
    "describe_store",
    "diff_specs",
    "full_spec_digest",
    "invalidate",
    "key_digest",
    "namespace_digest",
    "open_store",
    "touched_keys",
]
