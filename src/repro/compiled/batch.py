"""Batch-vectorized enumeration and pre-filter kernel (uint64 blocks).

The per-candidate compiled kernel (:mod:`repro.compiled.spec`) spends
most of its remaining wall-clock not in any check but in the Python
loop *around* the checks: one heap pop, one frozenset, and four or five
attribute lookups per candidate, hundreds of thousands of times.  This
module lifts the incumbent-independent front of the EXPLORE loop from
per-candidate to per-block:

* allocation masks are rows of a numpy ``uint64`` array (one word per
  candidate — the repo gates the kernel to ``unit_count <= 64``),
  thousands of candidates per block;
* the cost-ordered enumeration is produced as arrays: either fully
  *materialized* (an exact replay of the heap's float derivations over
  all ``2^n`` subsets, lexsorted by ``(cost, tie-key)``) when the extra
  space is small enough, or streamed a cost *band* at a time through
  :meth:`MaskAllocationEnumerator.next_band`;
* usability, the possible-allocation BDD, useless-communication
  pruning and the flexibility-estimate lookup run as vectorized
  bitwise/gather operations over whole blocks, dropping to the scalar
  kernel only for the memoised binding verdicts and for the per-unique
  residues a block pre-filter cannot decide (communication component
  analysis, uncached estimate values).

numpy is an *optional* accelerator: the import is guarded, every entry
point returns ``None`` when numpy is unavailable (or disabled via
``REPRO_VECTORIZE=0``), and callers fall back to the scalar kernel —
results are byte-identical either way (differentially tested).

Exactness of the materialized order
-----------------------------------
The heap stream of :class:`MaskAllocationEnumerator` yields subsets in
``(cost, index-tuple)`` order, where ``cost`` is *derivation-path*
float arithmetic, not a plain sum: subset ``(j0..jm)`` is created
either by an append from ``(j0..j_{m-1})`` (iff ``jm == j_{m-1}+1``;
``cost = parent + c[jm]``) or by a replace from ``(j0..j_{m-1}, jm-1)``
(``cost = (parent - c[jm-1]) + c[jm]``).  Each subset has exactly one
such parent, so a dynamic program over index-masks grouped by highest
bit replicates every float operation in the same left-to-right order —
the materialized costs are bit-identical to the heap's.  The tie order
(lexicographic on increasing index tuples) is encoded as a packed
2-bit-per-level key (``0`` = tuple ended, ``1`` = index present, ``2``
= absent with higher indices present), proven equivalent to Python
tuple comparison; ``lexsort`` over ``(tie-key, cost)`` then reproduces
the pop order exactly.
"""

from __future__ import annotations

import logging
import os
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from .enumerate import MaskAllocationEnumerator
from .spec import CompiledSpec

try:  # numpy is an optional accelerator, never a dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the stub in CI
    _np = None

logger = logging.getLogger(__name__)

#: Candidates per vectorized block (bounds temp-array memory; the
#: per-block Python overhead is amortised over this many candidates).
BLOCK_ROWS = 4096

#: Largest extra-unit count for which the full ``2^n`` enumeration
#: order is materialized up front (arrays of ``2^n`` rows); larger
#: spaces stream cost bands through the enumerator's band API.
MATERIALIZE_MAX_BITS_DEFAULT = 20

#: Smallest extra-unit count worth vectorizing in the serial loop.
#: Below it (< 2^12 candidates before pruning) the whole search is
#: sub-millisecond scalar and the kernel's array setup costs more
#: than it saves; overridable via ``REPRO_VECTORIZE_MIN_BITS``.
MIN_VECTOR_BITS_DEFAULT = 12


def active_numpy():
    """numpy, or ``None`` when absent or disabled (``REPRO_VECTORIZE=0``).

    Read at call time so tests (and operators) can flip the gate
    without reimporting; ``REPRO_VECTORIZE=0`` forces the scalar
    kernel, any other value (or unset) enables vectorization whenever
    numpy imports.
    """
    if _np is None:
        return None
    if os.environ.get("REPRO_VECTORIZE", "1") == "0":
        return None
    return _np


def numpy_version() -> Optional[str]:
    """The installed numpy version string, or ``None`` (gate-independent)."""
    return None if _np is None else str(_np.__version__)


def _materialize_max_bits() -> int:
    try:
        return int(os.environ.get("REPRO_MATERIALIZE_MAX_BITS", ""))
    except ValueError:
        return MATERIALIZE_MAX_BITS_DEFAULT


def _min_vector_bits() -> int:
    try:
        return int(os.environ.get("REPRO_VECTORIZE_MIN_BITS", ""))
    except ValueError:
        return MIN_VECTOR_BITS_DEFAULT


def popcount64(values):
    """Vectorized population count of a ``uint64`` array."""
    np = _np
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(values)
    v = values.copy()  # pragma: no cover - numpy < 2.0 fallback
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    v = v - ((v >> np.uint64(1)) & m1)
    v = (v & m2) + ((v >> np.uint64(2)) & m2)
    v = (v + (v >> np.uint64(4))) & m4
    return (v * np.uint64(0x0101010101010101)) >> np.uint64(56)


def _byte_tables(bit_values: Tuple[int, ...]):
    """256-entry OR-gather tables: ``tab[b][v]`` ORs ``bit_values[8b+k]``
    for every bit ``k`` set in byte value ``v``."""
    np = _np
    n = len(bit_values)
    nb = (n + 7) // 8
    tables = np.zeros((max(nb, 1), 256), dtype=np.uint64)
    v = np.arange(256)
    for j, bit in enumerate(bit_values):
        b, k = divmod(j, 8)
        tables[b][(v >> k) & 1 == 1] |= np.uint64(bit)
    return tables


def _gather_bytes(tables, masks):
    """Apply :func:`_byte_tables` to a ``uint64`` mask array."""
    np = _np
    out = np.zeros(len(masks), dtype=np.uint64)
    byte_mask = np.uint64(0xFF)
    for b in range(tables.shape[0]):
        shift = np.uint64(8 * b)
        out |= tables[b][((masks >> shift) & byte_mask).astype(np.intp)]
    return out


class BlockKernel:
    """Vectorized per-block twins of the :class:`CompiledSpec` checks.

    One kernel per compiled spec (interned via :func:`kernel_for`); all
    methods take/return numpy arrays over whole candidate blocks and
    share the spec's scalar caches for the residues they cannot decide
    vectorially, so scalar and block paths warm each other.
    """

    def __init__(self, cspec: CompiledSpec) -> None:
        np = _np
        self.cs = cspec
        nodes = cspec._bdd_nodes
        self.bdd_levels = np.array(
            [max(n[0], 0) for n in nodes], dtype=np.uint64
        )
        self.bdd_lows = np.array([max(n[1], 0) for n in nodes], dtype=np.intp)
        self.bdd_highs = np.array([max(n[2], 0) for n in nodes], dtype=np.intp)
        self.bdd_root = cspec._bdd_root
        # (bit, ancestor-mask) pairs driving the usability reduction.
        self.nested = tuple(
            (np.uint64(bit), np.uint64(anc)) for bit, anc in cspec.nested
        )
        # Usable-mask -> top-node projections, one gather table for the
        # communication units and one for the functional units.
        comm = cspec.comm_units_mask
        self.comm_top_tables = _byte_tables(
            tuple(
                cspec.unit_top_bit[i] if comm >> i & 1 else 0
                for i in range(cspec.unit_count)
            )
        )
        self.func_top_tables = _byte_tables(
            tuple(
                0 if comm >> i & 1 else cspec.unit_top_bit[i]
                for i in range(cspec.unit_count)
            )
        )
        self.root_support = np.uint64(cspec.root_support)

    # -- usability ------------------------------------------------------
    def usable(self, masks):
        """Vectorized :meth:`CompiledSpec.usable_mask` over a block."""
        usable = masks.copy()
        for bit, anc in self.nested:
            bad = ((masks & bit) != 0) & ((masks & anc) != anc)
            usable[bad] &= ~bit
        return usable

    # -- possible-allocation BDD ---------------------------------------
    def possible(self, masks):
        """Vectorized theorem-1 test: bottom-up BDD evaluation.

        Node children always precede their parents in the table (the
        builder appends after interning the children), so one forward
        pass over the nodes evaluates every candidate simultaneously.
        """
        np = _np
        root = self.bdd_root
        if root <= 1:
            return np.full(len(masks), root == 1)
        count = root + 1
        values = np.empty((count, len(masks)), dtype=bool)
        values[0] = False
        values[1] = True
        one = np.uint64(1)
        for i in range(2, count):
            takes_high = (masks >> self.bdd_levels[i]) & one != 0
            values[i] = np.where(
                takes_high,
                values[self.bdd_highs[i]],
                values[self.bdd_lows[i]],
            )
        return values[root]

    # -- useless-communication pruning ---------------------------------
    def comm_pruned(self, usable):
        """Vectorized :meth:`CompiledSpec.comm_pruned` over usable masks.

        The top-node projection and two sound pre-decides (no comm
        tops -> keep; fewer than two functional tops anywhere -> prune)
        run vectorized; only the unique undecided ``(comm_tops,
        func_tops)`` pairs fall through to the scalar component
        analysis, memoised on the spec.
        """
        np = _np
        cs = self.cs
        comm_tops = _gather_bytes(self.comm_top_tables, usable)
        func_tops = _gather_bytes(self.func_top_tables, usable)
        pruned = np.zeros(len(usable), dtype=bool)
        has_comm = comm_tops != 0
        # Any component's touched functional tops are a subset of all
        # functional tops: fewer than two anywhere decides the prune.
        pruned[has_comm & (popcount64(func_tops) < 2)] = True
        undecided = np.nonzero(has_comm & ~pruned)[0]
        if len(undecided):
            pairs = np.stack(
                (comm_tops[undecided], func_tops[undecided]), axis=1
            )
            uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
            # ``tolist`` converts the whole array to Python ints in C;
            # warm blocks then resolve as plain dict hits.
            cache_get = cs._comm_tops_cache.get
            decide = cs.comm_pruned_tops
            flags = [
                hit if (hit := cache_get((ct, ft))) is not None
                else decide(ct, ft)
                for ct, ft in uniq.tolist()
            ]
            verdicts = np.fromiter(flags, dtype=bool, count=len(uniq))
            pruned[undecided] = verdicts[inverse]
        return pruned

    # -- flexibility estimate ------------------------------------------
    def estimates(self, masks, weighted: bool):
        """Estimates for a block: unique root-support projections,
        scalar-evaluated once each (sharing the spec's caches)."""
        np = _np
        cs = self.cs
        proj = masks & self.root_support
        uniq, inverse = np.unique(proj, return_inverse=True)
        values = np.fromiter(
            (cs.estimate(int(key), weighted) for key in uniq),
            dtype=np.float64,
            count=len(uniq),
        )
        return values[inverse]


def kernel_for(cspec: CompiledSpec) -> BlockKernel:
    """The interned block kernel of a compiled spec (numpy must be on)."""
    kernel = getattr(cspec, "_block_kernel", None)
    if kernel is None:
        kernel = BlockKernel(cspec)
        cspec._block_kernel = kernel
    return kernel


# ---------------------------------------------------------------------------
# Block-ordered enumeration sources
# ---------------------------------------------------------------------------


def materialized_order(costs: Tuple[float, ...], include_empty: bool):
    """``(costs, index_masks)`` of the full ``2^n`` heap stream.

    Bit ``j`` of an index mask is the ``j``-th unit in enumeration
    order (by cost, then name); costs replicate the heap's float
    derivations exactly (module docstring).  The empty set leads the
    stream unconditionally when included — the scalar enumerator yields
    it before seeding the heap.
    """
    np = _np
    n = len(costs)
    total = 1 << n
    c = np.asarray(costs, dtype=np.float64)
    cost = np.empty(total, dtype=np.float64)
    cost[0] = 0.0
    if n:
        cost[1] = c[0]
    for hi in range(1, n):
        base = 1 << hi
        half = base >> 1
        idx = np.arange(base)
        has = (idx & half) != 0
        parent_cost = cost[np.where(has, idx, idx | half)]
        adj = np.where(has, parent_cost, parent_cost - c[hi - 1])
        cost[base : 2 * base] = adj + c[hi]
    # Packed tie key: per level j (most significant first), 0 when the
    # index tuple has ended, 1 when j is a member, 2 otherwise.
    m = np.arange(total, dtype=np.uint64)
    sec = np.zeros(total, dtype=np.uint64)
    one = np.uint64(1)
    two = np.uint64(2)
    for j in range(n):
        above = m >> np.uint64(j)
        key = np.full(total, two, dtype=np.uint64)
        key[(above & one) != 0] = one
        key[above == 0] = 0
        sec = (sec << two) | key
    order = np.lexsort((sec[1:], cost[1:])) + 1
    if include_empty:
        order = np.concatenate((np.zeros(1, dtype=order.dtype), order))
    return cost[order], m[order]


def _iter_materialized_blocks(
    enum: MaskAllocationEnumerator,
    include_empty: bool,
    block_rows: int,
    charge: Callable[[str, float], None],
    clock,
) -> Iterator[Tuple["object", "object"]]:
    """Blocks of ``(extra_costs, extras_spec_masks)`` from the
    materialized order (index masks converted through byte tables)."""
    t0 = clock()
    ecosts, imasks = materialized_order(enum._costs, include_empty)
    tables = _byte_tables(enum._bits)
    charge("enumerate", clock() - t0)
    for start in range(0, len(ecosts), block_rows):
        t0 = clock()
        chunk = imasks[start : start + block_rows]
        block = (
            ecosts[start : start + block_rows],
            _gather_bytes(tables, chunk),
        )
        charge("enumerate", clock() - t0)
        yield block


def _iter_band_blocks(
    enum: MaskAllocationEnumerator,
    block_rows: int,
    charge: Callable[[str, float], None],
    clock,
) -> Iterator[Tuple["object", "object"]]:
    """Blocks assembled from whole cost bands (band-API streaming)."""
    np = _np
    while True:
        t0 = clock()
        costs: List[float] = []
        masks: List[int] = []
        while len(masks) < block_rows:
            try:
                band_cost, band_masks = enum.next_band()
            except StopIteration:
                break
            costs.extend([band_cost] * len(band_masks))
            masks.extend(band_masks)
        if not masks:
            charge("enumerate", clock() - t0)
            return
        block = (
            np.asarray(costs, dtype=np.float64),
            np.asarray(masks, dtype=np.uint64),
        )
        charge("enumerate", clock() - t0)
        yield block


# ---------------------------------------------------------------------------
# Block exploration context
# ---------------------------------------------------------------------------


class BlockContext:
    """Blocked candidate stream + pre-filter state for one EXPLORE run.

    Two consumption modes, both byte-identical to the scalar loop:

    * :meth:`run_fast` — the whole incumbent-dependent replay over
      block arrays (used when nothing observes per-candidate events);
    * :meth:`candidates` + the evaluator facade — a drop-in
      ``(cost, units)`` stream whose per-candidate check answers are
      served from the block arrays, for traced/observed runs.
    """

    def __init__(
        self,
        evaluator,
        extra_names: List[str],
        include_empty: bool,
        required: FrozenSet[str],
        required_cost: float,
        use_possible_filter: bool,
        prune_comm: bool,
        use_estimation: bool,
        sinks: Tuple[object, ...] = (),
        block_rows: int = BLOCK_ROWS,
    ) -> None:
        import time

        self.evaluator = evaluator
        self.cs = evaluator.cs
        self.kernel = kernel_for(self.cs)
        self.enum = MaskAllocationEnumerator(
            self.cs, extra_names, include_empty=include_empty
        )
        self.include_empty = include_empty
        self.required = required
        self.required_mask = _np.uint64(self.cs.mask_of(required))
        self.required_cost = required_cost
        self.use_possible_filter = use_possible_filter
        self.prune_comm = prune_comm
        self.use_estimation = use_estimation
        self.sinks = tuple(s for s in sinks if s is not None)
        self.block_rows = block_rows
        self.clock = time.perf_counter
        self.materialized = (
            len(extra_names) <= _materialize_max_bits()
        )
        # Eventful-mode cursor: the last yielded candidate's answers.
        self.cur_units: Optional[FrozenSet[str]] = None
        self.cur_possible = True
        self.cur_comm = False
        self.cur_estimate = 0.0

    # -- plumbing -------------------------------------------------------
    def _charge(self, phase: str, seconds: float) -> None:
        for sink in self.sinks:
            sink.charge(phase, seconds)

    def _blocks(self):
        if self.materialized:
            return _iter_materialized_blocks(
                self.enum,
                self.include_empty,
                self.block_rows,
                self._charge,
                self.clock,
            )
        return _iter_band_blocks(
            self.enum, self.block_rows, self._charge, self.clock
        )

    def _checks(self, full_masks):
        """(possible, comm_pruned, estimate) arrays for a block.

        Row restriction mirrors the scalar loop's short-circuiting:
        communication pruning is only computed for rows that pass the
        possible filter (all rows when the filter is off), estimates
        only for rows that pass both — other rows hold unread defaults.
        """
        np = _np
        kernel = self.kernel
        t0 = self.clock()
        n = len(full_masks)
        if self.use_possible_filter:
            possible = kernel.possible(full_masks)
            alive = possible
        else:
            possible = np.ones(n, dtype=bool)
            alive = possible
        comm = np.zeros(n, dtype=bool)
        if self.prune_comm:
            rows = np.nonzero(alive)[0]
            if len(rows):
                comm[rows] = kernel.comm_pruned(
                    kernel.usable(full_masks[rows])
                )
            alive = alive & ~comm
        self._charge("filter", self.clock() - t0)
        estimates = np.zeros(n, dtype=np.float64)
        if self.use_estimation:
            t0 = self.clock()
            rows = np.nonzero(alive)[0]
            if len(rows):
                estimates[rows] = kernel.estimates(
                    full_masks[rows], self.evaluator.weighted
                )
            self._charge("estimate", self.clock() - t0)
        return possible, comm, estimates

    def _materialise_units(self, extras_mask: int) -> FrozenSet[str]:
        """The candidate's unit set, with the mask handed off by
        identity so the scalar evaluator skips re-encoding it."""
        extras = self.cs.names_of(extras_mask)
        units = self.required | extras if self.required else extras
        self.cs._enum_memo = (units, extras_mask | int(self.required_mask))
        return units

    # -- eventful mode --------------------------------------------------
    def candidates(self) -> Iterator[Tuple[float, FrozenSet[str]]]:
        """The scalar enumerator's ``(cost, extras)`` stream, with the
        per-candidate check answers staged for the evaluator facade."""
        for ecosts, emasks in self._blocks():
            full = emasks | self.required_mask
            possible, comm, estimates = self._checks(full)
            cs = self.cs
            names_of = cs.names_of
            for i in range(len(ecosts)):
                extras_mask = int(emasks[i])
                extras = names_of(extras_mask)
                cs._enum_memo = (extras, extras_mask)
                self.cur_units = extras
                self.cur_possible = bool(possible[i])
                self.cur_comm = bool(comm[i])
                self.cur_estimate = float(estimates[i])
                yield float(ecosts[i]), extras

    def facade(self):
        """An evaluator view answering the pre-filter checks from the
        staged block results (identity-matched; anything else falls
        through to the scalar evaluator)."""
        return _BlockFacade(self.evaluator, self)

    # -- fast mode ------------------------------------------------------
    def run_fast(
        self,
        stats,
        points: List,
        solver_counter: List[int],
        f_cur: float,
        f_max: float,
        max_cost: Optional[float],
        emitter=None,
    ) -> float:
        """The serial EXPLORE loop over whole blocks (no per-candidate
        observers: no tracer, no audit, inactive progress emitter, no
        ``keep_ties``/``max_candidates``).

        Mutates ``stats``/``points``/``solver_counter`` exactly as the
        scalar loop would and returns the final incumbent flexibility.
        """
        np = _np
        evaluator = self.evaluator
        use_filter = self.use_possible_filter
        use_comm = self.prune_comm
        use_est = self.use_estimation
        for ecosts, emasks in self._blocks():
            if f_cur >= f_max:
                break
            limit = len(ecosts)
            tot = self.required_cost + ecosts
            over_budget = False
            if max_cost is not None:
                over = np.nonzero(tot > max_cost)[0]
                if len(over):
                    limit = int(over[0])
                    over_budget = True
                    if limit == 0:
                        break
            full = emasks[:limit] | self.required_mask
            possible, comm, estimates = self._checks(full)
            alive = possible & ~comm if use_comm else possible
            # Rows [0, counted) have been charged to the statistics.
            counted = 0

            def count_to(row: int) -> None:
                nonlocal counted
                if row <= counted:
                    return
                stats.candidates_enumerated += row - counted
                if use_filter:
                    stats.possible_allocations += int(
                        np.count_nonzero(possible[counted:row])
                    )
                if use_comm:
                    stats.pruned_comm += int(
                        np.count_nonzero(comm[counted:row])
                    )
                if use_est:
                    stats.estimates_computed += int(
                        np.count_nonzero(alive[counted:row])
                    )
                counted = row

            stopped = False
            survivors = np.nonzero(alive)[0]
            position = 0
            while position < len(survivors):
                if use_est:
                    passing = np.nonzero(
                        estimates[survivors[position:]] > f_cur
                    )[0]
                    if not len(passing):
                        break
                    position += int(passing[0])
                row = int(survivors[position])
                position += 1
                count_to(row + 1)
                stats.estimate_exceeded += 1
                units = self._materialise_units(int(emasks[row]))
                implementation = evaluator.evaluate(
                    units, solver_counter=solver_counter
                )
                if implementation is None:
                    continue
                stats.feasible_implementations += 1
                if implementation.flexibility > f_cur:
                    points.append(implementation)
                    f_cur = implementation.flexibility
                    if emitter is not None:
                        emitter.incumbent(
                            implementation.cost,
                            implementation.flexibility,
                            implementation.units,
                            stats.candidates_enumerated,
                            stats.estimate_exceeded,
                        )
                    logger.debug(
                        "incumbent: cost=%g flexibility=%g after %d "
                        "candidates",
                        implementation.cost,
                        implementation.flexibility,
                        stats.candidates_enumerated,
                    )
                    if f_cur >= f_max:
                        # The scalar loop breaks at the *next* candidate
                        # before counting it.
                        stopped = True
                        break
            if not stopped:
                count_to(limit)
            if stopped or over_budget:
                break
        return f_cur


class _BlockFacade:
    """Evaluator view for eventful block runs: answers the three
    pre-filter checks from the staged block results when the query is
    for the candidate the stream just yielded (identity match), and
    delegates everything else — including all evaluations — to the
    scalar evaluator."""

    __slots__ = ("_inner", "_ctx")

    def __init__(self, inner, ctx: BlockContext) -> None:
        self._inner = inner
        self._ctx = ctx

    def possible(self, units) -> bool:
        ctx = self._ctx
        if units is ctx.cur_units:
            return ctx.cur_possible
        return self._inner.possible(units)

    def comm_pruned(self, units) -> bool:
        ctx = self._ctx
        if units is ctx.cur_units:
            return ctx.cur_comm
        return self._inner.comm_pruned(units)

    def estimate(self, units) -> float:
        ctx = self._ctx
        if units is ctx.cur_units:
            return ctx.cur_estimate
        return self._inner.estimate(units)

    def evaluate(self, units, solver_counter=None, detail=None):
        return self._inner.evaluate(
            units, solver_counter=solver_counter, detail=detail
        )

    def infeasibility_reason(self, units) -> str:
        return self._inner.infeasibility_reason(units)


def make_block_context(
    evaluator,
    extra_names: List[str],
    include_empty: bool,
    required: FrozenSet[str],
    required_cost: float,
    *,
    use_possible_filter: bool,
    prune_comm: bool,
    use_estimation: bool,
    sinks: Tuple[object, ...] = (),
    block_rows: int = BLOCK_ROWS,
) -> Optional[BlockContext]:
    """A :class:`BlockContext` for one run, or ``None`` when the
    vectorized kernel cannot serve it (numpy absent or disabled, more
    than 64 unit bits, nothing to enumerate, or a negative-cost unit —
    the heap stream is only globally cost-sorted for costs >= 0) or
    would not pay for itself (fewer than ``REPRO_VECTORIZE_MIN_BITS``
    enumerated units: sub-millisecond searches are faster scalar than
    the kernel's array setup)."""
    if active_numpy() is None:
        return None
    if len(extra_names) < _min_vector_bits():
        return None
    cs = evaluator.cs
    if not 0 < cs.unit_count <= 64:
        return None
    catalog = cs.spec.units
    if any(catalog.unit(n).cost < 0 for n in extra_names):
        return None
    return BlockContext(
        evaluator,
        list(extra_names),
        include_empty,
        required,
        required_cost,
        use_possible_filter,
        prune_comm,
        use_estimation,
        sinks=sinks,
        block_rows=block_rows,
    )


def batch_outcomes(
    evaluator, unit_sets: List[FrozenSet[str]], params, f_entry: float
) -> Optional[List[object]]:
    """Vectorized :func:`repro.parallel.worker.evaluate_candidate` over
    one dispatched batch, or ``None`` when the kernel cannot run.

    The pre-filter checks run as one block; candidates that survive
    speculation fall through to the scalar evaluator (memoised binding
    verdicts), replicating the worker's short-circuit order field for
    field.
    """
    np = active_numpy()
    if np is None or not unit_sets:
        return None
    cs = evaluator.cs
    if not 0 < cs.unit_count <= 64:
        return None
    from ..parallel.worker import CandidateOutcome

    kernel = kernel_for(cs)
    mask_ints = [cs.mask_of(units) for units in unit_sets]
    masks = np.array(mask_ints, dtype=np.uint64)
    n = len(masks)
    if params.use_possible_filter:
        possible = kernel.possible(masks)
        alive = possible
    else:
        possible = np.ones(n, dtype=bool)
        alive = possible
    comm = np.zeros(n, dtype=bool)
    if params.prune_comm:
        rows = np.nonzero(alive)[0]
        if len(rows):
            comm[rows] = kernel.comm_pruned(kernel.usable(masks[rows]))
        alive = alive & ~comm
    estimates = np.zeros(n, dtype=np.float64)
    if params.use_estimation:
        rows = np.nonzero(alive)[0]
        if len(rows):
            estimates[rows] = kernel.estimates(
                masks[rows], evaluator.weighted
            )
    outcomes: List[object] = []
    for i, units in enumerate(unit_sets):
        out = CandidateOutcome()
        if params.use_possible_filter:
            out.possible = bool(possible[i])
            if not out.possible:
                outcomes.append(out)
                continue
        if params.prune_comm:
            out.comm_pruned = bool(comm[i])
            if out.comm_pruned:
                outcomes.append(out)
                continue
        if params.use_estimation:
            out.estimate = float(estimates[i])
            speculate = out.estimate > f_entry or (
                params.keep_ties and out.estimate == f_entry
            )
            if not speculate:
                outcomes.append(out)
                continue
        counter = [0]
        cs._enum_memo = (units, mask_ints[i])
        implementation = evaluator.evaluate(units, solver_counter=counter)
        out.evaluated = True
        out.solver_calls = counter[0]
        if implementation is not None:
            out.feasible = True
            out.flexibility = implementation.flexibility
            out.clusters = implementation.clusters
            out.coverage = implementation.coverage
        outcomes.append(out)
    return outcomes


__all__ = [
    "BLOCK_ROWS",
    "BlockContext",
    "BlockKernel",
    "MATERIALIZE_MAX_BITS_DEFAULT",
    "MIN_VECTOR_BITS_DEFAULT",
    "active_numpy",
    "batch_outcomes",
    "kernel_for",
    "make_block_context",
    "materialized_order",
    "numpy_version",
    "popcount64",
]
